//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: integer-range
//! and `any::<T>()` strategies, tuples of strategies, `prop_map`,
//! `collection::vec`, `ProptestConfig::with_cases` and the [`proptest!`]
//! macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are sampled from a fixed
//! deterministic seed (derived from the test name), and failing inputs are
//! reported but **not shrunk**.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Deterministic RNG handed to strategies while generating a test case.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Derive a per-test, per-case RNG. Deterministic across runs so
    /// failures are reproducible.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

/// Strategy for "any value of `T`" (full-range integers).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical full-range strategy.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `elem`, of length drawn uniformly from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; on failure the failing inputs were already
/// printed by the [`proptest!`] runner.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn` runs `cases` times with inputs drawn
/// from its strategies.
///
/// The `#[test]` attribute below is consumed by the macro (it decorates the
/// generated runner function), so the doctest only checks that the
/// invocation compiles:
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("self_test", 0);
        for _ in 0..200 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
        }
        let v = crate::collection::vec(0usize..10, 2..5).sample(&mut rng);
        assert!((2..5).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_with_config_and_tuples((a, b) in (0usize..5, 0usize..5), c in any::<u64>()) {
            prop_assert!(a < 5 && b < 5);
            let _ = c;
        }
    }

    proptest! {
        #[test]
        fn macro_with_default_config(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }
}

//! Minimal, offline stand-in for the `criterion` crate.
//!
//! Supports the API surface this workspace's benches use — benchmark groups,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! plain wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark reports min/mean/max nanoseconds per iteration
//! to stdout.
//!
//! Passing `--test` (as `cargo test --benches` does) runs every benchmark
//! body exactly once, so bench targets double as smoke tests.

#![deny(missing_docs)]

use std::time::Instant;

/// Prevent the optimiser from deleting a value or the computation behind it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let sample_size = self.default_sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: if self.test_mode {
                1
            } else {
                sample_size.max(1)
            },
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        if b.samples.is_empty() {
            println!("{id:<50} (no measurement)");
            return;
        }
        let min = *b.samples.iter().min().unwrap();
        let max = *b.samples.iter().max().unwrap();
        let mean = b.samples.iter().sum::<u128>() / b.samples.len() as u128;
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    iters: usize,
    samples: Vec<u128>,
}

impl Bencher {
    /// Call `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.iters);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 3,
        };
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(2);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran >= 1, "routine must run at least the warm-up iteration");
    }
}

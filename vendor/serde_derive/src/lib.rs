//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! The real `serde_derive` needs `syn`/`quote`, which cannot be fetched in
//! this offline build environment, so the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — which cover every derive
//! site in this workspace — are non-generic structs (named, tuple and unit)
//! and enums whose variants are unit, tuple or struct-like. Unsupported
//! input produces a `compile_error!` rather than silently wrong code.
//!
//! The JSON wire format mirrors real serde's externally-tagged defaults so
//! persisted data survives swapping in the real crates: newtype structs and
//! newtype variants serialise transparently (`NodeId(5)` → `5`,
//! `Load(NodeId(5))` → `{"Load":5}`), unit variants as strings, struct
//! variants as `{"Variant":{...}}` and wider tuples as arrays.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

/// The shapes of fields a struct or an enum variant can carry.
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Number of positional fields.
    Tuple(usize),
}

enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl must tokenize")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                    continue;
                }
            }
            break;
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skip tokens until a `,` at angle-bracket depth 0, consuming it.
    /// Returns `false` if the cursor hit the end without finding a comma.
    fn skip_past_toplevel_comma(&mut self) -> bool {
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generic type `{name}`"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct(name, parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(
                Item::Struct(name, Fields::Tuple(count_tuple_fields(g.stream()))),
            ),
            _ => Ok(Item::Struct(name, Fields::Unit)),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum(name, parse_variants(g.stream())?))
            }
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!(
            "serde stand-in derive supports only structs and enums, found `{other}`"
        )),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Fields, String> {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        let fname = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{fname}`, found {other:?}"
                ))
            }
        }
        names.push(fname);
        if !c.skip_past_toplevel_comma() {
            break;
        }
    }
    Ok(Fields::Named(names))
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for t in body {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let vname = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push((vname, fields));
        // Skip an optional discriminant and the trailing comma.
        if !c.skip_past_toplevel_comma() {
            break;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn ser_named_fields(names: &[String], accessor: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&{})),",
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(""))
}

fn de_named_fields(path: &str, names: &[String], map_expr: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::value_get({map_expr}, {f:?})?)?,"
            )
        })
        .collect();
    format!("{path} {{ {} }}", fields.join(""))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct(name, fields) => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => ser_named_fields(names, |f| format!("self.{f}")),
                // Newtype structs serialise transparently, matching real
                // serde's externally-tagged wire format.
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(""))
                }
            };
            (name, body)
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    ),
                    // Newtype variants carry their payload bare, like real
                    // serde's {"Variant": value} externally-tagged format.
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(","),
                            elems.join("")
                        )
                    }
                    Fields::Named(fnames) => {
                        let payload = ser_named_fields(fnames, |f| format!("(*{f})"));
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), {payload})]),",
                            fnames.join(",")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct(name, fields) => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let ctor = de_named_fields(name, names, "__m");
                    format!(
                        "let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({ctor})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?,"))
                        .collect();
                    format!(
                        "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for struct {name}\"))?;\n\
                         if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for struct {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join("")
                    )
                }
            };
            (name, body)
        }
        Item::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?,"))
                            .collect();
                        Some(format!(
                            "{vname:?} => {{\n\
                                 let __s = __payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array payload for {name}::{vname}\"))?;\n\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong payload length for {name}::{vname}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            elems.join("")
                        ))
                    }
                    Fields::Named(fnames) => {
                        let ctor = de_named_fields(&format!("{name}::{vname}"), fnames, "__m");
                        Some(format!(
                            "{vname:?} => {{\n\
                                 let __m = __payload.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map payload for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }}"
                        ))
                    }
                })
                .collect();
            let body = format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown unit variant `{{__other}}` of enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-entry map for enum {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

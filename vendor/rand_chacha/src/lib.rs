//! Minimal, offline stand-in for `rand_chacha`: a real ChaCha8 core behind
//! the [`ChaCha8Rng`] name, seeded via `SeedableRng::seed_from_u64`.
//!
//! The keystream does not byte-for-byte match the upstream crate (which
//! derives its key through a different expansion); what matters for this
//! workspace is that the stream is deterministic per seed and statistically
//! well mixed.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaCha8Rng {
    fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        // words 12..14: block counter, 14..16: nonce (zero)
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        // buf = x + state (standard ChaCha output feedforward)
        for (o, (xi, si)) in self.buf.iter_mut().zip(x.iter().zip(&self.state)) {
            *o = xi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion, as rand does for seed_from_u64.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx >= 15 {
            // Need two fresh words; refill keeps it simple.
            if self.idx >= 16 {
                self.refill();
            } else {
                // One word left: spend it and refill for the second.
                let lo = self.buf[self.idx] as u64;
                self.refill();
                let hi = self.buf[self.idx] as u64;
                self.idx += 1;
                return (hi << 32) | lo;
            }
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let first: Vec<u64> = (0..8)
            .map(|_| ChaCha8Rng::seed_from_u64(123).next_u64())
            .collect();
        assert!(first.iter().any(|&w| w != c.next_u64()));
    }

    #[test]
    fn output_looks_mixed() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 4096 bits total; a fair stream stays near 2048.
        assert!((1600..=2500).contains(&ones), "bit balance off: {ones}");
    }
}

//! Minimal, offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `serde` cannot be fetched from crates.io. This crate implements the
//! subset the workspace actually uses — `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, round-tripped through JSON by the sibling
//! `serde_json` stand-in — behind the same import paths, so switching back
//! to the real crates is a `Cargo.toml`-only change.
//!
//! Unlike real serde there is no zero-copy deserialisation and no
//! format-generic serializer plumbing: everything goes through the owned
//! [`Value`] tree.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree — the single intermediate representation
/// every [`Serialize`]/[`Deserialize`] implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialised without a decimal point).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialisation error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the intermediate value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up `key` in a map's entries (helper used by derived impls).
pub fn value_get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, got {}", s.len()
                    )));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

//! Minimal, offline stand-in for the `rand` crate.
//!
//! Provides the trait surface the workspace uses — [`RngCore`], [`Rng`]
//! (with `gen_range` over half-open and inclusive integer ranges),
//! [`SeedableRng`] and [`seq::SliceRandom`] — so generators stay seeded and
//! reproducible without network access to crates.io. The statistical quality
//! bar is "deterministic and well mixed", not cryptographic.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, as rand does.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can produce a uniform sample (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (unbiased enough for
/// test workloads; bound is far below 2^64 in practice).
fn uniform_below<G: RngCore + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// RNGs that can be constructed from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<G: RngCore + ?Sized>(&self, rng: &mut G) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<G: RngCore + ?Sized>(&self, rng: &mut G) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y: usize = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = SplitMix(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}

//! Minimal, offline stand-in for `serde_json`.
//!
//! Serialises the vendored [`serde::Value`] tree to JSON text and parses it
//! back with a strict recursive-descent parser (trailing garbage and
//! malformed input are rejected). Only the entry points the workspace uses
//! are provided: [`to_string`], [`from_str`] and [`Error`].

#![deny(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// Error produced by JSON serialisation or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialise `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep floats recognisable as floats on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow; combine the pair (RFC 8259 §7).
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape sequence")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Read exactly four hex digits (the payload of a `\u` escape).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<(u32, String)> = vec![(1, "a\"b".into()), (2, "\n".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage_and_trailing_input() {
        assert!(from_str::<bool>("{not json").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }

    #[test]
    fn surrogate_pairs_combine() {
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "\u{1F600}");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn floats_stay_floats() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 1.0);
    }
}

//! Property-based integration tests over randomly generated layered DAGs:
//! the generic strategies always produce valid pebblings, conversions never
//! increase cost, and the partition machinery always yields valid partitions
//! whose class counts bound the cost.

use prbp::bounds::from_pebbling::{
    dominator_partition_from_prbp, edge_partition_from_prbp, hong_kung_partition,
    subsequence_lower_bound,
};
use prbp::dag::generators::{random_layered, RandomLayeredConfig};
use prbp::game::convert::rbp_to_prbp;
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies::topological;
use proptest::prelude::*;

fn dag_strategy() -> impl Strategy<Value = (pebble_dag::Dag, usize)> {
    (2usize..5, 2usize..6, 1usize..4, any::<u64>()).prop_map(|(layers, width, deg, seed)| {
        let dag = random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: deg,
            seed,
        });
        let r = dag.max_in_degree() + 1;
        (dag, r)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generic_strategies_always_produce_valid_pebblings((dag, r) in dag_strategy()) {
        let rbp = topological::rbp_topological(&dag, r).expect("r >= Δin + 1");
        let rbp_cost = rbp.validate(&dag, RbpConfig::new(r)).expect("valid RBP");
        prop_assert!(rbp_cost >= dag.trivial_cost());

        let prbp = topological::prbp_topological(&dag, 2).expect("r >= 2");
        let prbp_cost = prbp.validate(&dag, PrbpConfig::new(2)).expect("valid PRBP");
        prop_assert!(prbp_cost >= dag.trivial_cost());
    }

    #[test]
    fn conversion_preserves_validity_and_cost((dag, r) in dag_strategy()) {
        let rbp = topological::rbp_topological(&dag, r).unwrap();
        let rbp_cost = rbp.validate(&dag, RbpConfig::new(r)).unwrap();
        let prbp = rbp_to_prbp(&dag, &rbp, r).expect("conversion succeeds");
        let prbp_cost = prbp.validate(&dag, PrbpConfig::new(r)).expect("valid converted trace");
        prop_assert!(prbp_cost <= rbp_cost);
    }

    #[test]
    fn partitions_from_random_pebblings_are_valid((dag, r) in dag_strategy()) {
        let rbp = topological::rbp_topological(&dag, r).unwrap();
        let rbp_cost = rbp.validate(&dag, RbpConfig::new(r)).unwrap();
        let hk = hong_kung_partition(&dag, &rbp, r);
        prop_assert!(hk.validate(&dag, 2 * r).is_ok());
        prop_assert!(subsequence_lower_bound(r, hk.class_count()) <= rbp_cost);

        let prbp = topological::prbp_topological(&dag, r).unwrap();
        let prbp_cost = prbp.validate(&dag, PrbpConfig::new(r)).unwrap();
        let ep = edge_partition_from_prbp(&dag, &prbp, r);
        prop_assert!(ep.validate(&dag, 2 * r).is_ok());
        prop_assert!(subsequence_lower_bound(r, ep.class_count()) <= prbp_cost);
        prop_assert!(prbp_cost <= r * ep.class_count());
        let dp = dominator_partition_from_prbp(&dag, &prbp, r);
        prop_assert!(dp.validate(&dag, 2 * r).is_ok());
        prop_assert!(subsequence_lower_bound(r, dp.class_count()) <= prbp_cost);
    }

    #[test]
    fn ample_cache_reaches_exactly_the_trivial_cost((dag, _r) in dag_strategy()) {
        // With a cache larger than the whole DAG nothing is ever evicted, so
        // the generic PRBP strategy pays exactly the trivial cost, and the
        // r = 2 strategy can never beat it.
        let ample = topological::prbp_topological(&dag, dag.node_count() + 1).unwrap()
            .validate(&dag, PrbpConfig::new(dag.node_count() + 1)).unwrap();
        prop_assert_eq!(ample, dag.trivial_cost());
        let tight = topological::prbp_topological(&dag, 2).unwrap()
            .validate(&dag, PrbpConfig::new(2)).unwrap();
        prop_assert!(tight >= ample);
    }
}

//! End-to-end tests for the serving CLI surface: the `--deadline-ms`
//! no-incumbent contract (exit code 3 + machine-readable status) and the
//! `warm` / `serve` / `submit` round trip over a real socket.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prbp-serve-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_ok(dir: &Path, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_prbp"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn prbp");
    assert!(
        out.status.success(),
        "prbp {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("CLI output is UTF-8")
}

/// An expired deadline with no incumbent is the *documented* failure mode:
/// exit code 3 (distinct from runtime error 1 and usage error 2) and a JSON
/// document whose `status` field is machine-readable — not a bare error
/// string on stderr.
#[test]
fn deadline_with_no_incumbent_exits_3_with_machine_readable_status() {
    let dir = scratch_dir("deadline");
    // Large enough that a 1 ms budget cannot seed an incumbent: the beam's
    // first deadline check fires before any schedule exists.
    run_ok(
        &dir,
        &["gen", "--family", "fft", "--m", "4096", "--out", "big.json"],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_prbp"))
        .args([
            "schedule",
            "--input",
            "big.json",
            "--r",
            "64",
            "--deadline-ms",
            "1",
        ])
        .current_dir(&dir)
        .output()
        .expect("spawn prbp");
    assert_eq!(
        out.status.code(),
        Some(3),
        "deadline-no-incumbent must exit 3, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"status\":\"deadline-no-incumbent\""),
        "document must carry the machine-readable status: {stdout}"
    );
    assert!(
        stdout.contains("\"deadline_ms\":1"),
        "document must echo the budget: {stdout}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// A generous deadline on the same path still succeeds with exit 0 and the
/// `"status":"ok"` anytime document.
#[test]
fn generous_deadline_still_exits_0() {
    let dir = scratch_dir("deadline-ok");
    run_ok(&dir, &["gen", "--family", "fig1", "--out", "fig1.el"]);
    let stdout = run_ok(
        &dir,
        &[
            "schedule",
            "--input",
            "fig1.el",
            "--r",
            "4",
            "--deadline-ms",
            "30000",
        ],
    );
    assert!(stdout.contains("\"status\":\"ok\""), "{stdout}");
    assert!(stdout.contains("\"report\":"), "{stdout}");
    let _ = std::fs::remove_dir_all(dir);
}

/// warm → serve → submit: the full service loop over a real socket. The
/// warmed shape must come back as a cache hit whose certificate matches the
/// compose schedule stored by `warm`.
#[test]
fn warm_serve_submit_roundtrip() {
    let dir = scratch_dir("roundtrip");
    std::fs::create_dir_all(dir.join("instances")).unwrap();
    run_ok(
        &dir,
        &[
            "gen",
            "--family",
            "fft",
            "--m",
            "64",
            "--out",
            "instances/fft64.json",
        ],
    );
    let warm = run_ok(
        &dir,
        &[
            "warm",
            "--cache-dir",
            "cache",
            "--dir",
            "instances",
            "--r",
            "16",
        ],
    );
    assert!(warm.contains("\"inserted\":1"), "{warm}");

    // Port 0 would be ideal, but the CLI server prints its address to
    // stderr and `submit` needs it up front — so pick a port from the pid.
    let port = 20000 + (std::process::id() % 20000);
    let addr = format!("127.0.0.1:{port}");
    let mut server = Command::new(env!("CARGO_BIN_EXE_prbp"))
        .args([
            "serve",
            "--cache-dir",
            "cache",
            "--addr",
            &addr,
            "--deadline-ms",
            "10000",
        ])
        .current_dir(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn prbp serve");

    // `submit` retries connecting, so no sleep is needed here.
    let result = Command::new(env!("CARGO_BIN_EXE_prbp"))
        .args([
            "submit",
            "--addr",
            &addr,
            "--input",
            "instances/fft64.json",
            "--r",
            "16",
        ])
        .current_dir(&dir)
        .output()
        .expect("spawn prbp submit");
    let stdout = String::from_utf8_lossy(&result.stdout).into_owned();
    server.kill().expect("kill server");
    let _ = server.wait();
    assert!(
        result.status.success(),
        "submit failed: {stdout}\n{}",
        String::from_utf8_lossy(&result.stderr)
    );
    assert!(stdout.contains("\"cache\":\"hit\""), "{stdout}");
    assert!(stdout.contains("\"scheduler\":\"compose\""), "{stdout}");
    let _ = std::fs::remove_dir_all(dir);
}

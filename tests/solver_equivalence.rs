//! Every A* heuristic must return exactly the same optimal cost as the
//! `ZeroHeuristic` uniform-cost search — on random DAGs (property test) and
//! on every structured generator family at small sizes, for both RBP and
//! PRBP, including the model variants. A divergence means a heuristic
//! overestimates somewhere (it is not admissible) and would silently corrupt
//! every experiment built on the solvers.

use pebble_bounds::{SDominatorHeuristic, SEdgeHeuristic};
use pebble_dag::generators::{
    chained_gadgets, fig1_full, kary_tree, matvec, pebble_collection, pyramid, random_layered,
    zipper, RandomLayeredConfig,
};
use pebble_dag::Dag;
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound, SearchConfig, ZeroHeuristic};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use proptest::prelude::*;

fn heuristics() -> Vec<(&'static str, Box<dyn LowerBound>)> {
    vec![
        ("load-count", Box::new(LoadCountHeuristic)),
        ("s-edge", Box::new(SEdgeHeuristic::new())),
        ("s-dominator", Box::new(SDominatorHeuristic::new())),
    ]
}

/// Assert all heuristics agree with the Zero (uniform-cost) optimum.
fn assert_rbp_equivalent(dag: &Dag, config: RbpConfig) {
    let search = SearchConfig::default();
    let zero = exact::optimal_rbp_cost_with(dag, config, search, &ZeroHeuristic)
        .expect("reference search must solve the instance");
    for (name, h) in heuristics() {
        let solved = exact::optimal_rbp_cost_with(dag, config, search, h.as_ref())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            solved.cost, zero.cost,
            "{name} disagrees with zero on RBP (r={})",
            config.r
        );
        assert!(
            solved.stats.expanded <= zero.stats.expanded,
            "{name} expanded more states than blind search on RBP"
        );
    }
}

fn assert_prbp_equivalent(dag: &Dag, config: PrbpConfig) {
    let search = SearchConfig::default();
    let zero = exact::optimal_prbp_cost_with(dag, config, search, &ZeroHeuristic)
        .expect("reference search must solve the instance");
    for (name, h) in heuristics() {
        let solved = exact::optimal_prbp_cost_with(dag, config, search, h.as_ref())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            solved.cost, zero.cost,
            "{name} disagrees with zero on PRBP (r={})",
            config.r
        );
        assert!(
            solved.stats.expanded <= zero.stats.expanded,
            "{name} expanded more states than blind search on PRBP"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_dags_all_heuristics_agree(
        seed in any::<u64>(),
        layers in 2usize..4,
        width in 1usize..3,
    ) {
        let dag = random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: 2,
            seed,
        });
        assert_rbp_equivalent(&dag, RbpConfig::new(dag.max_in_degree() + 1));
        assert_prbp_equivalent(&dag, PrbpConfig::new(2));
        assert_prbp_equivalent(&dag, PrbpConfig::new(3));
    }
}

#[test]
fn structured_generators_all_heuristics_agree_rbp() {
    let cases: Vec<Dag> = vec![
        fig1_full().dag,
        zipper(2, 3).dag,
        kary_tree(2, 2).dag,
        chained_gadgets(1).dag,
        pyramid(2).dag,
    ];
    for dag in &cases {
        assert_rbp_equivalent(dag, RbpConfig::new(dag.max_in_degree() + 1));
    }
}

#[test]
fn structured_generators_all_heuristics_agree_prbp() {
    let cases: Vec<(Dag, usize)> = vec![
        (fig1_full().dag, 4),
        (zipper(2, 3).dag, 4),
        (matvec(2).dag, 5),
        (kary_tree(2, 2).dag, 3),
        (chained_gadgets(1).dag, 4),
        (pebble_collection(2, 3).dag, 4),
        (pyramid(2).dag, 2),
    ];
    for (dag, r) in &cases {
        assert_prbp_equivalent(dag, PrbpConfig::new(*r));
    }
}

#[test]
fn model_variants_all_heuristics_agree() {
    // The phase-argument heuristics must degrade soundly under the variant
    // rules too: re-computation, sliding, no-deletion, and `clear`.
    let f = fig1_full();
    assert_rbp_equivalent(&f.dag, RbpConfig::new(4).with_recompute());
    assert_rbp_equivalent(&f.dag, RbpConfig::new(4).with_sliding());
    assert_prbp_equivalent(&f.dag, PrbpConfig::new(4).with_clear());
    assert_prbp_equivalent(&f.dag, PrbpConfig::new(4).with_no_delete());
}

//! Concurrency and anytime-contract tests for the unified engine.
//!
//! The engine's anytime contract: any solve given a seed returns a
//! simulator-validated incumbent no worse than the seed, paired with an
//! admissible bound, no matter when (or why) it stops; cancellation and
//! deadlines fire within one expansion batch (no hangs, even when the
//! worker count far exceeds the hardware); the published incumbent cost
//! only ever decreases; and the parallel search is deterministic in its
//! *answer* — repeated parallel runs never disagree on the proven optimum,
//! whatever the thread interleaving.
//!
//! Release-only: debug builds are slow enough to turn the timing
//! assertions into noise.

#![cfg(not(debug_assertions))]

use pebble_dag::generators::{chained_gadgets, fft, zipper};
use pebble_dag::Dag;
use pebble_game::engine::{self, CancelToken, EngineConfig, HeuristicSpec, Progress, StopReason};
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_game::trace::PrbpTrace;
use pebble_sched::{greedy_prbp, order, FurthestInFuture};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A greedy seed schedule for `dag` — the incumbent every anytime solve
/// starts from.
fn greedy_seed(dag: &Dag, r: usize) -> PrbpTrace {
    let ord = order::dfs_postorder(dag);
    greedy_prbp(dag, r, &ord, &mut FurthestInFuture).expect("r >= 2 schedules any DAG")
}

fn make_h() -> Box<dyn LowerBound> {
    Box::new(LoadCountHeuristic)
}

/// Worker count for the stress tests: at least 64 (far beyond the
/// hardware, so idle-spin/quiescence paths are exercised), raised further
/// by `PRBP_THREADS` (the CI engine-stress job forces it high).
fn stress_workers() -> usize {
    std::env::var("PRBP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(0)
        .max(64)
}

/// Deadline-bounded seeded solves always return a validated incumbent with
/// an admissible bound — even when the deadline is far too short to prove
/// anything.
#[test]
fn deadline_solves_always_return_validated_incumbents() {
    let f = fft(16); // exact search space far beyond any of these deadlines
    let r = 4;
    let seed = greedy_seed(&f.dag, r);
    let seed_cost = seed
        .validate(&f.dag, PrbpConfig::new(r))
        .expect("seed replays");
    for deadline_ms in [0u64, 1, 10, 50] {
        for workers in [1usize, 4] {
            let engine = EngineConfig {
                deadline: Some(Duration::from_millis(deadline_ms)),
                workers,
                ..EngineConfig::default()
            };
            let out = engine::solve_prbp(
                &f.dag,
                PrbpConfig::new(r),
                &engine,
                HeuristicSpec::PerWorker(&make_h),
                Some(&seed),
                None,
            )
            .expect("a seeded solve always has an incumbent to return");
            let replayed = out
                .trace
                .validate(&f.dag, PrbpConfig::new(r))
                .expect("incumbent must be simulator-valid");
            assert_eq!(replayed, out.cost);
            assert!(out.cost <= seed_cost, "incumbent must not regress the seed");
            assert!(out.bound <= out.cost, "bound must stay admissible");
            assert!(out.bound > 0, "initial-state heuristic is positive here");
            assert!(!out.proven_optimal || out.stop == StopReason::Completed);
        }
    }
}

/// A deadline with no seed and no time to find a goal reports
/// `Interrupted` instead of hanging or fabricating a result.
#[test]
fn unseeded_zero_deadline_reports_interrupted() {
    let f = fft(16);
    let engine = EngineConfig {
        deadline: Some(Duration::ZERO),
        ..EngineConfig::default()
    };
    let err = engine::solve_prbp(
        &f.dag,
        PrbpConfig::new(4),
        &engine,
        HeuristicSpec::Single(&LoadCountHeuristic),
        None,
        None,
    )
    .expect_err("no incumbent can exist at a zero deadline");
    assert!(
        matches!(err, exact::ExactError::Interrupted { .. }),
        "expected Interrupted, got {err}"
    );
}

/// Cancellation fires within one expansion batch: a 64-worker solve on an
/// instance its deadline-free search could chew on for hours returns
/// promptly once the token flips, and still hands back the incumbent.
#[test]
fn cancellation_unblocks_a_64_worker_solve_promptly() {
    let f = fft(16);
    let r = 4;
    let seed = greedy_seed(&f.dag, r);
    let token = CancelToken::new();
    let engine = EngineConfig {
        workers: stress_workers(),
        cancel: Some(token.clone()),
        ..EngineConfig::default()
    };
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let canceller = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(25));
            token.cancel();
            // The solve must unblock within a generous grace period.
            let fired = Instant::now();
            while !done.load(Ordering::Acquire) {
                assert!(
                    fired.elapsed() < Duration::from_secs(30),
                    "solve failed to observe cancellation (hang)"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let out = engine::solve_prbp(
            &f.dag,
            PrbpConfig::new(r),
            &engine,
            HeuristicSpec::PerWorker(&make_h),
            Some(&seed),
            None,
        )
        .expect("seeded solve returns its incumbent on cancellation");
        done.store(true, Ordering::Release);
        assert_eq!(out.stop, StopReason::Cancelled);
        let replayed = out
            .trace
            .validate(&f.dag, PrbpConfig::new(r))
            .expect("incumbent must be simulator-valid");
        assert_eq!(replayed, out.cost);
        canceller.join().expect("canceller thread");
    });
}

/// The published incumbent cost is monotone non-increasing and the
/// published bound monotone non-decreasing, as observed live from another
/// thread through the `Progress` channel.
#[test]
fn progress_incumbents_are_monotone() {
    let f = zipper(4, 6);
    let r = 3;
    let seed = greedy_seed(&f.dag, r);
    let progress: Progress<pebble_game::moves::PrbpMove> = Progress::new();
    let engine = EngineConfig {
        deadline: Some(Duration::from_millis(500)),
        workers: 4,
        ..EngineConfig::default()
    };
    std::thread::scope(|scope| {
        let observer = {
            let progress = progress.clone();
            scope.spawn(move || {
                let mut costs: Vec<usize> = Vec::new();
                let mut bounds: Vec<usize> = Vec::new();
                let started = Instant::now();
                while started.elapsed() < Duration::from_millis(600) {
                    if let Some(c) = progress.cost() {
                        costs.push(c);
                    }
                    bounds.push(progress.bound());
                    std::thread::yield_now();
                }
                (costs, bounds)
            })
        };
        let out = engine::solve_prbp(
            &f.dag,
            PrbpConfig::new(r),
            &engine,
            HeuristicSpec::PerWorker(&make_h),
            Some(&seed),
            Some(&progress),
        )
        .expect("seeded solve returns an incumbent");
        let (costs, bounds) = observer.join().expect("observer thread");
        assert!(
            costs.windows(2).all(|w| w[1] <= w[0]),
            "published incumbent cost must never increase: {costs:?}"
        );
        assert!(
            bounds.windows(2).all(|w| w[1] >= w[0]),
            "published bound must never decrease: {bounds:?}"
        );
        // The channel's final state agrees with the returned outcome.
        assert_eq!(progress.cost(), Some(out.cost));
        assert!(progress.bound() <= out.cost);
    });
}

/// Repeated parallel runs are answer-deterministic: every run proves the
/// same optimum the sequential legacy solver proves, whatever the
/// interleaving.
#[test]
fn repeated_parallel_runs_agree_on_the_optimum() {
    let cases: Vec<(Dag, usize)> = vec![(zipper(2, 3).dag, 4), (chained_gadgets(1).dag, 4)];
    for (dag, r) in &cases {
        let legacy = exact::optimal_prbp_cost(dag, PrbpConfig::new(*r), SearchConfig::default())
            .expect("corpus instances solve");
        for run in 0..8 {
            let engine = EngineConfig {
                workers: 4,
                ..EngineConfig::default()
            };
            let out = engine::solve_prbp(
                dag,
                PrbpConfig::new(*r),
                &engine,
                HeuristicSpec::PerWorker(&make_h),
                None,
                None,
            )
            .expect("corpus instances solve");
            assert!(out.proven_optimal, "run {run} failed to prove optimality");
            assert_eq!(
                out.cost, legacy,
                "run {run} disagrees with the legacy optimum"
            );
        }
    }
}

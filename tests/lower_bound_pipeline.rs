//! Integration of the lower-bound pipeline: strategies produce traces, traces
//! produce partitions (Lemmas 6.4 / 6.8), partitions produce bounds
//! (Theorems 6.5 / 6.7), and the analytic bounds of Section 6.3 are honoured
//! by the constructive strategies.

use prbp::bounds::analytic::{
    attention_prbp_lower_bound, fft_prbp_lower_bound, matmul_prbp_lower_bound,
};
use prbp::bounds::counterexample;
use prbp::bounds::from_pebbling::{
    dominator_partition_from_prbp, edge_partition_from_prbp, hong_kung_partition,
    subsequence_lower_bound,
};
use prbp::dag::generators::{
    attention_full, fft, kary_tree, matmul, matvec, spartition_counterexample,
};
use prbp::game::convert::rbp_to_prbp;
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies;

#[test]
fn full_pipeline_on_matvec() {
    let m = 5;
    let g = matvec(m);
    let r = m + 3;
    let trace = strategies::matvec::prbp_streaming(&g);
    let cost = trace.validate(&g.dag, PrbpConfig::new(r)).unwrap();

    let ep = edge_partition_from_prbp(&g.dag, &trace, r);
    ep.validate(&g.dag, 2 * r).unwrap();
    let dp = dominator_partition_from_prbp(&g.dag, &trace, r);
    dp.validate(&g.dag, 2 * r).unwrap();

    assert!(subsequence_lower_bound(r, ep.class_count()) <= cost);
    assert!(subsequence_lower_bound(r, dp.class_count()) <= cost);
    assert!(cost <= r * ep.class_count());
}

#[test]
fn hong_kung_pipeline_on_rbp_traces() {
    let t = kary_tree(2, 4);
    let r = 3;
    let rbp = strategies::tree::rbp_tree(&t);
    let cost = rbp.validate(&t.dag, RbpConfig::new(r)).unwrap();
    let partition = hong_kung_partition(&t.dag, &rbp, r);
    partition.validate(&t.dag, 2 * r).unwrap();
    assert!(subsequence_lower_bound(r, partition.class_count()) <= cost);

    // The same pebbling converted to PRBP (Prop 4.1) feeds the PRBP lemmas.
    let prbp = rbp_to_prbp(&t.dag, &rbp, r).unwrap();
    let prbp_cost = prbp.validate(&t.dag, PrbpConfig::new(r)).unwrap();
    assert!(prbp_cost <= cost);
    let ep = edge_partition_from_prbp(&t.dag, &prbp, r);
    ep.validate(&t.dag, 2 * r).unwrap();
}

#[test]
fn analytic_bounds_hold_for_the_constructive_strategies() {
    // FFT (Theorem 6.9).
    let (m, r) = (256usize, 16usize);
    let f = fft(m);
    let fft_cost = strategies::fft::prbp_blocked(&f, r)
        .unwrap()
        .validate(&f.dag, PrbpConfig::new(r))
        .unwrap();
    assert!(fft_cost as f64 >= fft_prbp_lower_bound(m, r));

    // Matrix multiplication (Theorem 6.10).
    let mm = matmul(8, 8, 8);
    let mm_cost = strategies::matmul::prbp_tiled(&mm, 16)
        .unwrap()
        .validate(&mm.dag, PrbpConfig::new(16))
        .unwrap();
    assert!(mm_cost as f64 >= matmul_prbp_lower_bound(8, 8, 8, 16));

    // Attention (Theorem 6.11).
    let att = attention_full(8, 2);
    let att_cost = strategies::attention::prbp_streaming(&att, 19)
        .unwrap()
        .validate(&att.dag, PrbpConfig::new(19))
        .unwrap();
    assert!(att_cost as f64 >= attention_prbp_lower_bound(8, 2, 19));
}

#[test]
fn lemma_5_4_counterexample_end_to_end() {
    let c = spartition_counterexample(24);
    let cost = counterexample::prbp_trivial_trace(&c)
        .validate(
            &c.dag,
            PrbpConfig::new(counterexample::COUNTEREXAMPLE_CACHE),
        )
        .unwrap();
    assert_eq!(cost, 8);
    let p = counterexample::partition_from_pebbling(&c);
    // Valid as an S-dominator partition, invalid as a full S-partition.
    assert!(p.validate_dominator_only(&c.dag, 6).is_ok());
    assert!(p.validate(&c.dag, 6).is_err());
    // The classic bound would claim far more than the true cost.
    let false_bound = 3 * (counterexample::min_spartition_classes_lower_bound(24) - 1);
    assert!(false_bound > cost);
}

//! Pins the admissibility contract of every shipped `LowerBound`: evaluated
//! on the *initial* state of the Figure 1, zipper, matvec and k-ary-tree
//! instances, no heuristic may exceed the exact optimum computed by the
//! solvers. (Admissibility must hold at *every* state; the initial state is
//! where the bounds are largest relative to the remaining cost, and
//! `tests/solver_equivalence.rs` covers the rest indirectly — an
//! inadmissible interior state would change an optimum.)

use pebble_bounds::{SDominatorHeuristic, SEdgeHeuristic};
use pebble_dag::generators::{fig1_full, kary_tree, matvec, zipper};
use pebble_dag::Dag;
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound, SearchConfig, ZeroHeuristic};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;

fn heuristics() -> Vec<Box<dyn LowerBound>> {
    vec![
        Box::new(ZeroHeuristic),
        Box::new(LoadCountHeuristic),
        Box::new(SEdgeHeuristic::new()),
        Box::new(SDominatorHeuristic::new()),
    ]
}

fn assert_admissible(name: &str, dag: &Dag, r_rbp: Option<usize>, r_prbp: usize) {
    if let Some(r) = r_rbp {
        let opt = exact::optimal_rbp_cost(dag, RbpConfig::new(r), SearchConfig::default())
            .unwrap_or_else(|e| panic!("{name}: RBP unsolvable with r={r}: {e}"));
        for h in heuristics() {
            let bound = exact::rbp_initial_bound(dag, RbpConfig::new(r), h.as_ref());
            assert!(
                bound <= opt,
                "{name}: {} RBP bound {bound} exceeds OPT {opt} (r={r})",
                h.name()
            );
        }
    }
    let opt = exact::optimal_prbp_cost(dag, PrbpConfig::new(r_prbp), SearchConfig::default())
        .unwrap_or_else(|e| panic!("{name}: PRBP unsolvable with r={r_prbp}: {e}"));
    for h in heuristics() {
        let bound = exact::prbp_initial_bound(dag, PrbpConfig::new(r_prbp), h.as_ref());
        assert!(
            bound <= opt,
            "{name}: {} PRBP bound {bound} exceeds OPT {opt} (r={r_prbp})",
            h.name()
        );
    }
}

#[test]
fn admissible_on_fig1() {
    let f = fig1_full();
    assert_admissible("fig1", &f.dag, Some(4), 4);
}

#[test]
fn admissible_on_zipper() {
    let z = zipper(2, 3);
    assert_admissible("zipper(2,3)", &z.dag, Some(4), 4);
    let z = zipper(3, 4);
    assert_admissible("zipper(3,4)", &z.dag, None, 5);
}

#[test]
fn admissible_on_matvec() {
    let mv = matvec(2);
    assert_admissible("matvec(2)", &mv.dag, Some(mv.dag.max_in_degree() + 1), 5);
}

#[test]
fn admissible_on_kary_trees() {
    let t = kary_tree(2, 2);
    assert_admissible("kary(2,2)", &t.dag, Some(3), 3);
    let t = kary_tree(3, 2);
    assert_admissible("kary(3,2)", &t.dag, Some(4), 3);
}

#[test]
fn nontrivial_bounds_actually_fire() {
    // The admissibility tests above would pass for heuristics that always
    // return 0; pin that the load-count family actually produces positive
    // bounds where loads are provably required.
    let mv = matvec(2);
    for h in [
        &LoadCountHeuristic as &dyn LowerBound,
        &SEdgeHeuristic::new(),
        &SDominatorHeuristic::new(),
    ] {
        let bound = exact::prbp_initial_bound(&mv.dag, PrbpConfig::new(5), h);
        assert!(bound > 0, "{} returned 0 on matvec(2)", h.name());
    }
}

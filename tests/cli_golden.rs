//! Golden-file snapshots of the `prbp` CLI's JSON output documents.
//!
//! CLI consumers parse the `schedule` / `bound` documents programmatically,
//! so their schema — field names, nesting, `gap` semantics, string escaping
//! — must not drift silently. Each test runs the real binary
//! (`CARGO_BIN_EXE_prbp`) in a scratch directory with a fixed input file
//! name (paths are embedded in the document, so the name must be stable)
//! and compares stdout byte-for-byte against the committed snapshot under
//! `tests/golden_cli/`.
//!
//! To refresh after an *intentional* schema or cost change:
//! `UPDATE_GOLDEN=1 cargo test --test cli_golden` and commit the diff.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prbp-golden-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run the binary in `dir`, asserting exit code 0; returns stdout.
fn run(dir: &Path, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_prbp"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn prbp");
    assert!(
        out.status.success(),
        "prbp {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("CLI output is UTF-8")
}

fn check_golden(snapshot: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_cli")
        .join(snapshot);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate with UPDATE_GOLDEN=1 cargo test --test cli_golden"
        , path.display())
    });
    assert!(
        expected == actual,
        "CLI output drifted from {}.\n--- expected\n{expected}\n--- actual\n{actual}\n\
         If the change is intentional, refresh with UPDATE_GOLDEN=1 cargo test --test cli_golden",
        path.display()
    );
}

/// Generate the fixed fig1 edge-list input in `dir`.
fn gen_fig1(dir: &Path) {
    run(dir, &["gen", "--family", "fig1", "--out", "fig1.el"]);
}

#[test]
fn schedule_document_beam() {
    let dir = scratch_dir("beam");
    gen_fig1(&dir);
    let doc = run(
        &dir,
        &[
            "schedule",
            "--input",
            "fig1.el",
            "--r",
            "4",
            "--scheduler",
            "beam:1",
        ],
    );
    check_golden("schedule_fig1_beam1.json", &doc);
}

#[test]
fn schedule_document_streaming_greedy() {
    // The default scheduler takes the streaming certification path, which
    // must emit the identical document schema.
    let dir = scratch_dir("greedy");
    gen_fig1(&dir);
    let doc = run(&dir, &["schedule", "--input", "fig1.el", "--r", "4"]);
    check_golden("schedule_fig1_greedy.json", &doc);
}

#[test]
fn schedule_document_compose() {
    let dir = scratch_dir("compose");
    gen_fig1(&dir);
    let doc = run(
        &dir,
        &[
            "schedule",
            "--input",
            "fig1.el",
            "--r",
            "4",
            "--scheduler",
            "compose",
        ],
    );
    check_golden("schedule_fig1_compose.json", &doc);
}

#[test]
fn schedule_document_rbp_model() {
    let dir = scratch_dir("rbp");
    gen_fig1(&dir);
    let doc = run(
        &dir,
        &[
            "schedule",
            "--input",
            "fig1.el",
            "--r",
            "6",
            "--model",
            "rbp",
            "--scheduler",
            "greedy:lru:natural",
        ],
    );
    check_golden("schedule_fig1_rbp.json", &doc);
}

#[test]
fn bound_document() {
    let dir = scratch_dir("bound");
    gen_fig1(&dir);
    let doc = run(&dir, &["bound", "--input", "fig1.el", "--r", "4"]);
    check_golden("bound_fig1.json", &doc);
}

#[test]
fn schedule_document_escapes_awkward_paths() {
    // Paths land inside JSON strings; quotes and non-ASCII must be escaped
    // with real JSON escapes (schema consumers use strict parsers).
    let dir = scratch_dir("escape");
    run(
        dir.as_path(),
        &["gen", "--family", "fig1", "--out", "fig\"1ü.el"],
    );
    let doc = run(
        &dir,
        &[
            "schedule",
            "--input",
            "fig\"1ü.el",
            "--r",
            "4",
            "--scheduler",
            "beam:1",
        ],
    );
    check_golden("schedule_escaped_path.json", &doc);
    // And it must still be machine-parseable JSON.
    assert!(doc.contains("\\\""));
}

//! Smoke tests pinning the paper's two headline propositions on small DAGs,
//! independently of the broader `tests/paper_claims.rs` suite: if either of
//! these fails, the reproduction is broken at its core.
//!
//! * **Proposition 4.1** — every one-shot RBP pebbling converts into a PRBP
//!   pebbling of the same or lower I/O cost, so `OPT_PRBP ≤ OPT_RBP`.
//! * **Proposition 4.5** — on binary reduction trees PRBP is *strictly*
//!   cheaper than RBP at `r = 3`.

use prbp::dag::generators::{binary_tree, fig1_full, kary_tree};
use prbp::game::convert::rbp_to_prbp;
use prbp::game::exact;
use prbp::game::moves::Model;
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies::{topological, tree};

/// Proposition 4.1, constructive half: converting a concrete valid RBP trace
/// yields a valid PRBP trace that costs no more.
#[test]
fn prop_4_1_conversion_preserves_cost() {
    let dags = vec![fig1_full().dag, binary_tree(3), kary_tree(3, 2).dag];
    for dag in dags {
        let r = dag.max_in_degree() + 1;
        let rbp = topological::rbp_topological(&dag, r).expect("r >= Δin + 1");
        let rbp_cost = rbp
            .validate(&dag, RbpConfig::new(r))
            .expect("valid RBP trace");

        let prbp = rbp_to_prbp(&dag, &rbp, r).expect("Prop 4.1 conversion succeeds");
        let prbp_cost = prbp
            .validate(&dag, PrbpConfig::new(r))
            .expect("converted trace is a valid PRBP pebbling");
        assert!(
            prbp_cost <= rbp_cost,
            "conversion increased cost: PRBP {prbp_cost} > RBP {rbp_cost}"
        );
    }
}

/// Proposition 4.1 at the level of optima: `OPT_PRBP ≤ OPT_RBP` wherever both
/// exact solvers terminate.
#[test]
fn prop_4_1_optimum_never_worse() {
    for dag in [fig1_full().dag, binary_tree(2), binary_tree(3)] {
        let r = dag.max_in_degree() + 1;
        let rbp = exact::optimal_cost(&dag, r, Model::Rbp).expect("RBP optimum");
        let prbp = exact::optimal_cost(&dag, r, Model::Prbp).expect("PRBP optimum");
        assert!(prbp <= rbp, "OPT_PRBP {prbp} > OPT_RBP {rbp}");
        assert!(prbp >= dag.trivial_cost());
    }
}

/// Proposition 4.5: on the depth-3 binary tree with r = 3 the separation is
/// strict — both by exact optimum and by the constructive tree strategies.
#[test]
fn prop_4_5_strict_separation_on_binary_tree() {
    let dag = binary_tree(3);
    let rbp_opt = exact::optimal_cost(&dag, 3, Model::Rbp).expect("RBP optimum");
    let prbp_opt = exact::optimal_cost(&dag, 3, Model::Prbp).expect("PRBP optimum");
    assert!(
        prbp_opt < rbp_opt,
        "expected strict separation, got OPT_PRBP {prbp_opt} >= OPT_RBP {rbp_opt}"
    );

    // The constructive strategies witness the same strict gap on deeper trees
    // (where exact search is out of reach) via the closed-form costs.
    for depth in 3..=6 {
        let t = kary_tree(2, depth);
        let rbp = tree::rbp_tree(&t)
            .validate(&t.dag, RbpConfig::new(3))
            .expect("valid RBP tree strategy");
        let prbp = tree::prbp_tree(&t)
            .validate(&t.dag, PrbpConfig::new(3))
            .expect("valid PRBP tree strategy");
        assert!(prbp < rbp, "depth {depth}: PRBP {prbp} not < RBP {rbp}");
        assert_eq!(rbp, tree::rbp_tree_cost_formula(2, depth));
        assert_eq!(prbp, tree::prbp_tree_cost_formula(2, depth));
    }
}

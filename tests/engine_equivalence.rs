//! The unified engine must be *exactly* the legacy A* solvers.
//!
//! PR 6 collapsed the separate RBP/PRBP A* loops and the beam into one
//! anytime engine; this suite is the differential proof that nothing
//! changed. Over the same corpus as `solver_equivalence` — random layered
//! DAGs (property test), every structured generator family, and the model
//! variants (re-computation, sliding, `clear`, no-deletion) — it checks:
//!
//! * the engine at `workers = 1` and `workers = 4` returns exactly the
//!   legacy optimum, proven, with a simulator-validated trace;
//! * at `workers = 1` the search statistics (`distinct`, `expanded`) are
//!   *identical* to the legacy solver's — the anytime machinery must be
//!   inert when no deadline/cancellation/seed is attached;
//! * the beam-mode engine returns a validated schedule bracketed between
//!   the exact optimum and the adaptive (width-1) greedy.
//!
//! Release-only: the reference searches need optimised builds.

#![cfg(not(debug_assertions))]

use pebble_dag::generators::{
    chained_gadgets, fig1_full, kary_tree, matvec, pebble_collection, pyramid, random_layered,
    zipper, RandomLayeredConfig,
};
use pebble_dag::Dag;
use pebble_game::engine::{self, EngineConfig, EngineOutcome, HeuristicSpec, StopReason};
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound, SearchConfig};
use pebble_game::moves::{PrbpMove, RbpMove};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::trace::{PrbpTrace, RbpTrace};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 2] = [1, 4];

fn engine_rbp(dag: &Dag, config: RbpConfig, workers: usize) -> EngineOutcome<RbpTrace> {
    let engine = EngineConfig {
        workers,
        ..EngineConfig::default()
    };
    let make = || Box::new(LoadCountHeuristic) as Box<dyn LowerBound>;
    let spec = if workers == 1 {
        HeuristicSpec::Single(&LoadCountHeuristic)
    } else {
        HeuristicSpec::PerWorker(&make)
    };
    engine::solve_rbp(dag, config, &engine, spec, None, None).expect("corpus instances solve")
}

fn engine_prbp(dag: &Dag, config: PrbpConfig, workers: usize) -> EngineOutcome<PrbpTrace> {
    let engine = EngineConfig {
        workers,
        ..EngineConfig::default()
    };
    let make = || Box::new(LoadCountHeuristic) as Box<dyn LowerBound>;
    let spec = if workers == 1 {
        HeuristicSpec::Single(&LoadCountHeuristic)
    } else {
        HeuristicSpec::PerWorker(&make)
    };
    engine::solve_prbp(dag, config, &engine, spec, None, None).expect("corpus instances solve")
}

/// Engine == legacy on an RBP instance, at every worker count.
fn assert_rbp_engine_matches(dag: &Dag, config: RbpConfig) {
    let legacy =
        exact::optimal_rbp_cost_with(dag, config, SearchConfig::default(), &LoadCountHeuristic)
            .expect("legacy reference must solve the instance");
    for workers in WORKER_COUNTS {
        let out = engine_rbp(dag, config, workers);
        assert_eq!(
            out.cost, legacy.cost,
            "engine (workers={workers}) disagrees with legacy RBP optimum (r={})",
            config.r
        );
        assert!(out.proven_optimal, "engine must prove the optimum");
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.bound, out.cost, "proven solves raise bound to cost");
        let replayed = out
            .trace
            .validate(dag, config)
            .expect("engine trace must replay");
        assert_eq!(replayed, out.cost, "trace cost must match reported cost");
        if workers == 1 {
            assert_eq!(
                out.stats.distinct, legacy.stats.distinct,
                "sequential engine must intern exactly the legacy state set"
            );
            assert_eq!(
                out.stats.expanded, legacy.stats.expanded,
                "sequential engine must expand exactly the legacy state set"
            );
        }
    }
}

/// Engine == legacy on a PRBP instance, at every worker count.
fn assert_prbp_engine_matches(dag: &Dag, config: PrbpConfig) {
    let legacy =
        exact::optimal_prbp_cost_with(dag, config, SearchConfig::default(), &LoadCountHeuristic)
            .expect("legacy reference must solve the instance");
    for workers in WORKER_COUNTS {
        let out = engine_prbp(dag, config, workers);
        assert_eq!(
            out.cost, legacy.cost,
            "engine (workers={workers}) disagrees with legacy PRBP optimum (r={})",
            config.r
        );
        assert!(out.proven_optimal, "engine must prove the optimum");
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.bound, out.cost, "proven solves raise bound to cost");
        let replayed = out
            .trace
            .validate(dag, config)
            .expect("engine trace must replay");
        assert_eq!(replayed, out.cost, "trace cost must match reported cost");
        if workers == 1 {
            assert_eq!(
                out.stats.distinct, legacy.stats.distinct,
                "sequential engine must intern exactly the legacy state set"
            );
            assert_eq!(
                out.stats.expanded, legacy.stats.expanded,
                "sequential engine must expand exactly the legacy state set"
            );
        }
    }
}

/// Beam-mode engine: validated, bracketed between the optimum and the
/// adaptive width-1 greedy.
fn assert_beam_bracketed(dag: &Dag, r: usize, optimum: usize) {
    let beam = |width: usize| -> EngineOutcome<PrbpTrace> {
        let engine = EngineConfig {
            width: Some(width),
            branch: 4,
            ..EngineConfig::default()
        };
        engine::solve_prbp(
            dag,
            PrbpConfig::new(r),
            &engine,
            HeuristicSpec::Single(&LoadCountHeuristic),
            None,
            None,
        )
        .expect("beam schedules any r >= 2 instance")
    };
    let adaptive = beam(1);
    let wide = beam(8);
    for out in [&adaptive, &wide] {
        let replayed = out
            .trace
            .validate(dag, PrbpConfig::new(r))
            .expect("beam trace must replay");
        assert_eq!(replayed, out.cost);
        assert!(out.cost >= optimum, "beam cannot beat the proven optimum");
        assert!(out.bound <= optimum, "beam bound must stay admissible");
    }
    assert!(
        wide.cost <= adaptive.cost,
        "width 8 must not lose to the adaptive greedy on corpus instances \
         (wide {} vs adaptive {})",
        wide.cost,
        adaptive.cost
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_dags_engine_equals_legacy(
        seed in any::<u64>(),
        layers in 2usize..4,
        width in 1usize..3,
    ) {
        let dag = random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: 2,
            seed,
        });
        assert_rbp_engine_matches(&dag, RbpConfig::new(dag.max_in_degree() + 1));
        assert_prbp_engine_matches(&dag, PrbpConfig::new(2));
        assert_prbp_engine_matches(&dag, PrbpConfig::new(3));
    }
}

#[test]
fn structured_generators_engine_equals_legacy_rbp() {
    let cases: Vec<Dag> = vec![
        fig1_full().dag,
        zipper(2, 3).dag,
        kary_tree(2, 2).dag,
        chained_gadgets(1).dag,
        pyramid(2).dag,
    ];
    for dag in &cases {
        assert_rbp_engine_matches(dag, RbpConfig::new(dag.max_in_degree() + 1));
    }
}

#[test]
fn structured_generators_engine_equals_legacy_prbp() {
    let cases: Vec<(Dag, usize)> = vec![
        (fig1_full().dag, 4),
        (zipper(2, 3).dag, 4),
        (matvec(2).dag, 5),
        (kary_tree(2, 2).dag, 3),
        (chained_gadgets(1).dag, 4),
        (pebble_collection(2, 3).dag, 4),
        (pyramid(2).dag, 2),
    ];
    for (dag, r) in &cases {
        assert_prbp_engine_matches(dag, PrbpConfig::new(*r));
    }
}

#[test]
fn model_variants_engine_equals_legacy() {
    let f = fig1_full();
    assert_rbp_engine_matches(&f.dag, RbpConfig::new(4).with_recompute());
    assert_rbp_engine_matches(&f.dag, RbpConfig::new(4).with_sliding());
    assert_prbp_engine_matches(&f.dag, PrbpConfig::new(4).with_clear());
    assert_prbp_engine_matches(&f.dag, PrbpConfig::new(4).with_no_delete());
}

#[test]
fn beam_mode_engine_is_bracketed_on_the_structured_corpus() {
    let cases: Vec<(Dag, usize)> = vec![
        (fig1_full().dag, 4),
        (zipper(2, 3).dag, 4),
        (matvec(2).dag, 5),
        (kary_tree(2, 2).dag, 3),
        (chained_gadgets(1).dag, 4),
        (pebble_collection(2, 3).dag, 4),
        (pyramid(2).dag, 2),
    ];
    for (dag, r) in &cases {
        let optimum = exact::optimal_prbp_cost(dag, PrbpConfig::new(*r), SearchConfig::default())
            .expect("corpus instances solve");
        assert_beam_bracketed(dag, *r, optimum);
    }
}

/// PRBP moves are the engine's currency; keep the suite honest about the
/// types it quantifies over (compile-time check that the outcome move types
/// line up with the trace types the simulators replay).
#[allow(dead_code)]
fn type_pins(
    prbp: EngineOutcome<PrbpTrace>,
    rbp: EngineOutcome<RbpTrace>,
) -> (Vec<PrbpMove>, Vec<RbpMove>) {
    (prbp.trace.moves, rbp.trace.moves)
}

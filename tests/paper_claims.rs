//! Cross-crate integration tests: the paper's headline claims, exercised
//! through the public facade (`prbp::*`) exactly as a downstream user would.

use prbp::dag::generators::{
    binary_tree, chained_gadgets, fig1_full, kary_tree, matvec, spartition_counterexample, zipper,
};
use prbp::game::exact::{self, SearchConfig};
use prbp::game::moves::Model;
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies;

/// Proposition 4.1: OPT_PRBP ≤ OPT_RBP whenever both are defined.
#[test]
fn prbp_never_worse_than_rbp_on_small_dags() {
    let dags = vec![
        fig1_full().dag,
        binary_tree(3),
        chained_gadgets(1).dag,
        zipper(3, 3).dag,
    ];
    for dag in dags {
        let r = dag.max_in_degree() + 1;
        let rbp = exact::optimal_cost(&dag, r, Model::Rbp).unwrap();
        let prbp = exact::optimal_cost(&dag, r, Model::Prbp).unwrap();
        assert!(prbp <= rbp, "PRBP {prbp} > RBP {rbp}");
        // Both are at least the trivial cost.
        assert!(prbp >= dag.trivial_cost());
    }
}

/// Proposition 4.2: the Figure 1 DAG separates the models at r = 4.
#[test]
fn figure_1_separation() {
    let f = fig1_full();
    assert_eq!(exact::optimal_cost(&f.dag, 4, Model::Rbp).unwrap(), 3);
    assert_eq!(exact::optimal_cost(&f.dag, 4, Model::Prbp).unwrap(), 2);
}

/// Proposition 4.3: matrix-vector multiplication separation for m ≥ 3.
#[test]
fn matvec_separation() {
    for m in [3usize, 5] {
        let g = matvec(m);
        let prbp = strategies::matvec::prbp_streaming(&g)
            .validate(&g.dag, PrbpConfig::new(m + 3))
            .unwrap();
        assert_eq!(prbp, m * m + 2 * m);
        assert!(prbp < g.rbp_lower_bound());
        let rbp = strategies::matvec::rbp_row_by_row(&g)
            .validate(&g.dag, RbpConfig::new(2 * m))
            .unwrap();
        assert_eq!(rbp, g.rbp_lower_bound());
    }
}

/// Proposition 4.7: the gap between the models grows linearly in n.
#[test]
fn linear_gap_in_chained_gadgets() {
    for copies in [4usize, 16] {
        let c = chained_gadgets(copies);
        let prbp = strategies::chain_gadget::prbp_trace(&c)
            .validate(&c.dag, PrbpConfig::new(4))
            .unwrap();
        assert_eq!(prbp, 2);
        let rbp = strategies::chain_gadget::rbp_trace(&c)
            .validate(&c.dag, RbpConfig::new(4))
            .unwrap();
        assert!(rbp >= copies + 2);
    }
}

/// Appendix A.2: tree formulas hold and PRBP wins from depth 3 on.
#[test]
fn tree_formulas_and_gap() {
    for (k, d) in [(2usize, 4usize), (3, 3)] {
        let t = kary_tree(k, d);
        let rbp = strategies::tree::rbp_tree(&t)
            .validate(&t.dag, RbpConfig::new(k + 1))
            .unwrap();
        let prbp = strategies::tree::prbp_tree(&t)
            .validate(&t.dag, PrbpConfig::new(k + 1))
            .unwrap();
        assert_eq!(rbp, strategies::tree::rbp_tree_cost_formula(k, d));
        assert_eq!(prbp, strategies::tree::prbp_tree_cost_formula(k, d));
        assert!(prbp < rbp);
    }
}

/// Section 3: PRBP pebbles any DAG with r = 2, even when RBP cannot.
#[test]
fn prbp_works_with_two_pebbles_where_rbp_cannot() {
    let c = spartition_counterexample(4);
    // RBP is infeasible (Δ_in + 1 > r for any r < 17).
    assert!(exact::optimal_cost(&c.dag, 3, Model::Rbp).is_err());
    // PRBP pebbles it with 2 pebbles via the generic topological strategy.
    let trace = strategies::topological::prbp_topological(&c.dag, 2).unwrap();
    let cost = trace.validate(&c.dag, PrbpConfig::new(2)).unwrap();
    assert!(cost >= c.dag.trivial_cost());
}

/// One-shot property: no edge is ever aggregated twice, even by the generic
/// strategies on irregular DAGs.
#[test]
fn one_shot_is_enforced_end_to_end() {
    use prbp::dag::generators::{random_layered, RandomLayeredConfig};
    for seed in 0..4 {
        let dag = random_layered(RandomLayeredConfig {
            layers: 5,
            width: 5,
            max_in_degree: 3,
            seed,
        });
        let trace = strategies::topological::prbp_topological(&dag, 3).unwrap();
        let mut game = prbp::game::prbp::PrbpGame::new(&dag, PrbpConfig::new(3));
        for mv in &trace.moves {
            game.apply(*mv).unwrap();
        }
        assert!(game.is_terminal());
        assert_eq!(game.compute_steps(), dag.edge_count());
    }
}

/// The exact solvers and the search limits cooperate: a tiny limit fails
/// loudly instead of returning a wrong optimum.
#[test]
fn search_limit_is_honoured() {
    let f = fig1_full();
    let result =
        exact::optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::with_max_states(2));
    assert!(result.is_err());
}

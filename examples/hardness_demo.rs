//! The Theorem 4.8 reduction in action: for every vertex of a small graph,
//! build the pebbling instance and report whether partial computations
//! strictly help on it (which happens exactly when the vertex is *not*
//! contained in any maximum independent set).
//!
//! Run with: `cargo run --example hardness_demo`

use prbp::hardness::independent_set::{max_independent_set, maxinset_vertex};
use prbp::hardness::reduction48;
use prbp::hardness::UGraph;

fn main() {
    // A 5-cycle with one chord: vertices 0-1-2-3-4-0 plus the edge {1, 3}.
    let g = UGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
    println!(
        "source graph G0: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );
    let best = max_independent_set(&g);
    println!(
        "one maximum independent set: {best:?} (size {})",
        best.len()
    );
    println!();
    println!(
        "{:>3}  {:>22}  {:>22}  {:>10}  {:>6}",
        "v0", "in a maximum ind. set?", "OPT_PRBP < OPT_RBP?", "DAG nodes", "r"
    );
    for v0 in 0..g.vertex_count() {
        let reduction = reduction48::build(&g, v0);
        println!(
            "{:>3}  {:>22}  {:>22}  {:>10}  {:>6}",
            v0,
            maxinset_vertex(&g, v0),
            reduction.prbp_strictly_better(),
            reduction.dag.node_count(),
            reduction.r
        );
    }
    println!();
    println!(
        "Theorem 4.8: deciding the right-hand column is NP-hard, because it is \
         the negation of the maxinset-vertex column."
    );
}

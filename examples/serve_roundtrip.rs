//! Serving round trip, fully in-process: start the certified-scheduling
//! server on a scratch cache, submit the same DAG twice over real HTTP, and
//! watch the second request come back from the content-addressed cache.
//!
//! Run with: `cargo run --example serve_roundtrip`

use prbp::io::Format;
use prbp::serve::http::client_request;
use prbp::serve::{ScheduleCache, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache_dir = std::env::temp_dir().join(format!("prbp-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = Arc::new(ScheduleCache::open(&cache_dir)?);
    let server = Server::start(
        &ServeConfig {
            addr: "127.0.0.1:0".to_string(), // port 0: pick a free port
            deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
        cache,
    )?;
    let addr = server.local_addr().to_string();
    println!("serving on http://{addr}");

    // A 64-point FFT butterfly, shipped as the JSON interchange format.
    let doc = prbp::io::write(&prbp::dag::generators::fft(64).dag, Format::Json);
    let timeout = Duration::from_secs(60);

    // Cold: solved under the deadline, certified, inserted into the cache.
    let (status, body) = client_request(
        &addr,
        "POST",
        "/v1/schedule?r=16&deadline_ms=10000",
        doc.as_bytes(),
        timeout,
    )?;
    let cold = String::from_utf8_lossy(&body).into_owned();
    println!("cold  ({status}): {cold}");

    // Warm: same shape, answered from the cache after the stored schedule
    // re-validated through the simulator on this request's DAG.
    let (status, body) =
        client_request(&addr, "POST", "/v1/schedule?r=16", doc.as_bytes(), timeout)?;
    let warm = String::from_utf8_lossy(&body).into_owned();
    println!("warm  ({status}): {warm}");
    assert!(
        warm.contains("\"cache\":\"hit\""),
        "second request must hit"
    );

    // Each response carries a per-stage timing breakdown. Side by side, it
    // shows exactly what the cache buys: the cold request pays in `solve`
    // and `validate`, the hit pays only the (simulator re-validating)
    // `cache` stage.
    println!("\nstage          cold         hit");
    for stage in ["read", "parse", "canon", "cache", "solve", "validate"] {
        let key = format!("\"{stage}_us\":");
        println!(
            "{stage:<9} {:>9} {:>11}",
            stage_us(&cold, &key).map_or("-".into(), |v| format!("{v}us")),
            stage_us(&warm, &key).map_or("-".into(), |v| format!("{v}us")),
        );
    }

    let (status, body) = client_request(&addr, "GET", "/v1/stats", b"", timeout)?;
    println!("\nstats ({status}): {}", String::from_utf8_lossy(&body));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
    Ok(())
}

/// Pull one `"<stage>_us":N` value out of a response's `"stages"` object
/// (the top level also has a `"solve_us"` key, so scope the search).
fn stage_us(body: &str, key: &str) -> Option<u64> {
    let stages = &body[body.find("\"stages\":{")?..];
    let stages = &stages[..stages.find('}')? + 1];
    let rest = &stages[stages.find(key)? + key.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

//! Structure-aware scheduling end to end: detect the structure of a DAG,
//! decompose it, and let `compose` schedule each component independently —
//! then compare the certified gap against the generic portfolio.
//!
//! Run with: `cargo run --release --example decompose_api -- [m] [r]`
//! (defaults: 64-point FFT, r = 16).

use prbp::dag::decompose::{classify, decompose, is_series_parallel, Strategy};
use prbp::dag::generators::{fft, matmul};
use prbp::sched::{best_prbp, compose_prbp, default_suite, ComposeConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let r: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    // --- Structure detection -------------------------------------------
    let f = fft(m);
    let all: Vec<_> = f.dag.nodes().collect();
    println!(
        "{m}-point FFT: {} nodes, shape = {:?}, series-parallel = {}",
        f.dag.node_count(),
        classify(&f.dag, &all),
        is_series_parallel(&f.dag),
    );

    // --- Decomposition -------------------------------------------------
    // Bands of consecutive levels shatter the butterfly into independent
    // sub-FFT blocks — the structure the paper's blocked strategy uses.
    let bands = decompose(&f.dag, Strategy::LevelBands { max_nodes: 4 * r })
        .expect("level bands always apply");
    println!(
        "level bands (cap {}): {} components, largest {} nodes, {} cut edges",
        4 * r,
        bands.components.len(),
        bands.max_component_size(),
        bands.cut_edges.len(),
    );
    for (i, c) in bands.components.iter().enumerate().take(3) {
        println!(
            "  component {i}: {} members ({}), {} boundary inputs, {} outputs",
            c.nodes.len(),
            c.kind.name(),
            c.inputs.len(),
            c.outputs.len(),
        );
    }

    // Matmul decomposes the other way: sink cones merged into square tiles.
    let mm = matmul(8, 8, 8);
    let tiles = decompose(
        &mm.dag,
        Strategy::SinkCones {
            max_nodes: 16 * r,
            max_sinks: 3 * r / 4,
        },
    )
    .expect("matmul cones apply: every product feeds exactly one output");
    println!(
        "matmul-8 sink cones: {} tiles, {} shared source inputs stay unassigned",
        tiles.components.len(),
        tiles.shared_sources.len(),
    );

    // --- Divide-and-conquer scheduling ---------------------------------
    let outcome = compose_prbp(&f.dag, r, &ComposeConfig::default())
        .expect("r >= 2 schedules any DAG in PRBP");
    let (_, _, portfolio) =
        best_prbp(&f.dag, r, &default_suite()).expect("portfolio handles the FFT");
    println!(
        "compose: cost {} via {} ({} components, {} exact) — generic portfolio {}",
        outcome.cost, outcome.strategy, outcome.components, outcome.exact_components, portfolio,
    );
    assert!(outcome.cost <= portfolio);
}

//! Matrix–vector multiplication I/O costs (Proposition 4.3): the PRBP
//! streaming strategy reaches the trivial cost `m² + 2m`, while RBP cannot do
//! better than `m² + 3m − 1`.
//!
//! Run with: `cargo run --example matvec_io -- [m]`

use prbp::dag::generators::matvec;
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies::matvec as strategies;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    assert!(m >= 3, "Proposition 4.3 assumes m >= 3");

    let g = matvec(m);
    println!(
        "y = A·x with A ∈ {m}×{m}: {} nodes, {} edges, trivial cost {}",
        g.dag.node_count(),
        g.dag.edge_count(),
        g.trivial_cost()
    );

    // PRBP: keep the m output accumulators resident, stream the matrix.
    let prbp_cost = strategies::prbp_streaming(&g)
        .validate(&g.dag, PrbpConfig::new(m + 3))
        .expect("valid PRBP pebbling");
    println!(
        "PRBP streaming  (r = m+3 = {:>3}): {} I/Os",
        m + 3,
        prbp_cost
    );

    // RBP: row by row, paying one extra reload per output row.
    let rbp_cost = strategies::rbp_row_by_row(&g)
        .validate(&g.dag, RbpConfig::new(2 * m))
        .expect("valid RBP pebbling");
    println!(
        "RBP row-by-row  (r = 2m  = {:>3}): {} I/Os",
        2 * m,
        rbp_cost
    );
    println!(
        "RBP lower bound (Prop 4.3)      : {} I/Os",
        g.rbp_lower_bound()
    );

    println!();
    println!(
        "partial computations save {} I/Os ({:.1}% of the RBP cost)",
        rbp_cost - prbp_cost,
        100.0 * (rbp_cost - prbp_cost) as f64 / rbp_cost as f64
    );
}

//! Heuristic scheduling at scale: pebble a ~50k-node FFT butterfly — two
//! orders of magnitude beyond exact-solver reach — and certify the result
//! against the Theorem 6.9 lower bound.
//!
//! Run with: `cargo run --release --example schedule_fft -- [m] [r]`
//! (defaults: m = 4096, 13 × 4096 = 53 248 nodes; r = 512).

use prbp::bounds::analytic::fft_prbp_lower_bound;
use prbp::dag::generators::fft;
use prbp::game::strategies::fft as fft_strategies;
use prbp::sched::{certify_prbp, OrderKind, PolicyKind, ScheduleReport, Scheduler};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let r: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);

    let f = fft(m);
    println!(
        "{m}-point FFT butterfly: {} nodes, {} edges, cache r = {r}",
        f.dag.node_count(),
        f.dag.edge_count()
    );
    assert!(
        f.dag.node_count() >= 10_000,
        "demonstration targets at-scale instances"
    );

    let mut reports: Vec<ScheduleReport> = Vec::new();
    for scheduler in [
        Scheduler::Greedy {
            policy: PolicyKind::Belady,
            order: OrderKind::Natural,
        },
        Scheduler::Beam {
            width: 1,
            branch: 1,
        },
    ] {
        let t0 = Instant::now();
        let trace = scheduler
            .run_prbp(&f.dag, r)
            .expect("PRBP schedules any DAG with r >= 2");
        let elapsed = t0.elapsed();
        // `certify_prbp` replays the trace through the PRBP simulator and
        // pairs the validated cost with the admissible lower bounds.
        let report = certify_prbp(&f.dag, r, &trace, scheduler.to_string())
            .expect("schedulers emit valid traces");
        println!(
            "  {:<24} cost {:>8}  certified gap {:>5.2}x  ({} moves, scheduled in {:.2?})",
            report.scheduler,
            report.cost,
            report.gap(),
            report.moves,
            elapsed
        );
        reports.push(report);
    }

    // The paper's blocked superstage strategy (Theorem 6.9 upper bound),
    // replayed through the same simulator and certified the same way.
    let trace = fft_strategies::prbp_blocked(&f, r).expect("r >= 4");
    let report = certify_prbp(&f.dag, r, &trace, "blocked").expect("valid strategy trace");
    println!(
        "  {:<24} cost {:>8}  certified gap {:>5.2}x  ({} moves)",
        report.scheduler,
        report.cost,
        report.gap(),
        report.moves
    );
    reports.push(report);

    let analytic = fft_prbp_lower_bound(m, r);
    let best = reports
        .iter()
        .min_by_key(|rep| rep.cost)
        .expect("non-empty");
    println!(
        "\nTheorem 6.9 analytic lower bound: {analytic:.0} I/Os; best admissible bound used: {}",
        best.best_bound
    );
    println!(
        "best schedule: {} at {} I/Os -> certified within {:.2}x of optimal",
        best.scheduler,
        best.cost,
        best.gap()
    );
    assert!(best.cost as f64 >= analytic, "no schedule beats the bound");
    assert!(
        best.gap().is_finite() && best.gap() >= 1.0,
        "certified gap must be a finite factor"
    );
}

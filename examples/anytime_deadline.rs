//! Anytime scheduling under a latency SLO: the best *certified* schedule
//! for a 2,304-node FFT butterfly in 250 milliseconds.
//!
//! The unified search engine behind the exact solvers is cancellable and
//! deadline-bounded: give it a wall-clock budget and it returns the best
//! simulator-validated schedule found so far together with an admissible
//! lower bound — a certificate, not a guess — no matter when the deadline
//! fires.
//!
//! Run with: `cargo run --release --example anytime_deadline -- [m] [r] [ms]`
//! (defaults: m = 256, r = 16, 250 ms).

use prbp::dag::generators::fft;
use prbp::game::engine::StopReason;
use prbp::sched::{anytime_prbp, certify_prbp, AnytimeConfig};
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let r: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let ms: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(250);

    let f = fft(m);
    let deadline = Duration::from_millis(ms);
    println!(
        "{m}-point FFT butterfly: {} nodes, {} edges, cache r = {r}, deadline {ms} ms",
        f.dag.node_count(),
        f.dag.edge_count()
    );

    let started = Instant::now();
    let outcome = anytime_prbp(&f.dag, r, &AnytimeConfig::new(deadline), None)
        .expect("PRBP schedules any DAG with r >= 2");
    let elapsed = started.elapsed();

    // The engine's answer is already simulator-validated; replaying it here
    // through `certify_prbp` re-proves that and pairs it with the full
    // admissible bound ladder.
    let report =
        certify_prbp(&f.dag, r, &outcome.trace, "anytime").expect("engine traces are valid");
    assert_eq!(
        report.cost, outcome.cost,
        "replay must agree with the engine"
    );
    assert!(outcome.bound <= outcome.cost, "bound stays admissible");

    let verdict = match outcome.stop {
        StopReason::Completed => "proven optimal",
        StopReason::Deadline => "deadline reached",
        StopReason::Cancelled => "cancelled",
        StopReason::Budget => "state budget reached",
    };
    println!(
        "  cost {:>6} I/Os  best bound {:>6}  certified gap {:.2}x  ({verdict} in {:.0?})",
        report.cost,
        report.best_bound,
        report.gap(),
        elapsed
    );
    assert!(
        elapsed < deadline + Duration::from_secs(5),
        "the deadline binds up to one expansion batch of slack"
    );
    assert!(report.gap().is_finite() && report.gap() >= 1.0);
    println!(
        "certificate: OPT is between {} and {} — a {:.2}x window, produced on schedule",
        report.best_bound,
        report.cost,
        report.gap()
    );
}

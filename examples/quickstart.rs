//! Quickstart: build a small computational DAG, pebble it in both models and
//! compare the optimal I/O costs (Proposition 4.2 in miniature).
//!
//! Run with: `cargo run --example quickstart`

use prbp::dag::generators::fig1_full;
use prbp::dag::stats::DagStats;
use prbp::game::exact::{self, SearchConfig};
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies::fig1;

fn main() {
    // The Figure 1 DAG of the paper: one source, one sink, 8 inner nodes.
    let f = fig1_full();
    println!("Figure 1 DAG: {}", DagStats::of(&f.dag));

    let r = 4;

    // Exact optima for both models.
    let rbp_opt =
        exact::optimal_rbp_cost(&f.dag, RbpConfig::new(r), SearchConfig::default()).unwrap();
    let prbp_opt =
        exact::optimal_prbp_cost(&f.dag, PrbpConfig::new(r), SearchConfig::default()).unwrap();
    println!("cache size r = {r}");
    println!("  OPT_RBP  = {rbp_opt}   (paper: 3)");
    println!("  OPT_PRBP = {prbp_opt}   (paper: 2)");

    // The explicit Appendix A.1 strategies, replayed and validated move by move.
    let rbp_trace = fig1::rbp_optimal_trace(&f);
    let prbp_trace = fig1::prbp_optimal_trace(&f);
    println!(
        "  Appendix A.1 RBP strategy : {} moves, validated cost {}",
        rbp_trace.len(),
        rbp_trace.validate(&f.dag, RbpConfig::new(r)).unwrap()
    );
    println!(
        "  Appendix A.1 PRBP strategy: {} moves, validated cost {}",
        prbp_trace.len(),
        prbp_trace.validate(&f.dag, PrbpConfig::new(r)).unwrap()
    );
    println!();
    println!("PRBP pebbling of the Figure 1 DAG:");
    print!("{prbp_trace}");
}

//! Reduction trees (Section 4.2.2, Appendix A.2): sweep the depth of a k-ary
//! tree with `r = k + 1` pebbles and print the validated RBP and PRBP costs
//! next to the paper's closed forms.
//!
//! Run with: `cargo run --example tree_pebbling -- [k] [max_depth]`

use prbp::dag::generators::kary_tree;
use prbp::game::prbp::PrbpConfig;
use prbp::game::rbp::RbpConfig;
use prbp::game::strategies::tree;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let max_depth: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    assert!(k >= 2, "arity must be at least 2");

    println!("k-ary reduction trees, k = {k}, r = {}", k + 1);
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "depth", "leaves", "RBP", "RBP formula", "PRBP", "PRBP formula"
    );
    for d in 1..=max_depth {
        let t = kary_tree(k, d);
        let rbp = tree::rbp_tree(&t)
            .validate(&t.dag, RbpConfig::new(k + 1))
            .expect("valid RBP pebbling");
        let prbp = tree::prbp_tree(&t)
            .validate(&t.dag, PrbpConfig::new(k + 1))
            .expect("valid PRBP pebbling");
        println!(
            "{:>5} {:>10} {:>12} {:>12} {:>12} {:>12}",
            d,
            k.pow(d as u32),
            rbp,
            tree::rbp_tree_cost_formula(k, d),
            prbp,
            tree::prbp_tree_cost_formula(k, d)
        );
    }
    println!();
    println!(
        "PRBP computes the bottom {} levels for free; RBP only the bottom 2 \
         (Proposition 4.5: the gap grows by a factor of ~k^(k-1)).",
        k + 1
    );
}

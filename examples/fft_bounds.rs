//! FFT I/O complexity (Section 6.3.1, Theorem 6.9): pebble the m-point
//! butterfly with the blocked strategy and compare against the PRBP lower
//! bound derived from S-dominator partitions.
//!
//! Run with: `cargo run --example fft_bounds -- [m] [r]`

use prbp::bounds::analytic::fft_prbp_lower_bound;
use prbp::bounds::from_pebbling::{edge_partition_from_prbp, subsequence_lower_bound};
use prbp::dag::generators::fft;
use prbp::game::prbp::PrbpConfig;
use prbp::game::strategies::fft as strategies;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let r: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    let f = fft(m);
    println!(
        "{m}-point FFT butterfly: {} nodes, {} edges, {} stages, cache r = {r}",
        f.dag.node_count(),
        f.dag.edge_count(),
        f.stages
    );

    let trace = strategies::prbp_blocked(&f, r).expect("r >= 4 required");
    let cost = trace
        .validate(&f.dag, PrbpConfig::new(r))
        .expect("valid PRBP pebbling");
    let bound = fft_prbp_lower_bound(m, r);
    println!("blocked strategy cost : {cost}");
    println!("PRBP lower bound      : {bound:.0}  (Theorem 6.9, constants explicit)");
    println!("ratio                 : {:.2}", cost as f64 / bound);

    // The Lemma 6.4 machinery applied to this very pebbling: the edge
    // partition it generates is a valid 2r-edge partition whose class count
    // sandwiches the cost.
    let partition = edge_partition_from_prbp(&f.dag, &trace, r);
    partition
        .validate(&f.dag, 2 * r)
        .expect("Lemma 6.4: valid 2r-edge partition");
    println!(
        "Lemma 6.4 edge partition: {} classes, so r·(k−1) = {} ≤ cost ≤ r·k = {}",
        partition.class_count(),
        subsequence_lower_bound(r, partition.class_count()),
        r * partition.class_count()
    );
}

//! Schedule a DAG the repository did not generate: parse an external
//! edge-list / DOT / JSON document through `pebble-io`, schedule it under
//! PRBP, and certify the result against the admissible lower bounds.
//!
//! Run with: `cargo run --release --example external_dag -- [path] [r]`
//! (with no path, a small built-in DOT document is used).

use prbp::io::{self, Format};
use prbp::sched::{certify_greedy_prbp, BoundSet, OrderKind, PolicyKind};

/// A hand-written workload: two independent chains joined by a reduction.
const BUILTIN: &str = r#"
digraph pipeline {
  // inputs
  a [label="load A"]; b [label="load B"];
  a -> a1 -> a2 -> join;
  b -> b1 -> b2 -> join;
  join -> out [color=blue];
  out [label="result"];
}
"#;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let r: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let (text, format, name) = match &path {
        Some(p) => {
            let text = std::fs::read_to_string(p).expect("readable input file");
            let format = Format::from_path(p).unwrap_or_else(|| Format::sniff(&text));
            (text, format, p.clone())
        }
        None => (BUILTIN.to_string(), Format::Dot, "<builtin>".to_string()),
    };

    // Line-precise errors: a malformed document names the offending token.
    let dag = match io::parse(&text, format) {
        Ok(dag) => dag,
        Err(err) => {
            eprintln!("{name}: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "{name} ({format}): {} nodes, {} edges, r = {r}",
        dag.node_count(),
        dag.edge_count()
    );

    // Streaming certification: the move sequence is validated and certified
    // as it is produced — nothing is materialised, so this path handles
    // million-node documents in memory proportional to the graph.
    let order = OrderKind::DfsPostorder.build(&dag);
    let report = certify_greedy_prbp(
        &dag,
        r,
        &order,
        PolicyKind::Belady.build().as_mut(),
        "greedy:belady:dfs",
        BoundSet::auto_for(&dag),
    )
    .expect("PRBP schedules any DAG with r >= 2")
    .expect("greedy emits valid pebblings");

    println!(
        "  cost {} over {} moves; best admissible bound {} => certified gap {:.2}x",
        report.cost,
        report.moves,
        report.best_bound,
        report.gap()
    );
    for bound in &report.bounds {
        println!("    bound {:<12} {}", bound.name, bound.value);
    }
}

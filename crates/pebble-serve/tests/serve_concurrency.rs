//! Concurrency hammer for the serving layer: N client threads firing a mix
//! of cached, cold and malformed requests at one server.
//!
//! The contract under concurrency:
//!
//! * no panic ever reaches a client (a handler panic is a 500, and the
//!   worker keeps serving);
//! * every response is either a validated certificate (`"status":"ok"`) or
//!   a structured JSON error with a `"status"` field;
//! * cache hits are byte-identical to the first solve's certificate.

use pebble_dag::generators::{binary_tree, fft};
use pebble_io::Format;
use pebble_serve::http::client_request;
use pebble_serve::{ScheduleCache, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prbp-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `"report":{...}` sub-document — the certificate, which must be
/// byte-stable across cache hits (timing fields vary, the certificate must
/// not).
fn report_of(body: &str) -> &str {
    let i = body
        .find("\"report\":")
        .expect("ok responses carry a report");
    &body[i..]
}

#[test]
fn hammering_with_mixed_requests_yields_only_certificates_or_structured_errors() {
    let cache = Arc::new(ScheduleCache::open(scratch("hammer")).unwrap());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = Server::start(&config, cache).unwrap();
    let addr = server.local_addr().to_string();
    let timeout = Duration::from_secs(60);

    // Prime the cache with one shape so the mix genuinely contains hits,
    // and remember its certificate bytes.
    let cached_doc = pebble_io::write(&fft(8).dag, Format::Json);
    let (status, first) = client_request(
        &addr,
        "POST",
        "/v1/schedule?r=4&deadline_ms=5000",
        cached_doc.as_bytes(),
        timeout,
    )
    .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&first));
    let first = String::from_utf8(first).unwrap();
    let first_report = report_of(&first).to_string();

    let cold_doc = pebble_io::write(&binary_tree(4), Format::Json);
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let addr = addr.clone();
            let cached_doc = cached_doc.clone();
            let cold_doc = cold_doc.clone();
            let first_report = first_report.clone();
            std::thread::spawn(move || {
                for i in 0..6 {
                    match (t + i) % 4 {
                        // Cached shape: must be a hit with the exact same
                        // certificate bytes as the first solve.
                        0 => {
                            let (status, body) = client_request(
                                &addr,
                                "POST",
                                "/v1/schedule?r=4&deadline_ms=5000",
                                cached_doc.as_bytes(),
                                Duration::from_secs(60),
                            )
                            .expect("request");
                            let body = String::from_utf8(body).expect("utf8");
                            assert_eq!(status, 200, "{body}");
                            assert!(body.contains("\"status\":\"ok\""), "{body}");
                            assert_eq!(report_of(&body), first_report, "hit certificate drifted");
                        }
                        // Cold-ish shape (first thread to arrive solves it,
                        // the rest hit): always a valid certificate.
                        1 => {
                            let (status, body) = client_request(
                                &addr,
                                "POST",
                                "/v1/schedule?r=3&deadline_ms=5000",
                                cold_doc.as_bytes(),
                                Duration::from_secs(60),
                            )
                            .expect("request");
                            let body = String::from_utf8(body).expect("utf8");
                            assert_eq!(status, 200, "{body}");
                            assert!(body.contains("\"best_bound\""), "{body}");
                        }
                        // Malformed body: structured 400, never a panic.
                        2 => {
                            let (status, body) = client_request(
                                &addr,
                                "POST",
                                "/v1/schedule?r=4",
                                b"this is { not a dag",
                                Duration::from_secs(60),
                            )
                            .expect("request");
                            let body = String::from_utf8(body).expect("utf8");
                            assert_eq!(status, 400, "{body}");
                            assert!(body.contains("\"status\":\"error\""), "{body}");
                        }
                        // Bad parameters: structured 400.
                        _ => {
                            let (status, body) = client_request(
                                &addr,
                                "POST",
                                "/v1/schedule?r=zero",
                                cached_doc.as_bytes(),
                                Duration::from_secs(60),
                            )
                            .expect("request");
                            let body = String::from_utf8(body).expect("utf8");
                            assert_eq!(status, 400, "{body}");
                            assert!(body.contains("\"status\":\"error\""), "{body}");
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no client thread may observe a panic");
    }

    // The server survived the hammer and still answers.
    let (status, _) = client_request(&addr, "GET", "/healthz", b"", timeout).unwrap();
    assert_eq!(status, 200);
    let (status, stats) = client_request(&addr, "GET", "/v1/stats", b"", timeout).unwrap();
    assert_eq!(status, 200);
    let stats = String::from_utf8(stats).unwrap();
    assert!(stats.contains("\"hits\":"), "{stats}");

    let dir = server.cache().dir().to_path_buf();
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Pull a numeric field out of a flat JSON response.
fn field(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let i = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len();
    body[i..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn concurrent_cold_requests_for_the_same_shape_agree() {
    // Several threads race to solve the same uncached shape. Distinct
    // optimal traces may differ move-by-move (the exact phase searches in
    // parallel), but every certificate must agree on the validated cost and
    // the admissible bound — and the instance is small enough that every
    // solve proves optimality within the deadline.
    let cache = Arc::new(ScheduleCache::open(scratch("race")).unwrap());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = Server::start(&config, cache).unwrap();
    let addr = server.local_addr().to_string();
    let doc = pebble_io::write(&fft(4).dag, Format::Json);

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let doc = doc.clone();
            std::thread::spawn(move || {
                let (status, body) = client_request(
                    &addr,
                    "POST",
                    "/v1/schedule?r=4&deadline_ms=5000",
                    doc.as_bytes(),
                    Duration::from_secs(60),
                )
                .expect("request");
                let body = String::from_utf8(body).expect("utf8");
                assert_eq!(status, 200, "{body}");
                (field(&body, "cost"), field(&body, "best_bound"))
            })
        })
        .collect();
    let outcomes: Vec<(u64, u64)> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for o in &outcomes[1..] {
        assert_eq!(o, &outcomes[0], "racing solves disagreed on cost/bound");
    }

    let dir = server.cache().dir().to_path_buf();
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

//! # pebble-serve
//!
//! Certified scheduling as a service: a long-running HTTP/JSON server that
//! accepts DAGs in any `pebble-io` format, schedules them through the
//! anytime engine under a per-request deadline, and answers with a
//! [`pebble_sched::ScheduleReport`] carrying a certified optimality gap.
//!
//! The load-bearing piece is the **content-addressed schedule cache**
//! ([`cache`]): requests are keyed by the iso-invariant canonical hash of
//! their DAG ([`pebble_dag::canon`]), so any relabeling of a previously
//! solved shape is answered from the cache in microseconds — after the
//! stored schedule has been remapped into the request's numbering and
//! **re-validated through the game simulator**. Canonicalization may
//! conflate shapes in the worst case; re-validation turns that into a cache
//! miss, never a wrong answer.
//!
//! Everything is built on `std` alone: a hand-rolled HTTP/1.1 layer
//! ([`http`]), a bounded thread pool ([`pool`]), and the versioned,
//! checksummed on-disk schedule format of [`pebble_io::store`].
//!
//! ```no_run
//! use pebble_serve::{ScheduleCache, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let cache = Arc::new(ScheduleCache::open("/tmp/prbp-cache")?);
//! let server = Server::start(&ServeConfig::default(), cache)?;
//! println!("serving on {}", server.local_addr());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod error;
pub mod http;
pub(crate) mod obs;
pub mod pool;
pub mod server;

pub use cache::{warm_from_dir, CacheHit, CacheStats, ScheduleCache, WarmSummary};
pub use error::ServeError;
pub use server::{ServeConfig, Server};

//! The serving layer's hook into the `pebble-obs` registry: per-route
//! request/error counters, the request-latency and per-stage histograms,
//! cache-outcome counters and thread-pool health. Everything registers once
//! per process and is served back by `GET /metrics`.

use pebble_obs::metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;

/// Route labels, in the order of the per-route counter arrays. `other`
/// covers unknown paths (404s) and requests that failed before routing.
pub(crate) const ROUTES: [&str; 5] = ["healthz", "stats", "metrics", "schedule", "other"];

/// Stage labels of the `/v1/schedule` pipeline, in the order of
/// [`ServeMetrics::stages`].
pub(crate) const STAGES: [&str; 7] = [
    "read", "parse", "canon", "cache", "solve", "validate", "write",
];

/// Index into the `read` stage histogram.
pub(crate) const STAGE_READ: usize = 0;
/// Index into the `parse` stage histogram.
pub(crate) const STAGE_PARSE: usize = 1;
/// Index into the `canon` stage histogram.
pub(crate) const STAGE_CANON: usize = 2;
/// Index into the `cache` stage histogram.
pub(crate) const STAGE_CACHE: usize = 3;
/// Index into the `solve` stage histogram.
pub(crate) const STAGE_SOLVE: usize = 4;
/// Index into the `validate` stage histogram.
pub(crate) const STAGE_VALIDATE: usize = 5;
/// Index into the `write` stage histogram.
pub(crate) const STAGE_WRITE: usize = 6;

pub(crate) struct ServeMetrics {
    /// `serve_requests_total{route=...}`, indexed by [`ROUTES`].
    pub requests: [Counter; 5],
    /// `serve_errors_total{route=...}` (responses with status >= 400).
    pub errors: [Counter; 5],
    /// `serve_request_us`: end-to-end request latency.
    pub request_us: Histogram,
    /// `serve_request_stage_us{stage=...}`, indexed by [`STAGES`].
    pub stages: [Histogram; 7],
    /// `serve_in_flight`: requests currently being handled.
    pub in_flight: Gauge,
    /// `cache_hits_total`: validated cache hits.
    pub cache_hits: Counter,
    /// `cache_misses_total`: lookups that found nothing servable.
    pub cache_misses: Counter,
    /// `cache_revalidation_failures_total`: entries present on disk that
    /// failed the shape check or simulator re-validation.
    pub cache_revalidation_failures: Counter,
    /// `cache_cold_solve_fallbacks_total`: requests that fell back to a cold
    /// solve because a present entry failed re-validation.
    pub cache_cold_solve_fallbacks: Counter,
    /// `cache_insertions_total`: entries written.
    pub cache_insertions: Counter,
    /// `serve_pool_queue_depth`: jobs waiting in the worker pool.
    pub pool_queue_depth: Gauge,
    /// `serve_pool_rejections_total`: submits refused by a shut-down pool.
    pub pool_rejections: Counter,
}

pub(crate) fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        ServeMetrics {
            requests: ROUTES.map(|route| {
                r.counter(
                    "serve_requests_total",
                    "HTTP requests by route",
                    &[("route", route)],
                )
            }),
            errors: ROUTES.map(|route| {
                r.counter(
                    "serve_errors_total",
                    "HTTP responses with status >= 400, by route",
                    &[("route", route)],
                )
            }),
            request_us: r.histogram(
                "serve_request_us",
                "End-to-end HTTP request latency, microseconds",
                &[],
            ),
            stages: STAGES.map(|stage| {
                r.histogram(
                    "serve_request_stage_us",
                    "Per-stage request latency, microseconds",
                    &[("stage", stage)],
                )
            }),
            in_flight: r.gauge("serve_in_flight", "Requests currently being handled", &[]),
            cache_hits: r.counter(
                "cache_hits_total",
                "Schedule-cache lookups served from a validated stored entry",
                &[],
            ),
            cache_misses: r.counter(
                "cache_misses_total",
                "Schedule-cache lookups that found nothing servable",
                &[],
            ),
            cache_revalidation_failures: r.counter(
                "cache_revalidation_failures_total",
                "Stored entries that failed shape check or simulator re-validation",
                &[],
            ),
            cache_cold_solve_fallbacks: r.counter(
                "cache_cold_solve_fallbacks_total",
                "Requests solved cold because a present cache entry failed re-validation",
                &[],
            ),
            cache_insertions: r.counter(
                "cache_insertions_total",
                "Schedule-cache entries written",
                &[],
            ),
            pool_queue_depth: r.gauge(
                "serve_pool_queue_depth",
                "Jobs waiting in the serve worker pool",
                &[],
            ),
            pool_rejections: r.counter(
                "serve_pool_rejections_total",
                "Pool submits refused because the pool was shut down",
                &[],
            ),
        }
    })
}

/// Map a request path to its [`ROUTES`] index.
pub(crate) fn route_index(path: &str) -> usize {
    match path {
        "/healthz" => 0,
        "/v1/stats" => 1,
        "/metrics" => 2,
        "/v1/schedule" => 3,
        _ => 4,
    }
}

//! A deliberately small HTTP/1.1 layer over `std::net` — just enough for the
//! scheduling service (and its CLI client) without external dependencies.
//!
//! One request per connection (`Connection: close` semantics), bodies
//! bounded by a caller-supplied cap, query strings split on `&`/`=` without
//! percent-decoding (every parameter the API accepts is a plain token).

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed request: method, path, query parameters and raw body.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (e.g. `/v1/schedule`).
    pub path: String,
    /// Query parameters (`?r=16&deadline_ms=250`), last occurrence wins.
    pub query: HashMap<String, String>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The request line or headers are not parseable HTTP/1.x.
    Malformed(String),
    /// `Content-Length` exceeds the server's body cap.
    BodyTooLarge {
        /// Declared content length.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn parse_query(raw: &str) -> HashMap<String, String> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (p.to_string(), String::new()),
        })
        .collect()
}

/// Read one request from `stream`. Bodies larger than `max_body` are
/// rejected without being read.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no target".into()))?;
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(HttpError::Malformed("not an HTTP/1.x request".into()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), HashMap::new()),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Write a complete response (status line, minimal headers, body) and flush.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A minimal client: send one request to `addr`, return `(status, body)`.
/// `path_and_query` includes the leading slash and any query string.
pub fn client_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        // The server accepted and closed without answering (e.g. it is
        // still starting up). Surface this as an I/O error so the retry
        // wrapper treats it as transient, not as a protocol violation.
        return Err(HttpError::Io(std::io::Error::from(
            std::io::ErrorKind::UnexpectedEof,
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line `{status_line}`")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((status, body))
}

/// A deterministic exponential backoff schedule: the delay after attempt
/// `n` (0-based) is `min(base << n, cap)`. No jitter — retry timing stays
/// reproducible in tests and scripted runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay after the first failed attempt.
    pub base: Duration,
    /// Upper bound on any single delay (the schedule plateaus here).
    pub cap: Duration,
}

impl Backoff {
    /// A backoff doubling from `base` up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap }
    }

    /// The delay to sleep after failed attempt `attempt` (0-based).
    /// Saturates at `cap`; never overflows for any attempt number.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// [`client_request`] with retries under an exponential [`Backoff`]:
/// tolerates a server that is still binding its listener (the CI smoke test
/// starts the server and the client back-to-back). Only transient
/// [`HttpError::Io`] failures are retried; protocol errors fail immediately.
pub fn client_request_with_retries(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: &[u8],
    timeout: Duration,
    retries: usize,
    backoff: Backoff,
) -> Result<(u16, Vec<u8>), HttpError> {
    let mut last = None;
    for attempt in 0..retries.max(1) {
        match client_request(addr, method, path_and_query, body, timeout) {
            Ok(ok) => return Ok(ok),
            Err(HttpError::Io(e)) if attempt + 1 < retries.max(1) => {
                last = Some(HttpError::Io(e));
                std::thread::sleep(backoff.delay(attempt as u32));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| HttpError::Malformed("no attempts made".into())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn backoff_doubles_then_plateaus_at_the_cap() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80));
        let delays: Vec<u64> = (0..6).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(delays, [10, 20, 40, 80, 80, 80]);
        // Huge attempt numbers saturate instead of overflowing the shift.
        assert_eq!(b.delay(u32::MAX), Duration::from_millis(80));
    }

    #[test]
    fn retries_until_the_listener_finally_answers() {
        // A fake server that accepts-and-drops the first two connections
        // (the client sees an I/O error) and answers the third.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for accepted in 1..=3 {
                let (mut stream, _) = listener.accept().unwrap();
                if accepted < 3 {
                    drop(stream); // close without answering: transient failure
                    continue;
                }
                let _ = read_request(&mut stream, 1 << 20).unwrap();
                write_response(&mut stream, 200, "OK", "application/json", b"{}").unwrap();
            }
        });
        let (status, body) = client_request_with_retries(
            &addr,
            "GET",
            "/healthz",
            b"",
            Duration::from_secs(5),
            5,
            Backoff::new(Duration::from_millis(1), Duration::from_millis(4)),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{}");
        server.join().unwrap();
    }

    #[test]
    fn malformed_responses_are_not_retried() {
        // A server that answers garbage: the client must fail immediately
        // with `Malformed`, not burn through its retry budget.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream, 1 << 20).unwrap();
            use std::io::Write;
            stream.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        });
        let err = client_request_with_retries(
            &addr,
            "GET",
            "/healthz",
            b"",
            Duration::from_secs(5),
            5,
            Backoff::new(Duration::from_millis(1), Duration::from_millis(1)),
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        server.join().unwrap();
    }
}

//! The scheduling service: accept DAGs over HTTP, answer with certified
//! schedules, backed by the content-addressed cache.
//!
//! Request flow (`POST /v1/schedule`): parse (any `pebble-io` format) →
//! canonical hash ([`pebble_dag::canon`]) → cache lookup (hits are
//! simulator-re-validated before they are served) → on a miss, a
//! deadline-bounded anytime solve ([`pebble_sched::anytime`]) whose
//! certified result is inserted for the next request of the same shape.
//! Every response is either a validated certificate or a structured JSON
//! error; a deadline too small to produce any incumbent is the distinct
//! `"status":"deadline-no-incumbent"` outcome (HTTP 504), never a panic.

use crate::cache::{LookupOutcome, ScheduleCache};
use crate::error::ServeError;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::obs::{
    self, STAGE_CACHE, STAGE_CANON, STAGE_PARSE, STAGE_READ, STAGE_SOLVE, STAGE_VALIDATE,
    STAGE_WRITE,
};
use crate::pool::Pool;
use pebble_dag::canon::canonical_form;
use pebble_dag::Dag;
use pebble_io::json::escape;
use pebble_io::Format;
use pebble_obs::metrics::Registry;
use pebble_obs::trace::{emit, enabled, TraceEvent};
use pebble_sched::{
    anytime_prbp_result, certify_prbp_with, AnytimeConfig, AnytimeError, BoundSet, ScheduleReport,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of a serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7117`; port 0 picks a free port).
    pub addr: String,
    /// Request-handling worker threads.
    pub workers: usize,
    /// Pending-connection backlog before the acceptor blocks.
    pub backlog: usize,
    /// Default per-request solve budget (query `deadline_ms` overrides).
    pub deadline: Duration,
    /// Threads inside each anytime solve (0 = available parallelism).
    pub solver_workers: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".to_string(),
            workers: 4,
            backlog: 64,
            deadline: Duration::from_millis(250),
            solver_workers: 0,
            max_body: 16 << 20,
        }
    }
}

struct Ctx {
    cache: Arc<ScheduleCache>,
    deadline: Duration,
    solver_workers: usize,
    max_body: usize,
    requests: AtomicU64,
    /// When this server started (for `/v1/stats` uptime).
    started: Instant,
    /// Per-route request counts for this server instance, indexed by
    /// [`obs::ROUTES`] (the `/metrics` counters are process-global; these
    /// keep `/v1/stats` scoped to one server even in test processes that
    /// run several).
    route_counts: [AtomicU64; 5],
    /// Requests currently inside `route` on this server.
    in_flight: AtomicU64,
    /// Cold solves forced by a present-but-invalid cache entry.
    cold_fallbacks: AtomicU64,
}

/// A running scheduling service. Dropping it without calling
/// [`Server::shutdown`] leaves the acceptor thread running for the rest of
/// the process; tests and the CLI always shut down explicitly.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    cache: Arc<ScheduleCache>,
}

impl Server {
    /// Bind, spawn the acceptor and worker pool, and return immediately.
    pub fn start(config: &ServeConfig, cache: Arc<ScheduleCache>) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            cache: Arc::clone(&cache),
            deadline: config.deadline,
            solver_workers: config.solver_workers,
            max_body: config.max_body,
            requests: AtomicU64::new(0),
            started: Instant::now(),
            route_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            in_flight: AtomicU64::new(0),
            cold_fallbacks: AtomicU64::new(0),
        });
        let pool = Pool::new(config.workers, config.backlog);
        let stop_flag = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("prbp-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            let ctx = Arc::clone(&ctx);
                            pool.submit(move || handle_connection(stream, &ctx));
                        }
                        Err(_) => continue,
                    }
                }
                pool.shutdown(); // drain pending requests before exiting
            })
            .expect("spawning the acceptor");
        Ok(Server {
            addr,
            stop,
            acceptor: Some(acceptor),
            cache,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cache this server answers from.
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    let arrived = Instant::now();
    let m = obs::metrics();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    ctx.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut stream, ctx.max_body) {
        Ok(request) => request,
        Err(e) => {
            // Failed before routing: attribute to the `other` route.
            let other = obs::ROUTES.len() - 1;
            ctx.route_counts[other].fetch_add(1, Ordering::Relaxed);
            m.requests[other].inc();
            m.errors[other].inc();
            match e {
                HttpError::BodyTooLarge { declared, limit } => {
                    let body = error_body(&format!(
                        "body of {declared} bytes exceeds the {limit}-byte limit"
                    ));
                    let _ = write_response(
                        &mut stream,
                        413,
                        "Payload Too Large",
                        JSON,
                        body.as_bytes(),
                    );
                }
                HttpError::Malformed(msg) => {
                    let body = error_body(&format!("malformed request: {msg}"));
                    let _ = write_response(&mut stream, 400, "Bad Request", JSON, body.as_bytes());
                }
                HttpError::Io(_) => {} // client went away; nothing to say
            }
            return;
        }
    };
    let read_us = arrived.elapsed().as_micros() as u64;
    m.stages[STAGE_READ].observe(read_us);
    let ri = obs::route_index(&request.path);
    ctx.route_counts[ri].fetch_add(1, Ordering::Relaxed);
    m.requests[ri].inc();
    m.in_flight.add(1);
    ctx.in_flight.fetch_add(1, Ordering::Relaxed);
    // A panic inside a handler must never take down the worker: answer 500
    // and keep serving.
    let routed = catch_unwind(AssertUnwindSafe(|| route(&request, ctx, read_us)));
    m.in_flight.sub(1);
    ctx.in_flight.fetch_sub(1, Ordering::Relaxed);
    let (status, reason, body) = match routed {
        Ok(response) => response,
        Err(_) => (
            500,
            "Internal Server Error",
            error_body("internal error: request handler panicked"),
        ),
    };
    if status >= 400 {
        m.errors[ri].inc();
    }
    let ctype = if ri == 2 && status == 200 {
        PROMETHEUS // GET /metrics is the one non-JSON endpoint
    } else {
        JSON
    };
    let write_started = Instant::now();
    let _ = write_response(&mut stream, status, reason, ctype, body.as_bytes());
    m.stages[STAGE_WRITE].observe(write_started.elapsed().as_micros() as u64);
    let dur_us = arrived.elapsed().as_micros() as u64;
    m.request_us.observe(dur_us);
    if enabled() {
        emit(TraceEvent::Request {
            route: obs::ROUTES[ri].to_string(),
            status,
            dur_us,
        });
    }
}

const JSON: &str = "application/json";
const PROMETHEUS: &str = "text/plain; version=0.0.4";

fn error_body(message: &str) -> String {
    format!("{{\"status\":\"error\",\"error\":\"{}\"}}", escape(message))
}

type Response = (u16, &'static str, String);

fn route(request: &Request, ctx: &Ctx, read_us: u64) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", "{\"status\":\"ok\"}".to_string()),
        ("GET", "/v1/stats") => stats_response(ctx),
        ("GET", "/metrics") => (200, "OK", Registry::global().render_prometheus()),
        ("POST", "/v1/schedule") => schedule_response(request, ctx, read_us),
        (_, "/healthz" | "/v1/stats" | "/metrics" | "/v1/schedule") => (
            405,
            "Method Not Allowed",
            error_body(&format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        _ => (
            404,
            "Not Found",
            error_body(&format!("no such endpoint: {}", request.path)),
        ),
    }
}

fn stats_response(ctx: &Ctx) -> Response {
    let stats = ctx.cache.stats();
    let m = obs::metrics();
    let per_route: String = obs::ROUTES
        .iter()
        .enumerate()
        .map(|(i, route)| {
            format!(
                ",\"{route}\":{}",
                ctx.route_counts[i].load(Ordering::Relaxed)
            )
        })
        .collect();
    let body = format!(
        "{{\"status\":\"ok\",\"uptime_s\":{},\
         \"requests\":{{\"total\":{}{per_route}}},\
         \"in_flight\":{},\"pool_queue_depth\":{},\"cold_solve_fallbacks\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"entries\":{},\
         \"revalidation_failures\":{}}}}}",
        ctx.started.elapsed().as_secs(),
        ctx.requests.load(Ordering::Relaxed),
        ctx.in_flight.load(Ordering::Relaxed),
        m.pool_queue_depth.get(),
        ctx.cold_fallbacks.load(Ordering::Relaxed),
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.entries,
        stats.revalidation_failures
    );
    (200, "OK", body)
}

fn bad_request(message: &str) -> Response {
    (400, "Bad Request", error_body(message))
}

/// Per-stage wall-clock timings of one `/v1/schedule` request, microseconds.
/// Rendered into the response's `"stages"` object and observed into the
/// `serve_request_stage_us` histograms (the `write` stage only reaches the
/// histograms — the body is already built when the write happens).
#[derive(Default)]
struct Stages {
    read_us: u64,
    parse_us: u64,
    canon_us: u64,
    cache_us: u64,
    solve_us: u64,
    validate_us: u64,
}

impl Stages {
    fn to_json(&self) -> String {
        format!(
            "{{\"read_us\":{},\"parse_us\":{},\"canon_us\":{},\"cache_us\":{},\
             \"solve_us\":{},\"validate_us\":{}}}",
            self.read_us,
            self.parse_us,
            self.canon_us,
            self.cache_us,
            self.solve_us,
            self.validate_us
        )
    }
}

/// Time one stage: run `f`, observe the duration into the stage histogram,
/// and return it alongside the result.
fn timed<T>(stage: usize, f: impl FnOnce() -> T) -> (T, u64) {
    let started = Instant::now();
    let value = f();
    let us = started.elapsed().as_micros() as u64;
    obs::metrics().stages[stage].observe(us);
    (value, us)
}

fn schedule_response(request: &Request, ctx: &Ctx, read_us: u64) -> Response {
    let r: usize = match request.query.get("r").map(|v| v.parse()) {
        Some(Ok(r)) => r,
        Some(Err(_)) => return bad_request("query parameter `r` is not a number"),
        None => return bad_request("missing required query parameter `r`"),
    };
    let deadline = match request.query.get("deadline_ms").map(|v| v.parse::<u64>()) {
        Some(Ok(ms)) => Duration::from_millis(ms),
        Some(Err(_)) => return bad_request("query parameter `deadline_ms` is not a number"),
        None => ctx.deadline,
    };
    let mut stages = Stages {
        read_us,
        ..Stages::default()
    };
    let (parsed, parse_us) = timed(STAGE_PARSE, || {
        let text = std::str::from_utf8(&request.body)
            .map_err(|_| "request body is not valid UTF-8".to_string())?;
        let format = match request.query.get("format") {
            Some(name) => name.parse::<Format>()?,
            None => Format::sniff(text),
        };
        pebble_io::parse(text, format)
            .map(|dag| (dag, format))
            .map_err(|e| format!("parse error ({format}): {e}"))
    });
    stages.parse_us = parse_us;
    let (dag, format) = match parsed {
        Ok(parsed) => parsed,
        Err(message) => return bad_request(&message),
    };

    // Everything from here is what `solve_us` measures: hashing, cache
    // lookup (including re-validation) and — on a miss — the solve.
    let solve_started = Instant::now();
    let (form, canon_us) = timed(STAGE_CANON, || canonical_form(&dag));
    stages.canon_us = canon_us;
    let (looked_up, cache_us) = timed(STAGE_CACHE, || ctx.cache.lookup_outcome(&dag, &form, r));
    stages.cache_us = cache_us;
    match looked_up {
        LookupOutcome::Hit(hit) => {
            return ok_response(
                &dag,
                format,
                r,
                deadline,
                "hit",
                &hit.report,
                solve_started,
                &stages,
            )
        }
        LookupOutcome::MissInvalid => {
            // A stored entry failed re-validation: the request falls back to
            // a cold solve, which is worth counting separately from a plain
            // never-seen-this-shape miss.
            ctx.cold_fallbacks.fetch_add(1, Ordering::Relaxed);
            obs::metrics().cache_cold_solve_fallbacks.inc();
        }
        LookupOutcome::MissAbsent => {}
    }
    let anytime = AnytimeConfig {
        workers: ctx.solver_workers,
        fail_fast: true,
        ..AnytimeConfig::new(deadline)
    };
    let (solved, solve_us) = timed(STAGE_SOLVE, || anytime_prbp_result(&dag, r, &anytime, None));
    stages.solve_us = solve_us;
    let outcome = match solved {
        Ok(outcome) => outcome,
        Err(AnytimeError::SmallR { r }) => {
            return bad_request(&format!("r = {r} is too small for PRBP (need r >= 2)"))
        }
        Err(AnytimeError::DeadlineNoIncumbent) => {
            let body = format!(
                "{{\"status\":\"deadline-no-incumbent\",\"error\":\"deadline of {} ms expired \
                 before any incumbent schedule existed\",\"deadline_ms\":{}}}",
                deadline.as_millis(),
                deadline.as_millis()
            );
            return (504, "Gateway Timeout", body);
        }
    };
    let scheduler = if outcome.proven_optimal {
        "anytime:optimal"
    } else {
        "anytime"
    };
    let (certified, validate_us) = timed(STAGE_VALIDATE, || {
        certify_prbp_with(&dag, r, &outcome.trace, scheduler, BoundSet::auto_for(&dag)).inspect(
            |report| {
                if let Err(e) = ctx.cache.insert(&dag, &form, r, report, &outcome.trace) {
                    // A cache write failure degrades to cold-serving; the
                    // answer stands.
                    let _ = e;
                }
            },
        )
    });
    stages.validate_us = validate_us;
    let report = match certified {
        Ok(report) => report,
        // Unreachable: the anytime outcome is already simulator-validated.
        Err(e) => {
            return (
                500,
                "Internal Server Error",
                error_body(&format!("anytime schedule failed re-validation: {e}")),
            )
        }
    };
    ok_response(
        &dag,
        format,
        r,
        deadline,
        "miss",
        &report,
        solve_started,
        &stages,
    )
}

#[allow(clippy::too_many_arguments)]
fn ok_response(
    dag: &Dag,
    format: Format,
    r: usize,
    deadline: Duration,
    cache: &str,
    report: &ScheduleReport,
    solve_started: Instant,
    stages: &Stages,
) -> Response {
    let solve_us = solve_started.elapsed().as_micros();
    let report_json = serde_json::to_string(report).unwrap_or_else(|_| "null".to_string());
    let gap = serde_json::to_string(&report.gap()).unwrap_or_else(|_| "null".to_string());
    // `report` stays the last key: clients (and our own tests) compare the
    // certificate as the byte suffix from `"report":`.
    let body = format!(
        "{{\"status\":\"ok\",\"cache\":\"{cache}\",\"r\":{r},\"deadline_ms\":{},\
         \"input\":{{\"nodes\":{},\"edges\":{},\"format\":\"{}\"}},\
         \"solve_us\":{solve_us},\"stages\":{},\"gap\":{gap},\"report\":{report_json}}}",
        deadline.as_millis(),
        dag.node_count(),
        dag.edge_count(),
        format.name(),
        stages.to_json()
    );
    (200, "OK", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;
    use pebble_dag::generators::fft;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prbp-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn start_server(tag: &str) -> Server {
        let cache = Arc::new(ScheduleCache::open(scratch(tag)).unwrap());
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            deadline: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        Server::start(&config, cache).unwrap()
    }

    #[test]
    fn healthz_stats_and_a_cold_then_warm_schedule() {
        let server = start_server("basic");
        let addr = server.local_addr().to_string();
        let timeout = Duration::from_secs(30);

        let (status, body) = client_request(&addr, "GET", "/healthz", b"", timeout).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"status\":\"ok\"}");

        let doc = pebble_io::write(&fft(8).dag, Format::Json);
        let (status, cold) = client_request(
            &addr,
            "POST",
            "/v1/schedule?r=4&deadline_ms=2000",
            doc.as_bytes(),
            timeout,
        )
        .unwrap();
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold));
        let cold = String::from_utf8(cold).unwrap();
        assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
        assert!(cold.contains("\"status\":\"ok\""), "{cold}");

        let (status, warm) = client_request(
            &addr,
            "POST",
            "/v1/schedule?r=4&deadline_ms=2000",
            doc.as_bytes(),
            timeout,
        )
        .unwrap();
        assert_eq!(status, 200);
        let warm = String::from_utf8(warm).unwrap();
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        // The certified sub-document is byte-identical across cold and warm.
        assert_eq!(report_of(&cold), report_of(&warm));

        let (status, stats) = client_request(&addr, "GET", "/v1/stats", b"", timeout).unwrap();
        assert_eq!(status, 200);
        let stats = String::from_utf8(stats).unwrap();
        assert!(stats.contains("\"hits\":1"), "{stats}");
        assert!(stats.contains("\"uptime_s\":"), "{stats}");
        assert!(stats.contains("\"schedule\":2"), "{stats}");
        assert!(stats.contains("\"in_flight\":"), "{stats}");

        // The warm response carries the per-stage timing breakdown.
        assert!(warm.contains("\"stages\":{\"read_us\":"), "{warm}");

        // The Prometheus endpoint exposes the process-global registry. Other
        // tests in this process also bump these counters, so assert presence
        // and type lines, not exact values.
        let (status, prom) = client_request(&addr, "GET", "/metrics", b"", timeout).unwrap();
        assert_eq!(status, 200);
        let prom = String::from_utf8(prom).unwrap();
        assert!(
            prom.contains("# TYPE serve_requests_total counter"),
            "{prom}"
        );
        assert!(prom.contains("# TYPE serve_request_us histogram"), "{prom}");
        assert!(
            prom.contains("serve_requests_total{route=\"schedule\"}"),
            "{prom}"
        );
        assert!(prom.contains("cache_hits_total"), "{prom}");
        assert!(prom.contains("serve_request_us_count"), "{prom}");
        assert!(
            prom.contains("serve_request_stage_us_sum{stage=\"solve\"}"),
            "{prom}"
        );

        let dir = server.cache().dir().to_path_buf();
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn structured_errors_for_bad_requests() {
        let server = start_server("errors");
        let addr = server.local_addr().to_string();
        let timeout = Duration::from_secs(10);

        let (status, _) = client_request(&addr, "GET", "/nope", b"", timeout).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(&addr, "GET", "/v1/schedule", b"", timeout).unwrap();
        assert_eq!(status, 405);
        let (status, body) =
            client_request(&addr, "POST", "/v1/schedule", b"0 1\n", timeout).unwrap();
        assert_eq!(status, 400, "missing r");
        assert!(String::from_utf8(body)
            .unwrap()
            .contains("\"status\":\"error\""));
        let (status, _) =
            client_request(&addr, "POST", "/v1/schedule?r=4", b"not { a graph", timeout).unwrap();
        assert_eq!(status, 400, "unparseable body");

        let dir = server.cache().dir().to_path_buf();
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn zero_deadline_is_the_structured_504() {
        let server = start_server("deadline");
        let addr = server.local_addr().to_string();
        let doc = pebble_io::write(&fft(64).dag, Format::Json);
        let (status, body) = client_request(
            &addr,
            "POST",
            "/v1/schedule?r=8&deadline_ms=0",
            doc.as_bytes(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(status, 504);
        assert!(String::from_utf8(body)
            .unwrap()
            .contains("\"status\":\"deadline-no-incumbent\""));
        let dir = server.cache().dir().to_path_buf();
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Extract the `"report":{...}` suffix (it is the last key).
    fn report_of(body: &str) -> &str {
        let i = body.find("\"report\":").expect("report key");
        &body[i..]
    }
}

//! Error type shared by the serving layer.

use std::fmt;

/// Why a serving-layer operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (binding, accepting).
    Io(std::io::Error),
    /// The schedule cache could not be read or written.
    Cache(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Cache(m) => write!(f, "cache error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

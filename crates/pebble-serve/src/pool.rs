//! A bounded thread pool: fixed workers draining a bounded queue.
//!
//! The queue bound is the server's backpressure: when every worker is busy
//! and the backlog is full, [`Pool::submit`] blocks the acceptor, which in
//! turn lets the kernel's listen queue absorb (and eventually reject) the
//! overflow instead of the process buffering unbounded work.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool over a bounded job queue.
pub struct Pool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn `workers` threads sharing a queue bounded at `backlog` pending
    /// jobs (0 makes every submit rendezvous with an idle worker).
    pub fn new(workers: usize, backlog: usize) -> Pool {
        let workers = workers.max(1);
        let (sender, receiver) = sync_channel::<Job>(backlog);
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("prbp-serve-{i}"))
                    .spawn(move || worker_loop(receiver))
                    .expect("spawning a pool worker")
            })
            .collect();
        Pool {
            sender: Some(sender),
            workers: handles,
        }
    }

    /// Enqueue a job; blocks while the backlog is full. Returns `false` if
    /// the pool is already shut down. The queue depth is tracked in the
    /// `serve_pool_queue_depth` gauge (incremented on enqueue, decremented
    /// when a worker dequeues the job) and refused submits count into
    /// `serve_pool_rejections_total`.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let m = crate::obs::metrics();
        match &self.sender {
            Some(s) => {
                m.pool_queue_depth.add(1);
                let wrapped: Job = Box::new(move || {
                    crate::obs::metrics().pool_queue_depth.sub(1);
                    job()
                });
                if s.send(wrapped).is_ok() {
                    true
                } else {
                    m.pool_queue_depth.sub(1);
                    m.pool_rejections.inc();
                    false
                }
            }
            None => {
                m.pool_rejections.inc();
                false
            }
        }
    }

    /// Close the queue and join every worker (pending jobs finish first).
    pub fn shutdown(mut self) {
        self.sender = None; // drop the sender: workers see a closed channel
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = receiver.lock().expect("pool receiver poisoned");
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = Pool::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = Pool::new(0, 0);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        assert!(pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}

//! The content-addressed schedule cache: canonical DAG hash → certified
//! schedule on disk.
//!
//! A cache entry stores the schedule in *canonical numbering* (the
//! iso-invariant numbering of [`pebble_dag::canon::CanonicalForm`]), so any
//! relabeling of a previously solved shape hits the same entry. On lookup
//! the stored moves are remapped into the request's numbering and — this is
//! the soundness invariant — **replayed through the game simulator**: a hit
//! is only served if the remapped trace validates on the request DAG at the
//! stored cost. Canonicalization is a bounded heuristic (WL refinement plus
//! capped individualization), so in the worst case two non-isomorphic DAGs
//! could share a key; the re-validation turns that worst case into a cache
//! miss, never into a wrong answer.

use crate::error::ServeError;
use pebble_dag::canon::CanonicalForm;
use pebble_dag::{Dag, NodeId};
use pebble_game::moves::{Model, PrbpMove};
use pebble_game::prbp::PrbpConfig;
use pebble_game::trace::PrbpTrace;
use pebble_io::store::{self, StoreEntry};
use pebble_sched::{BoundValue, ScheduleReport};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory of certified schedules addressed by `(canonical key, r)`.
///
/// Thread-safe: lookups and insertions may race freely; insertion is atomic
/// (write-temp-then-rename) and a torn or stale read surfaces as a checksum
/// failure, i.e. a miss.
pub struct ScheduleCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    revalidation_failures: AtomicU64,
}

/// A validated cache hit: the certified report plus the replayable trace in
/// the *request's* node numbering.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The certified report reconstructed from the stored entry.
    pub report: ScheduleReport,
    /// The schedule, remapped to the request DAG and simulator-validated.
    pub trace: PrbpTrace,
}

/// A snapshot of cache activity since the cache was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a validated stored entry.
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Entries written (including keep-better overwrites).
    pub insertions: u64,
    /// `.sched` files currently on disk.
    pub entries: u64,
    /// Misses where an entry existed on disk but failed the shape check or
    /// simulator re-validation (a subset of `misses`).
    pub revalidation_failures: u64,
}

/// How a cache lookup resolved, distinguishing the two kinds of miss:
/// nothing stored versus a stored entry that failed re-validation (the
/// latter is the "cold-solve fallback" the serving layer counts).
#[derive(Debug)]
pub enum LookupOutcome {
    /// A stored entry re-validated on the request DAG.
    Hit(Box<CacheHit>),
    /// No entry exists for this `(canonical key, r)`.
    MissAbsent,
    /// An entry exists but failed the shape check, checksum, remap, or
    /// simulator re-validation.
    MissInvalid,
}

impl ScheduleCache {
    /// Open (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ScheduleCache, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Cache(format!("creating cache dir {}: {e}", dir.display())))?;
        Ok(ScheduleCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            revalidation_failures: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Activity counters plus the current on-disk entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.entry_count(),
            revalidation_failures: self.revalidation_failures.load(Ordering::Relaxed),
        }
    }

    /// Count the `.sched` files currently stored.
    pub fn entry_count(&self) -> u64 {
        match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "sched"))
                .count() as u64,
            Err(_) => 0,
        }
    }

    fn entry_path(&self, form: &CanonicalForm, r: usize) -> PathBuf {
        self.dir.join(format!("{}-r{r}.sched", form.key.hex()))
    }

    /// Look up a certified schedule for `dag` at cache size `r`.
    ///
    /// Returns `Some` only when a stored entry exists for the canonical key,
    /// matches the request's shape (`r`, node and edge counts, model), and
    /// its moves — remapped into the request numbering — **replay through
    /// the simulator at exactly the stored cost**. Anything less is a miss.
    pub fn lookup(&self, dag: &Dag, form: &CanonicalForm, r: usize) -> Option<CacheHit> {
        match self.lookup_outcome(dag, form, r) {
            LookupOutcome::Hit(hit) => Some(*hit),
            LookupOutcome::MissAbsent | LookupOutcome::MissInvalid => None,
        }
    }

    /// [`ScheduleCache::lookup`] with the miss kind preserved. Updates the
    /// per-cache counters, the process-global cache metrics, and (when a
    /// trace sink is installed) emits a `cache_lookup` event.
    pub fn lookup_outcome(&self, dag: &Dag, form: &CanonicalForm, r: usize) -> LookupOutcome {
        // Existence is sampled before the read so a racing insert cannot
        // turn a plain absent-miss into a spurious "revalidation failure".
        let existed = self.entry_path(form, r).exists();
        let m = crate::obs::metrics();
        let (outcome, label) = match self.lookup_inner(dag, form, r) {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                m.cache_hits.inc();
                (LookupOutcome::Hit(Box::new(hit)), "hit")
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                m.cache_misses.inc();
                if existed {
                    self.revalidation_failures.fetch_add(1, Ordering::Relaxed);
                    m.cache_revalidation_failures.inc();
                    (LookupOutcome::MissInvalid, "miss_invalid")
                } else {
                    (LookupOutcome::MissAbsent, "miss_absent")
                }
            }
        };
        if pebble_obs::trace::enabled() {
            pebble_obs::trace::emit(pebble_obs::trace::TraceEvent::CacheLookup {
                outcome: label.to_string(),
            });
        }
        outcome
    }

    fn lookup_inner(&self, dag: &Dag, form: &CanonicalForm, r: usize) -> Option<CacheHit> {
        let entry = store::read_file(&self.entry_path(form, r)).ok()?;
        if entry.key != form.key.0
            || entry.model != Model::Prbp
            || entry.r != r as u64
            || entry.nodes != dag.node_count() as u64
            || entry.edges != dag.edge_count() as u64
        {
            return None;
        }
        // Canonical index -> request NodeId.
        let inverse = form.inverse();
        let back = |v: NodeId| -> Option<NodeId> { inverse.get(v.index()).copied() };
        let mut moves = Vec::with_capacity(entry.moves.len());
        for mv in &entry.moves {
            moves.push(match *mv {
                PrbpMove::Save(v) => PrbpMove::Save(back(v)?),
                PrbpMove::Load(v) => PrbpMove::Load(back(v)?),
                PrbpMove::PartialCompute { from, to } => PrbpMove::PartialCompute {
                    from: back(from)?,
                    to: back(to)?,
                },
                PrbpMove::Delete(v) => PrbpMove::Delete(back(v)?),
                PrbpMove::Clear(v) => PrbpMove::Clear(back(v)?),
            });
        }
        let trace = PrbpTrace { moves };
        // Soundness gate: never serve a stored schedule that does not replay
        // on *this* DAG at the stored cost.
        let cost = trace.validate(dag, PrbpConfig::new(r)).ok()?;
        if cost as u64 != entry.cost {
            return None;
        }
        let report = ScheduleReport {
            model: entry.model.short_name().to_string(),
            r,
            scheduler: entry.scheduler.clone(),
            cost,
            moves: trace.moves.len(),
            bounds: entry
                .bounds
                .iter()
                .map(|(name, value)| BoundValue {
                    name: name.clone(),
                    value: *value as usize,
                })
                .collect(),
            best_bound: entry.best_bound as usize,
        };
        Some(CacheHit { report, trace })
    }

    /// Store a certified schedule, keyed by `form` and `r`. The trace is in
    /// the request numbering and gets stored canonically. Keep-better: an
    /// existing entry with equal or lower cost is left untouched (returns
    /// `Ok(false)`).
    pub fn insert(
        &self,
        dag: &Dag,
        form: &CanonicalForm,
        r: usize,
        report: &ScheduleReport,
        trace: &PrbpTrace,
    ) -> Result<bool, ServeError> {
        let path = self.entry_path(form, r);
        if let Ok(existing) = store::read_file(&path) {
            if existing.cost <= report.cost as u64 {
                return Ok(false);
            }
        }
        // Request NodeId -> canonical index, stored as a canonical NodeId.
        let fwd = |v: NodeId| NodeId::from_index(form.to_canonical(v));
        let moves = trace
            .moves
            .iter()
            .map(|mv| match *mv {
                PrbpMove::Save(v) => PrbpMove::Save(fwd(v)),
                PrbpMove::Load(v) => PrbpMove::Load(fwd(v)),
                PrbpMove::PartialCompute { from, to } => PrbpMove::PartialCompute {
                    from: fwd(from),
                    to: fwd(to),
                },
                PrbpMove::Delete(v) => PrbpMove::Delete(fwd(v)),
                PrbpMove::Clear(v) => PrbpMove::Clear(fwd(v)),
            })
            .collect();
        let entry = StoreEntry {
            key: form.key.0,
            model: Model::Prbp,
            r: r as u64,
            nodes: dag.node_count() as u64,
            edges: dag.edge_count() as u64,
            cost: report.cost as u64,
            best_bound: report.best_bound as u64,
            scheduler: report.scheduler.clone(),
            bounds: report
                .bounds
                .iter()
                .map(|b| (b.name.clone(), b.value as u64))
                .collect(),
            moves,
        };
        store::write_file(&path, &entry)
            .map_err(|e| ServeError::Cache(format!("writing {}: {e}", path.display())))?;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        crate::obs::metrics().cache_insertions.inc();
        Ok(true)
    }
}

/// What a warm pass over a directory of instances did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmSummary {
    /// Instance files considered.
    pub files: usize,
    /// Entries written into the cache.
    pub inserted: usize,
    /// Instances already cached at an equal or better cost.
    pub skipped: usize,
    /// Files that failed to parse or schedule.
    pub failed: usize,
}

/// Precompute the cache from a directory of instance files (any `pebble-io`
/// format, recognised by extension). Each instance is scheduled with the
/// structure-aware compose pipeline — the strongest offline scheduler in the
/// suite — certified, and inserted under its canonical key. Files with
/// unrecognised extensions are ignored; per-file failures are counted, not
/// fatal.
pub fn warm_from_dir(
    cache: &ScheduleCache,
    dir: &Path,
    r: usize,
    compose: &pebble_sched::ComposeConfig,
) -> Result<WarmSummary, ServeError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| ServeError::Cache(format!("reading instance dir {}: {e}", dir.display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file() && pebble_io::Format::from_path(&p.to_string_lossy()).is_some())
        .collect();
    paths.sort();

    let mut summary = WarmSummary::default();
    for path in paths {
        summary.files += 1;
        let Ok(text) = std::fs::read_to_string(&path) else {
            summary.failed += 1;
            continue;
        };
        let format = pebble_io::Format::from_path(&path.to_string_lossy())
            .unwrap_or_else(|| pebble_io::Format::sniff(&text));
        let Ok(dag) = pebble_io::parse(&text, format) else {
            summary.failed += 1;
            continue;
        };
        let Some(outcome) = pebble_sched::compose_prbp(&dag, r, compose) else {
            summary.failed += 1;
            continue;
        };
        let extra: Vec<BoundValue> = outcome
            .composed_bound
            .map(|value| BoundValue {
                name: "compose".to_string(),
                value,
            })
            .into_iter()
            .collect();
        let Ok(report) = pebble_sched::certify_prbp_with_bounds(
            &dag,
            r,
            &outcome.trace,
            "compose",
            pebble_sched::BoundSet::auto_for(&dag),
            extra,
        ) else {
            summary.failed += 1;
            continue;
        };
        let form = pebble_dag::canon::canonical_form(&dag);
        match cache.insert(&dag, &form, r, &report, &outcome.trace)? {
            true => summary.inserted += 1,
            false => summary.skipped += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::canon::canonical_form;
    use pebble_dag::generators::fft;
    use pebble_dag::DagBuilder;
    use pebble_sched::{certify_prbp_with, BoundSet, FurthestInFuture};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prbp-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schedule(dag: &Dag, r: usize) -> (ScheduleReport, PrbpTrace) {
        let order = pebble_sched::order::dfs_postorder(dag);
        let trace = pebble_sched::greedy_prbp(dag, r, &order, &mut FurthestInFuture)
            .expect("greedy schedules every valid dag");
        let report = certify_prbp_with(dag, r, &trace, "greedy:belady:dfs", BoundSet::Full)
            .expect("greedy trace validates");
        (report, trace)
    }

    #[test]
    fn insert_then_lookup_roundtrips_and_validates() {
        let f = fft(8);
        let form = canonical_form(&f.dag);
        let (report, trace) = schedule(&f.dag, 4);
        let cache = ScheduleCache::open(scratch("roundtrip")).unwrap();

        assert!(cache.lookup(&f.dag, &form, 4).is_none());
        assert!(cache.insert(&f.dag, &form, 4, &report, &trace).unwrap());
        let hit = cache.lookup(&f.dag, &form, 4).expect("hit after insert");
        assert_eq!(hit.report.cost, report.cost);
        assert_eq!(hit.report.best_bound, report.best_bound);
        assert_eq!(
            hit.trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(),
            report.cost
        );
        // Different r misses.
        assert!(cache.lookup(&f.dag, &form, 8).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.insertions, stats.entries), (1, 1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn relabeled_isomorph_hits_the_same_entry() {
        // The same shape built with nodes inserted in a different order must
        // hit the entry stored for the original numbering, and the remapped
        // trace must validate on the *relabeled* DAG.
        let f = fft(8);
        let n = f.dag.node_count();
        let perm: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
        let mut b = DagBuilder::new();
        let ids = b.add_nodes(n);
        for u in f.dag.nodes() {
            for v in f.dag.successors(u) {
                b.add_edge(ids[perm[u.index()]], ids[perm[v.index()]]);
            }
        }
        let relabeled = b.build().expect("valid dag");

        let cache = ScheduleCache::open(scratch("iso")).unwrap();
        let form = canonical_form(&f.dag);
        let (report, trace) = schedule(&f.dag, 4);
        cache.insert(&f.dag, &form, 4, &report, &trace).unwrap();

        let relabeled_form = canonical_form(&relabeled);
        assert_eq!(form.key, relabeled_form.key, "iso-invariant key");
        let hit = cache
            .lookup(&relabeled, &relabeled_form, 4)
            .expect("relabeled isomorph hits");
        assert_eq!(hit.report.cost, report.cost);
        assert_eq!(
            hit.trace.validate(&relabeled, PrbpConfig::new(4)).unwrap(),
            report.cost
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn keep_better_refuses_worse_overwrites() {
        let f = fft(8);
        let form = canonical_form(&f.dag);
        let (report, trace) = schedule(&f.dag, 4);
        let cache = ScheduleCache::open(scratch("keepbetter")).unwrap();
        assert!(cache.insert(&f.dag, &form, 4, &report, &trace).unwrap());
        // Same cost again: not overwritten.
        assert!(!cache.insert(&f.dag, &form, 4, &report, &trace).unwrap());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupted_entry_is_a_miss_not_an_error() {
        let f = fft(8);
        let form = canonical_form(&f.dag);
        let (report, trace) = schedule(&f.dag, 4);
        let cache = ScheduleCache::open(scratch("corrupt")).unwrap();
        cache.insert(&f.dag, &form, 4, &report, &trace).unwrap();
        let path = cache.entry_path(&form, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match cache.lookup_outcome(&f.dag, &form, 4) {
            LookupOutcome::MissInvalid => {}
            other => panic!("expected MissInvalid, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.revalidation_failures, 1, "{stats:?}");
        assert_eq!(stats.misses, 1, "{stats:?}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

//! Edge-based partitions: S-edge partitions (Definition 6.3).

use crate::s_partition::PartitionError;
use crate::terminal::edge_terminal_set;
use pebble_dag::dominators::{min_dominator_size, start_set};
use pebble_dag::{BitSet, Dag, EdgeId};
use serde::{Deserialize, Serialize};

/// An ordered partition `E₁, …, E_k` of the edges of a DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SEdgePartition {
    /// Classes in order; `classes[i]` is `E_{i+1}`.
    pub classes: Vec<BitSet>,
}

impl SEdgePartition {
    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Index of the class containing edge `e`, if any.
    pub fn class_of(&self, e: EdgeId) -> Option<usize> {
        self.classes.iter().position(|c| c.contains(e.index()))
    }

    /// Validate this as an S-edge partition (Definition 6.3) with parameter
    /// `s`:
    ///
    /// 1. every edge is covered exactly once;
    /// 2. *well-ordered*: for consecutive edges `(u,v), (v,w)`, the edge
    ///    `(v,w)` never lies in an earlier class than `(u,v)`;
    /// 3. each class has an edge-dominator of size at most `s`;
    /// 4. each class's edge-terminal set has size at most `s`.
    pub fn validate(&self, dag: &Dag, s: usize) -> Result<(), PartitionError> {
        let m = dag.edge_count();
        let mut seen = vec![false; m];
        for class in &self.classes {
            for e in class.iter() {
                if seen[e] {
                    return Err(PartitionError::NotAPartition { node: e });
                }
                seen[e] = true;
            }
        }
        if let Some(e) = seen.iter().position(|&s| !s) {
            return Err(PartitionError::NotAPartition { node: e });
        }
        let mut class_of = vec![usize::MAX; m];
        for (i, class) in self.classes.iter().enumerate() {
            for e in class.iter() {
                class_of[e] = i;
            }
        }
        // Well-ordering: for every node v, every incoming edge must be in a
        // class no later than every outgoing edge.
        for v in dag.nodes() {
            let max_in = dag
                .in_edges(v)
                .iter()
                .map(|&(_, e)| class_of[e.index()])
                .max();
            let min_out = dag
                .out_edges(v)
                .iter()
                .map(|&(_, e)| class_of[e.index()])
                .min();
            if let (Some(max_in), Some(min_out)) = (max_in, min_out) {
                if max_in > min_out {
                    return Err(PartitionError::CyclicDependency {
                        from_class: max_in,
                        to_class: min_out,
                    });
                }
            }
        }
        // Edge-dominator and edge-terminal conditions.
        for (i, class) in self.classes.iter().enumerate() {
            let starts = start_set(dag, class);
            let minimum = min_dominator_size(dag, &starts);
            if minimum > s {
                return Err(PartitionError::DominatorTooLarge { class: i, minimum });
            }
            let terminal = edge_terminal_set(dag, class).count();
            if terminal > s {
                return Err(PartitionError::TerminalTooLarge {
                    class: i,
                    size: terminal,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::{DagBuilder, NodeId};

    /// a -> b -> c chain (2 edges).
    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn single_class_is_valid() {
        let g = chain3();
        let p = SEdgePartition {
            classes: vec![BitSet::full(2)],
        };
        assert!(p.validate(&g, 1).is_ok());
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.class_of(pebble_dag::EdgeId(1)), Some(0));
    }

    #[test]
    fn respecting_edge_order_is_required() {
        let g = chain3();
        // (b,c) before (a,b): violates well-ordering.
        let p = SEdgePartition {
            classes: vec![BitSet::from_indices(2, [1]), BitSet::from_indices(2, [0])],
        };
        assert!(matches!(
            p.validate(&g, 1),
            Err(PartitionError::CyclicDependency { .. })
        ));
        // The other way round is fine.
        let p = SEdgePartition {
            classes: vec![BitSet::from_indices(2, [0]), BitSet::from_indices(2, [1])],
        };
        assert!(p.validate(&g, 1).is_ok());
    }

    #[test]
    fn missing_or_duplicated_edges_are_rejected() {
        let g = chain3();
        let p = SEdgePartition {
            classes: vec![BitSet::from_indices(2, [0])],
        };
        assert!(matches!(
            p.validate(&g, 1),
            Err(PartitionError::NotAPartition { .. })
        ));
        let p = SEdgePartition {
            classes: vec![
                BitSet::from_indices(2, [0, 1]),
                BitSet::from_indices(2, [1]),
            ],
        };
        assert!(matches!(
            p.validate(&g, 1),
            Err(PartitionError::NotAPartition { .. })
        ));
    }

    #[test]
    fn edge_dominator_condition_is_checked() {
        // Star with 3 sources into a sink: the single class of all edges needs
        // an edge-dominator of size 3 (the sources, or equivalently the sink...
        // note the sink does not dominate paths *ending* at it through Start(E0)).
        let mut b = DagBuilder::new();
        let s = b.add_nodes(3);
        let t = b.add_node();
        for &x in &s {
            b.add_edge(x, t);
        }
        let g = b.build().unwrap();
        let p = SEdgePartition {
            classes: vec![BitSet::full(3)],
        };
        assert!(matches!(
            p.validate(&g, 2),
            Err(PartitionError::DominatorTooLarge { .. })
        ));
        assert!(p.validate(&g, 3).is_ok());
    }

    #[test]
    fn edge_terminal_condition_is_checked() {
        // Fan-out: one source into 3 sinks; the class of all edges has
        // edge-terminal set {the three sinks}.
        let mut b = DagBuilder::new();
        let s = b.add_node();
        let t = b.add_nodes(3);
        for &x in &t {
            b.add_edge(s, x);
        }
        let g = b.build().unwrap();
        let p = SEdgePartition {
            classes: vec![BitSet::full(3)],
        };
        assert!(matches!(
            p.validate(&g, 2),
            Err(PartitionError::TerminalTooLarge { size: 3, .. })
        ));
        assert!(p.validate(&g, 3).is_ok());
    }

    #[test]
    fn per_node_split_of_diamond_is_valid() {
        // Diamond split into two classes: edges out of the source, then edges
        // into the sink.
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        let g = b.build().unwrap();
        let first: Vec<usize> = [g.find_edge(a, x), g.find_edge(a, y)]
            .iter()
            .map(|e| e.unwrap().index())
            .collect();
        let second: Vec<usize> = [g.find_edge(x, d), g.find_edge(y, d)]
            .iter()
            .map(|e| e.unwrap().index())
            .collect();
        let p = SEdgePartition {
            classes: vec![
                BitSet::from_indices(4, first),
                BitSet::from_indices(4, second),
            ],
        };
        assert!(p.validate(&g, 2).is_ok());
        assert!(p.validate(&g, 1).is_err());
        let _ = NodeId(0);
    }
}

//! Terminal sets (Definition 5.2) and edge-terminal sets (Definition 6.2).

use pebble_dag::{BitSet, Dag, EdgeId};

/// The *terminal set* of a node set `V₀` (Definition 5.2): the nodes of `V₀`
/// none of whose out-neighbours lie in `V₀`.
pub fn terminal_set(dag: &Dag, nodes: &BitSet) -> BitSet {
    debug_assert_eq!(nodes.capacity(), dag.node_count());
    let mut out = dag.node_set();
    for v in nodes.iter() {
        let v_id = pebble_dag::NodeId::from_index(v);
        if dag.successors(v_id).all(|w| !nodes.contains(w.index())) {
            out.insert(v);
        }
    }
    out
}

/// The *edge-terminal set* of an edge set `E₀` (Definition 6.2): the nodes
/// with at least one incoming edge in `E₀` but no outgoing edge in `E₀`.
pub fn edge_terminal_set(dag: &Dag, edges: &BitSet) -> BitSet {
    debug_assert_eq!(edges.capacity(), dag.edge_count());
    let mut out = dag.node_set();
    for v in dag.nodes() {
        let has_in = dag
            .in_edges(v)
            .iter()
            .any(|&(_, e)| edges.contains(e.index()));
        if !has_in {
            continue;
        }
        let has_out = dag
            .out_edges(v)
            .iter()
            .any(|&(_, e)| edges.contains(e.index()));
        if !has_out {
            out.insert(v.index());
        }
    }
    out
}

/// Convenience: the edge set `{e}` as a [`BitSet`] sized for `dag`.
pub fn single_edge(dag: &Dag, e: EdgeId) -> BitSet {
    BitSet::from_indices(dag.edge_count(), [e.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::{DagBuilder, NodeId};

    /// a -> b -> d, a -> c -> d.
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        b.build().unwrap()
    }

    #[test]
    fn terminal_of_full_set_is_the_sink() {
        let g = diamond();
        let all = BitSet::full(4);
        assert_eq!(terminal_set(&g, &all).to_vec(), vec![3]);
    }

    #[test]
    fn terminal_of_middle_nodes_is_both() {
        let g = diamond();
        let mid = BitSet::from_indices(4, [1, 2]);
        assert_eq!(terminal_set(&g, &mid).to_vec(), vec![1, 2]);
    }

    #[test]
    fn terminal_excludes_nodes_with_successor_inside() {
        let g = diamond();
        let set = BitSet::from_indices(4, [0, 1]);
        // a's successor b is inside, so only b is terminal.
        assert_eq!(terminal_set(&g, &set).to_vec(), vec![1]);
    }

    #[test]
    fn edge_terminal_basic() {
        let g = diamond();
        let e_ab = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_bd = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        // E0 = {(a,b)}: b has an incoming edge in E0 and no outgoing edge in E0.
        let set = single_edge(&g, e_ab);
        assert_eq!(edge_terminal_set(&g, &set).to_vec(), vec![1]);
        // E0 = {(a,b), (b,d)}: only d is edge-terminal.
        let mut set2 = set.clone();
        set2.insert(e_bd.index());
        assert_eq!(edge_terminal_set(&g, &set2).to_vec(), vec![3]);
    }

    #[test]
    fn edge_terminal_can_contain_both_endpoints_of_a_path() {
        // The paper's remark after Definition 6.2: with (v1,v2) ∈ E0,
        // (v2,v3) ∉ E0 and (v4,v3) ∈ E0, both v2 and v3 are edge-terminal.
        let mut b = DagBuilder::new();
        let v1 = b.add_node();
        let v2 = b.add_node();
        let v3 = b.add_node();
        let v4 = b.add_node();
        b.add_edge(v1, v2);
        b.add_edge(v2, v3);
        b.add_edge(v4, v3);
        let g = b.build().unwrap();
        let e12 = g.find_edge(v1, v2).unwrap();
        let e43 = g.find_edge(v4, v3).unwrap();
        let set = BitSet::from_indices(g.edge_count(), [e12.index(), e43.index()]);
        assert_eq!(edge_terminal_set(&g, &set).to_vec(), vec![1, 2]);
    }

    #[test]
    fn empty_sets_have_empty_terminals() {
        let g = diamond();
        assert!(terminal_set(&g, &g.node_set()).is_empty());
        assert!(edge_terminal_set(&g, &g.edge_set()).is_empty());
    }
}

//! A* heuristics derived from the paper's Section 6 partition lower bounds.
//!
//! The exact solvers in `pebble-game` accept any admissible
//! [`LowerBound`] implementation. This module supplies the two
//! partition-flavoured bounds, turning the verification-only machinery of
//! this crate into a search accelerator:
//!
//! * [`SDominatorHeuristic`] — the dominator phase bound. Split any suffix
//!   pebbling into phases of `r` I/O operations. The values that are red at a
//!   phase start plus the values loaded during the phase form a set of size
//!   at most `2r` that *dominates* (Definitions 5.1/6.1) everything first
//!   computed — RBP, Hong–Kung-style — or every edge first marked — PRBP,
//!   Lemma 6.4-style — in that phase. The union of those per-phase sets
//!   dominates all remaining work, so `p` phases give a dominator of size at
//!   most `2rp`: if the minimum dominator of the remaining work has size `d`
//!   (a max-flow computation, Menger), then `p ≥ ⌈d/2r⌉` and the remaining
//!   cost is at least `r·(⌈d/2r⌉ − 1)`.
//! * [`SEdgeHeuristic`] — the same dominator argument plus the
//!   *edge-terminal* condition of S-edge partitions (Definitions 6.2/6.3):
//!   each phase's marked-edge class has an edge-terminal set of size at most
//!   `2r`, and every node that is edge-terminal in the full remaining edge
//!   set is edge-terminal in the class containing its last remaining in-edge.
//!   With `t` terminal nodes remaining, `p ≥ ⌈t/2r⌉` as well.
//!
//! Both heuristics take the maximum with the cheap
//! [`LoadCountHeuristic`] (a maximum of admissible bounds is admissible) and
//! fall back to it alone under the re-computation variants (`clear`), where
//! the one-shot phase arguments do not apply. The flow computations depend
//! only on the *remaining-work* plane of a state (the computed set for RBP,
//! the marked set for PRBP), which the solvers expose as stable packed words
//! — so each distinct remaining-work set pays for one max-flow, cached, no
//! matter how many pebble placements share it.

use pebble_dag::dominators::{min_dominator_size, start_set};
use pebble_dag::{BitSet, Dag};
use pebble_game::exact::{LoadCountHeuristic, LowerBound, PrbpStateView, RbpStateView};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use std::cell::RefCell;
use std::collections::HashMap;

use crate::terminal::edge_terminal_set;

/// Remaining-work metrics cached per computed/marked plane: the minimum
/// dominator size `d` and the (edge-)terminal count `t`.
#[derive(Clone, Copy)]
struct Residual {
    dominator: usize,
    terminal: usize,
}

type ResidualCache = RefCell<HashMap<Box<[u64]>, Residual>>;

/// Cheap structural fingerprint of a DAG (FNV over the edge list). The
/// residual caches are keyed by packed remaining-work words, which are only
/// meaningful for the DAG that produced them — two different DAGs with equal
/// node/edge counts would collide and could make a reused heuristic
/// instance inadmissible. Each bound call checks this fingerprint and
/// resets the caches when the DAG changes, so sharing one heuristic
/// instance across DAGs is safe (just cache-cold at every switch).
fn dag_fingerprint(dag: &Dag) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(dag.node_count() as u64);
    mix(dag.edge_count() as u64);
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        mix(((u.index() as u64) << 32) | v.index() as u64);
    }
    // Never collide with the "unset" sentinel.
    h | 1
}

/// `r·(⌈need/2r⌉ − 1)`: the cost of the phase bound once at least
/// `⌈need/2r⌉` phases of `r` I/Os each are forced.
fn phase_cost(r: usize, need: usize) -> usize {
    let phases = need.div_ceil(2 * r).max(1);
    r * (phases - 1)
}

/// Residual metrics of an RBP state: dominator size and terminal count of
/// the set of still-uncomputed non-source nodes.
fn rbp_residual(dag: &Dag, state: &RbpStateView<'_>) -> Residual {
    let n = dag.node_count();
    let mut remaining = BitSet::new(n);
    for v in dag.nodes() {
        if !dag.is_source(v) && !state.is_computed(v) {
            remaining.insert(v.index());
        }
    }
    if remaining.is_empty() {
        return Residual {
            dominator: 0,
            terminal: 0,
        };
    }
    Residual {
        dominator: min_dominator_size(dag, &remaining),
        // The node-terminal argument degenerates under re-computation, and
        // for one-shot RBP the terminal set of the uncomputed nodes reduces
        // to the uncomputed sinks, which the load-count bound already
        // captures; only the dominator side carries information here.
        terminal: 0,
    }
}

/// Residual metrics of a PRBP state: edge-dominator size and (when
/// `with_terminal`) edge-terminal count of the set of still-unmarked edges.
fn prbp_residual(dag: &Dag, state: &PrbpStateView<'_>, with_terminal: bool) -> Residual {
    let m = dag.edge_count();
    let mut unmarked = BitSet::new(m);
    for e in dag.edges() {
        if !state.is_marked(e) {
            unmarked.insert(e.index());
        }
    }
    if unmarked.is_empty() {
        return Residual {
            dominator: 0,
            terminal: 0,
        };
    }
    Residual {
        dominator: min_dominator_size(dag, &start_set(dag, &unmarked)),
        terminal: if with_terminal {
            edge_terminal_set(dag, &unmarked).count()
        } else {
            0
        },
    }
}

fn cached_residual<F: FnOnce() -> Residual>(
    cache: &ResidualCache,
    key: &[u64],
    compute: F,
) -> Residual {
    if let Some(&r) = cache.borrow().get(key) {
        return r;
    }
    let r = compute();
    cache.borrow_mut().insert(Box::from(key), r);
    r
}

/// The shared cache state of both partition heuristics: per-model residual
/// caches guarded by the fingerprint of the DAG they were computed for.
#[derive(Default)]
struct GuardedCaches {
    dag: std::cell::Cell<u64>,
    rbp: ResidualCache,
    prbp: ResidualCache,
}

impl GuardedCaches {
    /// Reset the caches if `dag` is not the DAG they were built for.
    fn ensure_dag(&self, dag: &Dag) {
        let fp = dag_fingerprint(dag);
        if self.dag.get() != fp {
            self.dag.set(fp);
            self.rbp.borrow_mut().clear();
            self.prbp.borrow_mut().clear();
        }
    }

    /// The RBP dominator phase bound of `state` (cached per computed plane).
    fn rbp_phase_bound(&self, dag: &Dag, r: usize, state: &RbpStateView<'_>) -> usize {
        self.ensure_dag(dag);
        let res = cached_residual(&self.rbp, state.computed_words(), || {
            rbp_residual(dag, state)
        });
        phase_cost(r, res.dominator)
    }

    /// The PRBP phase bound of `state` (cached per marked plane): the
    /// edge-dominator term, plus the edge-terminal term when `with_terminal`.
    fn prbp_phase_bound(
        &self,
        dag: &Dag,
        r: usize,
        state: &PrbpStateView<'_>,
        with_terminal: bool,
    ) -> usize {
        self.ensure_dag(dag);
        let res = cached_residual(&self.prbp, state.marked_words(), || {
            prbp_residual(dag, state, with_terminal)
        });
        phase_cost(r, res.dominator.max(res.terminal))
    }
}

/// The S-edge-partition heuristic (Definition 6.3 machinery): dominator
/// *and* edge-terminal phase bounds, combined with the load count.
///
/// This is the strongest heuristic shipped here and the one the benchmark
/// baselines track against [`ZeroHeuristic`](pebble_game::exact::ZeroHeuristic).
#[derive(Default)]
pub struct SEdgeHeuristic {
    caches: GuardedCaches,
}

impl SEdgeHeuristic {
    /// A fresh heuristic with empty caches.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LowerBound for SEdgeHeuristic {
    fn name(&self) -> &'static str {
        "s-edge"
    }

    fn rbp_bound(&self, dag: &Dag, config: RbpConfig, state: &RbpStateView<'_>) -> usize {
        let base = LoadCountHeuristic.rbp_bound(dag, config, state);
        base.max(self.caches.rbp_phase_bound(dag, config.r, state))
    }

    fn prbp_bound(&self, dag: &Dag, config: PrbpConfig, state: &PrbpStateView<'_>) -> usize {
        let base = LoadCountHeuristic.prbp_bound(dag, config, state);
        if config.allow_clear {
            // `clear` un-marks edges; the one-shot phase argument no longer
            // applies, so fall back to the (also clear-gated) load count.
            return base;
        }
        base.max(self.caches.prbp_phase_bound(dag, config.r, state, true))
    }
}

/// The S-dominator-partition heuristic (Definition 6.6 / Theorem 6.7
/// machinery): the pure dominator phase bound, combined with the load count.
/// Weaker than [`SEdgeHeuristic`] on PRBP (no edge-terminal condition) but
/// cheaper: no edge-terminal scan per remaining-work set.
#[derive(Default)]
pub struct SDominatorHeuristic {
    caches: GuardedCaches,
}

impl SDominatorHeuristic {
    /// A fresh heuristic with empty caches.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LowerBound for SDominatorHeuristic {
    fn name(&self) -> &'static str {
        "s-dominator"
    }

    fn rbp_bound(&self, dag: &Dag, config: RbpConfig, state: &RbpStateView<'_>) -> usize {
        let base = LoadCountHeuristic.rbp_bound(dag, config, state);
        base.max(self.caches.rbp_phase_bound(dag, config.r, state))
    }

    fn prbp_bound(&self, dag: &Dag, config: PrbpConfig, state: &PrbpStateView<'_>) -> usize {
        let base = LoadCountHeuristic.prbp_bound(dag, config, state);
        if config.allow_clear {
            return base;
        }
        base.max(self.caches.prbp_phase_bound(dag, config.r, state, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{fig1_full, kary_tree, matvec, zipper};
    use pebble_game::exact::{self, SearchConfig, ZeroHeuristic};

    fn assert_admissible_prbp(dag: &Dag, r: usize) {
        let opt = exact::optimal_prbp_cost(dag, PrbpConfig::new(r), SearchConfig::default())
            .expect("solvable");
        for h in [
            &SEdgeHeuristic::new() as &dyn LowerBound,
            &SDominatorHeuristic::new(),
        ] {
            let bound = exact::prbp_initial_bound(dag, PrbpConfig::new(r), h);
            assert!(bound <= opt, "{}: {bound} > OPT {opt}", h.name());
        }
    }

    #[test]
    fn initial_bounds_are_admissible_on_fig1() {
        let f = fig1_full();
        assert_admissible_prbp(&f.dag, 4);
        let opt =
            exact::optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap();
        let bound = exact::rbp_initial_bound(&f.dag, RbpConfig::new(4), &SEdgeHeuristic::new());
        assert!(bound <= opt);
    }

    #[test]
    fn initial_bounds_are_admissible_on_small_families() {
        assert_admissible_prbp(&zipper(2, 3).dag, 4);
        assert_admissible_prbp(&matvec(2).dag, 5);
        assert_admissible_prbp(&kary_tree(2, 2).dag, 3);
    }

    #[test]
    fn heuristics_preserve_the_exact_optimum() {
        let f = fig1_full();
        let zero = exact::optimal_prbp_cost_with(
            &f.dag,
            PrbpConfig::new(4),
            SearchConfig::default(),
            &ZeroHeuristic,
        )
        .unwrap();
        let sedge = exact::optimal_prbp_cost_with(
            &f.dag,
            PrbpConfig::new(4),
            SearchConfig::default(),
            &SEdgeHeuristic::new(),
        )
        .unwrap();
        assert_eq!(zero.cost, sedge.cost);
        assert!(
            sedge.stats.expanded <= zero.stats.expanded,
            "s-edge expanded {} > zero {}",
            sedge.stats.expanded,
            zero.stats.expanded
        );
    }

    #[test]
    fn phase_cost_rounds_up_phases() {
        // need = 0 or need <= 2r: a single phase, no forced I/O.
        assert_eq!(phase_cost(4, 0), 0);
        assert_eq!(phase_cost(4, 8), 0);
        // 2r < need <= 4r: two phases, r forced I/Os.
        assert_eq!(phase_cost(4, 9), 4);
        assert_eq!(phase_cost(4, 16), 4);
        assert_eq!(phase_cost(4, 17), 8);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SEdgeHeuristic::new().name(), "s-edge");
        assert_eq!(SDominatorHeuristic::new().name(), "s-dominator");
    }

    #[test]
    fn reusing_one_instance_across_dags_stays_correct() {
        // The residual caches are keyed by packed remaining-work words,
        // which two different DAGs can collide on; the fingerprint guard
        // must reset them so a shared instance never leaks stale (possibly
        // inadmissible) residuals between DAGs.
        let a = zipper(2, 3).dag;
        let b = matvec(2).dag;
        let shared = SEdgeHeuristic::new();
        for dag in [&a, &b, &a, &b] {
            let fresh = exact::optimal_prbp_cost_with(
                dag,
                PrbpConfig::new(4),
                SearchConfig::default(),
                &SEdgeHeuristic::new(),
            )
            .unwrap();
            let reused = exact::optimal_prbp_cost_with(
                dag,
                PrbpConfig::new(4),
                SearchConfig::default(),
                &shared,
            )
            .unwrap();
            assert_eq!(reused.cost, fresh.cost);
            assert_eq!(reused.stats.expanded, fresh.stats.expanded);
        }
    }
}

//! Converting validated pebbling traces into partitions.
//!
//! * [`hong_kung_partition`]: an RBP pebbling of cost `C` with cache `r`
//!   yields a `2r`-partition into `k = ⌈C/r⌉` classes (Hong & Kung).
//! * [`edge_partition_from_prbp`]: a PRBP pebbling yields a `2r`-edge
//!   partition (Lemma 6.4), giving `OPT_PRBP ≥ r·(MIN_edge(2r) − 1)`
//!   (Theorem 6.5).
//! * [`dominator_partition_from_prbp`]: a PRBP pebbling yields a
//!   `2r`-dominator partition (Lemma 6.8), giving
//!   `OPT_PRBP ≥ r·(MIN_dom(2r) − 1)` (Theorem 6.7).
//!
//! All conversions assign items to the subsequence of the pebbling obtained by
//! splitting after every `r`-th I/O operation.

use crate::s_edge_partition::SEdgePartition;
use crate::s_partition::{SDominatorPartition, SPartition};
use pebble_dag::{BitSet, Dag};
use pebble_game::moves::{PrbpMove, RbpMove};
use pebble_game::trace::{PrbpTrace, RbpTrace};

/// The `OPT ≥ r·(k − 1)` bound shared by Hong–Kung, Theorem 6.5 and
/// Theorem 6.7, instantiated with a class count `k`.
pub fn subsequence_lower_bound(r: usize, k: usize) -> usize {
    r * k.saturating_sub(1)
}

/// Build the Hong–Kung `2r`-partition from an RBP trace: every node is
/// assigned to the subsequence in which it first receives a red pebble.
/// The trace must be valid for the DAG (validate it first); the resulting
/// partition satisfies Definition 5.3 with `S = 2r`.
pub fn hong_kung_partition(dag: &Dag, trace: &RbpTrace, r: usize) -> SPartition {
    let n = dag.node_count();
    let mut first_red: Vec<Option<usize>> = vec![None; n];
    let mut ios = 0usize;
    for mv in &trace.moves {
        let subseq = ios / r;
        match *mv {
            RbpMove::Load(v) | RbpMove::Compute(v) if first_red[v.index()].is_none() => {
                first_red[v.index()] = Some(subseq);
            }
            RbpMove::ComputeSlide { node, .. } if first_red[node.index()].is_none() => {
                first_red[node.index()] = Some(subseq);
            }
            _ => {}
        }
        ios += mv.io_cost();
    }
    let k = ios.div_ceil(r).max(1);
    let mut classes = vec![BitSet::new(n); k];
    for v in dag.nodes() {
        let c = first_red[v.index()].expect("every node receives a red pebble in a valid pebbling");
        classes[c].insert(v.index());
    }
    SPartition { classes }
}

/// Build the Lemma 6.4 `2r`-edge partition from a PRBP trace: every edge is
/// assigned to the subsequence in which it is marked. The trace must be valid
/// for the DAG.
pub fn edge_partition_from_prbp(dag: &Dag, trace: &PrbpTrace, r: usize) -> SEdgePartition {
    let m = dag.edge_count();
    let mut class_of_edge: Vec<Option<usize>> = vec![None; m];
    let mut ios = 0usize;
    for mv in &trace.moves {
        let subseq = ios / r;
        if let PrbpMove::PartialCompute { from, to } = *mv {
            let e = dag
                .find_edge(from, to)
                .expect("partial compute on an existing edge");
            // One-shot: the first (and only) marking decides the class.
            if class_of_edge[e.index()].is_none() {
                class_of_edge[e.index()] = Some(subseq);
            }
        }
        ios += mv.io_cost();
    }
    let k = ios.div_ceil(r).max(1);
    let mut classes = vec![BitSet::new(m); k];
    for e in dag.edges() {
        let c = class_of_edge[e.index()].expect("every edge is marked in a valid pebbling");
        classes[c].insert(e.index());
    }
    SEdgePartition { classes }
}

/// Build the Lemma 6.8 `2r`-dominator partition from a PRBP trace: every
/// non-source node is assigned to the subsequence of the *last* partial
/// compute marking one of its in-edges; every source is assigned to the
/// subsequence of its first load. The trace must be valid for the DAG.
pub fn dominator_partition_from_prbp(
    dag: &Dag,
    trace: &PrbpTrace,
    r: usize,
) -> SDominatorPartition {
    let n = dag.node_count();
    let mut class_of_node: Vec<Option<usize>> = vec![None; n];
    let mut remaining_in: Vec<usize> = (0..n)
        .map(|i| dag.in_degree(pebble_dag::NodeId::from_index(i)))
        .collect();
    let mut ios = 0usize;
    for mv in &trace.moves {
        let subseq = ios / r;
        match *mv {
            PrbpMove::PartialCompute { to, .. } => {
                remaining_in[to.index()] -= 1;
                if remaining_in[to.index()] == 0 {
                    class_of_node[to.index()] = Some(subseq);
                }
            }
            PrbpMove::Load(v) if dag.is_source(v) && class_of_node[v.index()].is_none() => {
                class_of_node[v.index()] = Some(subseq);
            }
            _ => {}
        }
        ios += mv.io_cost();
    }
    let k = ios.div_ceil(r).max(1);
    let mut classes = vec![BitSet::new(n); k];
    for v in dag.nodes() {
        let c = class_of_node[v.index()]
            .expect("every node is fully computed or loaded in a valid pebbling");
        classes[c].insert(v.index());
    }
    SDominatorPartition { classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{
        binary_tree, chained_gadgets, fft, fig1_full, matvec, pebble_collection, zipper,
    };
    use pebble_game::prbp::PrbpConfig;
    use pebble_game::rbp::RbpConfig;
    use pebble_game::strategies;

    /// Validated PRBP traces for a collection of structured DAGs, together
    /// with the cache size they were built for.
    fn prbp_corpus() -> Vec<(pebble_dag::Dag, pebble_game::trace::PrbpTrace, usize)> {
        let mut out = Vec::new();
        let f = fig1_full();
        out.push((f.dag.clone(), strategies::fig1::prbp_optimal_trace(&f), 4));
        let mv = matvec(4);
        out.push((mv.dag.clone(), strategies::matvec::prbp_streaming(&mv), 7));
        let tree = pebble_dag::generators::kary_tree(2, 4);
        out.push((tree.dag.clone(), strategies::tree::prbp_tree(&tree), 3));
        let z = zipper(3, 6);
        out.push((z.dag.clone(), strategies::zipper::prbp_zipper(&z), 5));
        let p = pebble_collection(3, 9);
        out.push((
            p.dag.clone(),
            strategies::collection::prbp_full_cache(&p),
            5,
        ));
        let c = chained_gadgets(4);
        out.push((c.dag.clone(), strategies::chain_gadget::prbp_trace(&c), 4));
        let f16 = fft(16);
        out.push((
            f16.dag.clone(),
            strategies::fft::prbp_blocked(&f16, 8).unwrap(),
            8,
        ));
        out
    }

    #[test]
    fn hong_kung_partition_is_valid_and_bounds_cost() {
        let dags: Vec<(pebble_dag::Dag, usize)> = vec![
            (fig1_full().dag, 4),
            (binary_tree(3), 3),
            (matvec(3).dag, 8),
        ];
        for (dag, r) in dags {
            let trace = match r {
                8 => strategies::matvec::rbp_row_by_row(&matvec(3)),
                _ => strategies::topological::rbp_topological(&dag, r).unwrap(),
            };
            let cost = trace.validate(&dag, RbpConfig::new(r)).unwrap();
            let partition = hong_kung_partition(&dag, &trace, r);
            partition.validate(&dag, 2 * r).expect("valid 2r-partition");
            let k = partition.class_count();
            assert!(subsequence_lower_bound(r, k) <= cost);
            assert!(cost <= r * k);
        }
    }

    #[test]
    fn lemma_6_4_edge_partitions_are_valid_and_bound_cost() {
        for (dag, trace, r) in prbp_corpus() {
            let cost = trace.validate(&dag, PrbpConfig::new(r)).unwrap();
            let partition = edge_partition_from_prbp(&dag, &trace, r);
            partition
                .validate(&dag, 2 * r)
                .expect("valid 2r-edge partition");
            let k = partition.class_count();
            assert!(subsequence_lower_bound(r, k) <= cost, "bound violated");
            assert!(cost <= r * k, "class count too small");
        }
    }

    #[test]
    fn lemma_6_8_dominator_partitions_are_valid_and_bound_cost() {
        for (dag, trace, r) in prbp_corpus() {
            let cost = trace.validate(&dag, PrbpConfig::new(r)).unwrap();
            let partition = dominator_partition_from_prbp(&dag, &trace, r);
            partition
                .validate(&dag, 2 * r)
                .expect("valid 2r-dominator partition");
            let k = partition.class_count();
            assert!(subsequence_lower_bound(r, k) <= cost);
            assert!(cost <= r * k);
        }
    }

    #[test]
    fn class_counts_match_ceil_cost_over_r() {
        let f = fig1_full();
        let trace = strategies::fig1::prbp_optimal_trace(&f);
        let cost = trace.validate(&f.dag, PrbpConfig::new(4)).unwrap();
        assert_eq!(cost, 2);
        let partition = edge_partition_from_prbp(&f.dag, &trace, 4);
        assert_eq!(partition.class_count(), 1);
        let dom = dominator_partition_from_prbp(&f.dag, &trace, 4);
        assert_eq!(dom.class_count(), 1);
    }

    #[test]
    fn rbp_trace_converted_to_prbp_yields_consistent_partitions() {
        // The same pebbling seen through Proposition 4.1: both Lemma 6.4 and
        // Lemma 6.8 partitions derived from the converted trace stay valid.
        let tree = pebble_dag::generators::kary_tree(2, 3);
        let rbp = strategies::tree::rbp_tree(&tree);
        let prbp = pebble_game::convert::rbp_to_prbp(&tree.dag, &rbp, 3).unwrap();
        let cost = prbp.validate(&tree.dag, PrbpConfig::new(3)).unwrap();
        let ep = edge_partition_from_prbp(&tree.dag, &prbp, 3);
        ep.validate(&tree.dag, 6).unwrap();
        let dp = dominator_partition_from_prbp(&tree.dag, &prbp, 3);
        dp.validate(&tree.dag, 6).unwrap();
        assert!(subsequence_lower_bound(3, ep.class_count()) <= cost);
        assert!(subsequence_lower_bound(3, dp.class_count()) <= cost);
    }
}

//! Composable lower bounds: sum per-component admissible bounds with
//! boundary-credit corrections.
//!
//! Take any partition of (a subset of) the nodes into components
//! `C_1, …, C_k`. Every I/O move of a valid schedule `S` touches exactly one
//! node, so `cost(S) = Σ_i c_i(S) + c_rest(S)` where `c_i` counts the I/Os
//! on nodes of `C_i` and `c_rest` the I/Os on unassigned nodes. The bound
//! rests on two facts:
//!
//! 1. **Per-component**: restricting `S` to the *internal* sub-DAG `G_i` of
//!    `C_i` (members only, internal edges only, isolated nodes dropped)
//!    yields a valid pebbling of `G_i` after at most `P_i + Q_i` repairs,
//!    where `P_i` counts *fake sources* (members computed from boundary
//!    values: no internal in-edge but a global one) and `Q_i` counts *fake
//!    sinks* (members whose value leaves the component: no internal
//!    out-edge but a global one). A fake source becomes an `G_i`-source and
//!    needs one inserted load the moment `S` computes it (once — the games
//!    are one-shot); a fake sink is a `G_i`-sink that `S` may discard
//!    unsaved, needing one inserted save. Every other restricted move stays
//!    legal move-for-move: states of members evolve identically except for
//!    dropped cross-edge computes, whose effects the two repairs cover, and
//!    partial-value saves/loads that the restriction drops (dropping only
//!    lowers the cost). Hence `c_i(S) ≥ LB(G_i) − P_i − Q_i` for *any*
//!    admissible lower bound `LB` of the standalone instance `G_i`.
//! 2. **Unassigned sources**: every source must be loaded at least once (its
//!    consumers need it red, and sources cannot be computed), so
//!    `c_rest(S) ≥ #(unassigned sources)`.
//!
//! Summing: `OPT ≥ Σ_i max(0, LB(G_i) − P_i − Q_i) + #unassigned sources`
//! — for **every** partition, connected or not, convex or not. The credits
//! are exactly why decomposition-aware *schedules* beat decomposition-blind
//! *bounds* on tightly coupled DAGs; where the parts are genuinely
//! independent (disjoint weak components: `P_i = Q_i = 0`) the bound is a
//! plain sum and strictly dominates single-instance bounds that mix phases
//! across components.
//!
//! The construction above relies on the one-shot rules; the `clear`
//! (re-computation) variant would make the `P_i` repair count unbounded, so
//! [`composed_prbp_bound`] returns `None` for such configurations.

use pebble_dag::decompose::extract_internal;
use pebble_dag::{Dag, NodeId};
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;

use crate::heuristics::{SDominatorHeuristic, SEdgeHeuristic};

/// Node-count threshold above which a component's ladder skips the
/// (max-flow-based) partition bounds and keeps only the linear-time
/// load-count bound.
pub const FULL_LADDER_LIMIT: usize = 20_000;

/// A composable lower bound, decomposed into its contributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedBound {
    /// Per-component contribution `max(0, LB(G_i) − P_i − Q_i)`, in input
    /// order. Callers holding stronger per-component knowledge (an exact
    /// optimum of a boundary-free component) may raise individual entries
    /// before summing — see [`ComposedBound::total`].
    pub per_component: Vec<usize>,
    /// Number of source nodes assigned to no component; each contributes one
    /// mandatory load.
    pub unassigned_source_loads: usize,
}

impl ComposedBound {
    /// The composed bound: sum of the per-component contributions plus the
    /// unassigned-source loads.
    pub fn total(&self) -> usize {
        self.per_component.iter().sum::<usize>() + self.unassigned_source_loads
    }
}

/// Evaluate the composable PRBP bound for `partition` (disjoint member
/// lists, each sorted ascending; nodes outside every part are treated as
/// unassigned). Returns `None` for configurations with re-computation
/// enabled (see the module docs). `full_ladders` additionally evaluates the
/// S-dominator / S-edge bounds on components up to [`FULL_LADDER_LIMIT`]
/// nodes.
pub fn composed_prbp_bound(
    dag: &Dag,
    config: PrbpConfig,
    partition: &[Vec<NodeId>],
    full_ladders: bool,
) -> Option<ComposedBound> {
    if config.allow_clear {
        return None;
    }
    let per_component = partition
        .iter()
        .map(|members| {
            component_contribution(dag, members, full_ladders, |sub, h| {
                exact::prbp_initial_bound(sub, config, h)
            })
        })
        .collect();
    Some(ComposedBound {
        per_component,
        unassigned_source_loads: unassigned_sources(dag, partition),
    })
}

/// Evaluate the composable RBP bound for `partition` (same contract as
/// [`composed_prbp_bound`]; RBP has no re-computation variant, so this is
/// total).
pub fn composed_rbp_bound(
    dag: &Dag,
    config: RbpConfig,
    partition: &[Vec<NodeId>],
    full_ladders: bool,
) -> ComposedBound {
    let per_component = partition
        .iter()
        .map(|members| {
            component_contribution(dag, members, full_ladders, |sub, h| {
                exact::rbp_initial_bound(sub, config, h)
            })
        })
        .collect();
    ComposedBound {
        per_component,
        unassigned_source_loads: unassigned_sources(dag, partition),
    }
}

fn component_contribution(
    dag: &Dag,
    members: &[NodeId],
    full_ladders: bool,
    eval: impl Fn(&Dag, &dyn LowerBound) -> usize,
) -> usize {
    let Some(internal) = extract_internal(dag, members) else {
        return 0;
    };
    let mut best = eval(&internal.dag, &LoadCountHeuristic);
    if full_ladders && internal.dag.node_count() <= FULL_LADDER_LIMIT {
        let dominator = SDominatorHeuristic::new();
        let edge = SEdgeHeuristic::new();
        for h in [&dominator as &dyn LowerBound, &edge] {
            best = best.max(eval(&internal.dag, h));
        }
    }
    best.saturating_sub(internal.fake_sources + internal.fake_sinks)
}

fn unassigned_sources(dag: &Dag, partition: &[Vec<NodeId>]) -> usize {
    let mut assigned = dag.node_set();
    for part in partition {
        for &v in part {
            assigned.insert(v.index());
        }
    }
    dag.nodes()
        .filter(|&v| dag.is_source(v) && !assigned.contains(v.index()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::decompose::{decompose, Strategy};
    use pebble_dag::generators::{binary_tree, fft, matmul};
    use pebble_dag::DagBuilder;
    use pebble_game::exact::{optimal_prbp_cost, SearchConfig};

    fn parts_of(dag: &Dag, strategy: Strategy) -> Vec<Vec<NodeId>> {
        decompose(dag, strategy)
            .unwrap()
            .components
            .into_iter()
            .map(|c| c.nodes)
            .collect()
    }

    #[test]
    fn disconnected_components_sum_exactly() {
        // Two disjoint trees: the composed bound is the sum of the per-tree
        // bounds, with zero credits.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(6);
        for (u, v) in [(0, 2), (1, 2), (3, 5), (4, 5)] {
            b.add_edge(n[u], n[v]);
        }
        let dag = b.build().unwrap();
        let parts = parts_of(&dag, Strategy::Wcc);
        assert_eq!(parts.len(), 2);
        let config = PrbpConfig::new(2);
        let composed = composed_prbp_bound(&dag, config, &parts, true).unwrap();
        assert_eq!(composed.unassigned_source_loads, 0);
        assert_eq!(composed.per_component.len(), 2);
        let opt = optimal_prbp_cost(&dag, config, SearchConfig::default()).unwrap();
        assert!(composed.total() <= opt, "{} > {}", composed.total(), opt);
        // Each half alone needs 3 I/Os (2 loads + 1 save), and the composed
        // bound sees both halves.
        assert_eq!(composed.total(), 6);
    }

    #[test]
    fn banded_partition_stays_admissible_on_fft() {
        let f = fft(4).dag; // 12 nodes: within exact-solver reach
        let parts = parts_of(&f, Strategy::LevelBands { max_nodes: 8 });
        assert!(parts.len() > 1);
        let config = PrbpConfig::new(3);
        let composed = composed_prbp_bound(&f, config, &parts, true).unwrap();
        let opt = optimal_prbp_cost(&f, config, SearchConfig::default()).unwrap();
        assert!(composed.total() <= opt, "{} > {}", composed.total(), opt);
    }

    #[test]
    fn cone_partition_counts_shared_sources() {
        let mm = matmul(2, 1, 2).dag; // 12 nodes: within exact-solver reach
        let parts = parts_of(
            &mm,
            Strategy::SinkCones {
                max_nodes: 6,
                max_sinks: 1,
            },
        );
        let config = PrbpConfig::new(3);
        let composed = composed_prbp_bound(&mm, config, &parts, true).unwrap();
        // All 4 matrix entries are shared sources.
        assert_eq!(composed.unassigned_source_loads, 4);
        let opt = optimal_prbp_cost(&mm, config, SearchConfig::default()).unwrap();
        assert!(composed.total() <= opt);
    }

    #[test]
    fn rbp_variant_is_admissible_too() {
        let t = binary_tree(3);
        let parts = parts_of(&t, Strategy::Whole);
        let config = RbpConfig::new(4);
        let composed = composed_rbp_bound(&t, config, &parts, true);
        let opt =
            pebble_game::exact::optimal_rbp_cost(&t, config, SearchConfig::default()).unwrap();
        assert!(composed.total() <= opt);
        // Whole-graph partition with full ladders reproduces the plain
        // single-instance ladder (no credits apply).
        assert!(composed.total() >= t.trivial_cost());
    }

    #[test]
    fn clear_variant_is_refused() {
        let t = binary_tree(2);
        let parts = parts_of(&t, Strategy::Whole);
        assert!(composed_prbp_bound(&t, PrbpConfig::new(2).with_clear(), &parts, true).is_none());
    }
}

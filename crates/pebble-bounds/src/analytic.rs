//! Closed-form I/O lower bounds for the concrete computations of Section 6.3.
//!
//! The bounds are stated in the paper asymptotically; the functions here
//! expose the concrete expressions that come out of the proofs (Theorem 6.5 /
//! 6.7 applied to the structural counting arguments), so the experiment
//! harness can compare validated strategy costs against them. Each function
//! also documents the constant-factor convention it uses.

/// Lower bound for the m-point FFT DAG in PRBP (Theorem 6.9), obtained from
/// the S-dominator partition bound `MIN_dom(S) ≥ m·log₂(m) / (S·log₂(S))`
/// with `S = 2r` and Theorem 6.7: `OPT ≥ r·(MIN_dom(2r) − 1)`.
/// Also at least the trivial cost `2m`.
pub fn fft_prbp_lower_bound(m: usize, r: usize) -> f64 {
    assert!(m >= 2 && r >= 2);
    let s = (2 * r) as f64;
    let mf = m as f64;
    let min_dom = (mf * mf.log2()) / (s * s.log2());
    let bound = r as f64 * (min_dom - 1.0);
    bound.max(2.0 * mf)
}

/// Lower bound for standard matrix multiplication in PRBP (Theorem 6.10),
/// obtained from the S-edge partition argument: every class contains at most
/// `2√2·S^{3/2} + S` internal edges (the Loomis–Whitney bound of Hong–Kung on
/// the internal nodes reachable from `S` sources, plus up to `S` internal
/// nodes inside the edge-dominator), so
/// `MIN_edge(S) ≥ m₁m₂m₃ / (2√2·S^{3/2} + S)` and Theorem 6.5 applies.
/// Also at least the trivial cost.
pub fn matmul_prbp_lower_bound(m1: usize, m2: usize, m3: usize, r: usize) -> f64 {
    assert!(r >= 2);
    let s = (2 * r) as f64;
    let internal = (m1 * m2 * m3) as f64;
    let per_class = 2.0 * 2f64.sqrt() * s.powf(1.5) + s;
    let min_edge = internal / per_class;
    let bound = r as f64 * (min_edge - 1.0);
    let trivial = (m1 * m2 + m2 * m3 + m1 * m3) as f64;
    bound.max(trivial)
}

/// Lower bound for the attention `Q·Kᵀ` DAG in PRBP (Theorem 6.11):
/// `Ω(min(m²·d/√r, m²·d²/r))`. In the small-cache regime (`r ≤ d²`) the bound
/// reduces to the matrix-multiplication bound for an `m×d by d×m` product;
/// in the large-cache regime every edge class contains at most
/// `4·r·d + 4·r²/d` internal edges, giving `MIN_edge(2r) ≥ m²·d / (4rd + 4r²/d)`
/// and Theorem 6.5 applies.
pub fn attention_prbp_lower_bound(m: usize, d: usize, r: usize) -> f64 {
    assert!(r >= 2 && d >= 1);
    if r <= d * d {
        // Small cache: reduce to the matrix multiplication Q (m×d) · Kᵀ (d×m).
        matmul_prbp_lower_bound(m, d, m, r)
    } else {
        let rf = r as f64;
        let df = d as f64;
        let internal = (m * m * d) as f64;
        let per_class = 4.0 * rf * df + 4.0 * rf * rf / df;
        let min_edge = internal / per_class;
        (rf * (min_edge - 1.0)).max(2.0 * (m * d) as f64)
    }
}

/// The regime boundary of Theorem 6.11: the large-cache expression takes over
/// once `r ≥ d²`.
pub fn attention_large_cache_regime(d: usize, r: usize) -> bool {
    r > d * d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_bound_grows_with_m_and_shrinks_with_r() {
        // Use an m large enough that the asymptotic term dominates the
        // trivial-cost floor for the small cache.
        let b1 = fft_prbp_lower_bound(1 << 16, 8);
        let b2 = fft_prbp_lower_bound(1 << 20, 8);
        let b3 = fft_prbp_lower_bound(1 << 20, 64);
        assert!(b2 > b1);
        assert!(b2 > b3);
        // Shape check: comfortably above the trivial cost 2m for large m.
        assert!(b2 > 2.0 * (1u64 << 20) as f64);
    }

    #[test]
    fn fft_bound_never_below_trivial() {
        assert!(fft_prbp_lower_bound(8, 64) >= 16.0);
    }

    #[test]
    fn matmul_bound_shape() {
        // Quadrupling r should roughly halve the (asymptotic part of the) bound.
        let big = matmul_prbp_lower_bound(256, 256, 256, 16);
        let small = matmul_prbp_lower_bound(256, 256, 256, 64);
        assert!(big > small);
        // And the bound grows linearly in the number of multiplications.
        let double = matmul_prbp_lower_bound(512, 256, 256, 16);
        assert!(double > 1.8 * big);
        // Never below trivial.
        assert!(matmul_prbp_lower_bound(2, 2, 2, 1024) >= 12.0);
    }

    #[test]
    fn attention_bound_switches_regimes_at_d_squared() {
        let d = 8;
        assert!(!attention_large_cache_regime(d, 64));
        assert!(attention_large_cache_regime(d, 65));
        // Large cache: bound decreases roughly like 1/r.
        let b1 = attention_prbp_lower_bound(256, d, 128);
        let b2 = attention_prbp_lower_bound(256, d, 512);
        assert!(b1 > b2);
        // Small cache: matches the matmul reduction.
        let small = attention_prbp_lower_bound(256, d, 32);
        assert!((small - matmul_prbp_lower_bound(256, d, 256, 32)).abs() < 1e-9);
    }

    #[test]
    fn attention_bound_grows_with_sequence_length() {
        let d = 4;
        let b1 = attention_prbp_lower_bound(128, d, 64);
        let b2 = attention_prbp_lower_bound(256, d, 64);
        assert!(b2 > 3.0 * b1);
    }
}

//! Node-based partitions: Hong–Kung S-partitions (Definition 5.3) and
//! S-dominator partitions (Definition 6.6).

use crate::terminal::terminal_set;
use pebble_dag::dominators::min_dominator_size;
use pebble_dag::{BitSet, Dag, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a partition failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A node appears in no class or in more than one class.
    NotAPartition {
        /// Index of the node that is not covered exactly once.
        node: usize,
    },
    /// Condition (i): an edge goes from a later class to an earlier one.
    CyclicDependency {
        /// The later class the edge starts in.
        from_class: usize,
        /// The earlier class the edge points back to.
        to_class: usize,
    },
    /// Condition (ii): a class has no dominator of size at most S.
    DominatorTooLarge {
        /// Index of the offending class.
        class: usize,
        /// Size of that class's minimum dominator.
        minimum: usize,
    },
    /// Condition (iii): a class's terminal set exceeds S.
    TerminalTooLarge {
        /// Index of the offending class.
        class: usize,
        /// Size of that class's terminal set.
        size: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NotAPartition { node } => {
                write!(f, "node {node} is not covered exactly once")
            }
            PartitionError::CyclicDependency {
                from_class,
                to_class,
            } => {
                write!(f, "edge from class {from_class} back to class {to_class}")
            }
            PartitionError::DominatorTooLarge { class, minimum } => {
                write!(f, "class {class} needs a dominator of size {minimum}")
            }
            PartitionError::TerminalTooLarge { class, size } => {
                write!(f, "class {class} has a terminal set of size {size}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// An ordered partition `V₁, …, V_k` of the nodes of a DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SPartition {
    /// Classes in order; `classes[i]` is `V_{i+1}`.
    pub classes: Vec<BitSet>,
}

impl SPartition {
    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Index of the class containing node `v`, if any.
    pub fn class_of(&self, v: NodeId) -> Option<usize> {
        self.classes.iter().position(|c| c.contains(v.index()))
    }

    /// Check that the classes form a partition of `V` and that conditions (i)
    /// and (ii) of Definition 5.3 hold with parameter `s`; `check_terminal`
    /// additionally enforces condition (iii). The same routine therefore
    /// validates both S-partitions and S-dominator partitions.
    fn validate_impl(
        &self,
        dag: &Dag,
        s: usize,
        check_terminal: bool,
    ) -> Result<(), PartitionError> {
        let n = dag.node_count();
        // Exact cover.
        let mut seen = vec![false; n];
        for class in &self.classes {
            for v in class.iter() {
                if seen[v] {
                    return Err(PartitionError::NotAPartition { node: v });
                }
                seen[v] = true;
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(PartitionError::NotAPartition { node: v });
        }
        // Condition (i): no edge from a later class into an earlier class.
        let mut class_of = vec![usize::MAX; n];
        for (i, class) in self.classes.iter().enumerate() {
            for v in class.iter() {
                class_of[v] = i;
            }
        }
        for e in dag.edges() {
            let (u, v) = dag.edge_endpoints(e);
            if class_of[u.index()] > class_of[v.index()] {
                return Err(PartitionError::CyclicDependency {
                    from_class: class_of[u.index()],
                    to_class: class_of[v.index()],
                });
            }
        }
        // Condition (ii): dominator of size at most s.
        for (i, class) in self.classes.iter().enumerate() {
            let minimum = min_dominator_size(dag, class);
            if minimum > s {
                return Err(PartitionError::DominatorTooLarge { class: i, minimum });
            }
        }
        // Condition (iii): terminal set of size at most s.
        if check_terminal {
            for (i, class) in self.classes.iter().enumerate() {
                let size = terminal_set(dag, class).count();
                if size > s {
                    return Err(PartitionError::TerminalTooLarge { class: i, size });
                }
            }
        }
        Ok(())
    }

    /// Validate this partition as an S-partition (Definition 5.3).
    pub fn validate(&self, dag: &Dag, s: usize) -> Result<(), PartitionError> {
        self.validate_impl(dag, s, true)
    }

    /// Validate this partition as an S-dominator partition only
    /// (Definition 6.6, i.e. without the terminal-set condition).
    pub fn validate_dominator_only(&self, dag: &Dag, s: usize) -> Result<(), PartitionError> {
        self.validate_impl(dag, s, false)
    }
}

/// An S-dominator partition (Definition 6.6): same data as an [`SPartition`],
/// but only conditions (i) and (ii) are required.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SDominatorPartition {
    /// Classes in order.
    pub classes: Vec<BitSet>,
}

impl SDominatorPartition {
    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Validate conditions (i) and (ii) of Definition 5.3 with parameter `s`.
    pub fn validate(&self, dag: &Dag, s: usize) -> Result<(), PartitionError> {
        SPartition {
            classes: self.classes.clone(),
        }
        .validate_dominator_only(dag, s)
    }
}

/// The Hong–Kung style lower bound from a partition count:
/// `OPT ≥ r·(MIN(2r) − 1)`, instantiated with an upper bound `k ≥ MIN(2r)`
/// obtained from any concrete partition. Note that a concrete partition gives
/// an *upper* bound on `MIN(2r)`, so this helper is used with partition counts
/// that are themselves lower bounds on `MIN` (e.g. from the counterexample
/// analysis or from structural arguments).
pub fn partition_lower_bound(r: usize, min_classes: usize) -> usize {
    r * min_classes.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    /// a -> b -> c chain.
    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn single_class_partition_of_chain_is_valid() {
        let g = chain3();
        let p = SPartition {
            classes: vec![BitSet::full(3)],
        };
        assert!(p.validate(&g, 1).is_ok());
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.class_of(pebble_dag::NodeId(1)), Some(0));
    }

    #[test]
    fn missing_node_is_rejected() {
        let g = chain3();
        let p = SPartition {
            classes: vec![BitSet::from_indices(3, [0, 1])],
        };
        assert_eq!(
            p.validate(&g, 2),
            Err(PartitionError::NotAPartition { node: 2 })
        );
    }

    #[test]
    fn duplicate_node_is_rejected() {
        let g = chain3();
        let p = SPartition {
            classes: vec![
                BitSet::from_indices(3, [0, 1]),
                BitSet::from_indices(3, [1, 2]),
            ],
        };
        assert_eq!(
            p.validate(&g, 2),
            Err(PartitionError::NotAPartition { node: 1 })
        );
    }

    #[test]
    fn backwards_edge_is_rejected() {
        let g = chain3();
        let p = SPartition {
            classes: vec![
                BitSet::from_indices(3, [1, 2]),
                BitSet::from_indices(3, [0]),
            ],
        };
        assert_eq!(
            p.validate(&g, 2),
            Err(PartitionError::CyclicDependency {
                from_class: 1,
                to_class: 0
            })
        );
    }

    #[test]
    fn dominator_condition_is_checked() {
        // Star: 3 sources into one sink. The class {sink} has minimum
        // dominator size 1, but the class of all nodes needs 3 (the sources).
        let mut b = DagBuilder::new();
        let s = b.add_nodes(3);
        let t = b.add_node();
        for &x in &s {
            b.add_edge(x, t);
        }
        let g = b.build().unwrap();
        let p = SPartition {
            classes: vec![BitSet::full(4)],
        };
        assert!(matches!(
            p.validate(&g, 2),
            Err(PartitionError::DominatorTooLarge {
                class: 0,
                minimum: 3
            })
        ));
        assert!(p.validate(&g, 3).is_ok());
    }

    #[test]
    fn terminal_condition_distinguishes_partition_kinds() {
        // Fan-out: one source into 3 sinks. Every class containing the three
        // sinks has terminal size 3; as an S-partition with S = 2 it fails,
        // but as an S-dominator partition it is fine (dominator = the source).
        let mut b = DagBuilder::new();
        let s = b.add_node();
        let t = b.add_nodes(3);
        for &x in &t {
            b.add_edge(s, x);
        }
        let g = b.build().unwrap();
        let p = SPartition {
            classes: vec![BitSet::full(4)],
        };
        assert!(matches!(
            p.validate(&g, 2),
            Err(PartitionError::TerminalTooLarge { class: 0, size: 3 })
        ));
        assert!(p.validate_dominator_only(&g, 2).is_ok());
        let dp = SDominatorPartition {
            classes: vec![BitSet::full(4)],
        };
        assert!(dp.validate(&g, 2).is_ok());
        assert_eq!(dp.class_count(), 1);
    }

    #[test]
    fn lower_bound_helper() {
        assert_eq!(partition_lower_bound(4, 3), 8);
        assert_eq!(partition_lower_bound(4, 0), 0);
        assert_eq!(partition_lower_bound(4, 1), 0);
    }
}

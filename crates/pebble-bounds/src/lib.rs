//! # pebble-bounds
//!
//! The lower-bound machinery of the paper:
//!
//! * [`terminal`] — terminal sets (Definition 5.2) and edge-terminal sets
//!   (Definition 6.2).
//! * [`s_partition`] — Hong–Kung S-partitions (Definition 5.3) and
//!   S-dominator partitions (Definition 6.6) over the nodes of a DAG.
//! * [`s_edge_partition`] — S-edge partitions (Definition 6.3) over the edges
//!   of a DAG.
//! * [`from_pebbling`] — conversion of validated pebbling traces into the
//!   corresponding partitions: Hong–Kung for RBP, Lemma 6.4 (edge partition)
//!   and Lemma 6.8 (dominator partition) for PRBP, together with the
//!   `OPT ≥ r·(MIN(2r) − 1)` bounds (Theorems 6.5 and 6.7).
//! * [`heuristics`] — the partition bounds repackaged as admissible A*
//!   heuristics ([`pebble_game::exact::LowerBound`]) that accelerate the
//!   exact solvers instead of merely verifying their results.
//! * [`compose`] — composable lower bounds: per-component admissible bounds
//!   summed with boundary-credit corrections, admissible for *any* node
//!   partition; the certification counterpart of decomposition-based
//!   scheduling.
//! * [`counterexample`] — the Lemma 5.4 analysis showing that the classic
//!   S-partition bound fails for PRBP.
//! * [`analytic`] — closed-form lower bounds for FFT (Theorem 6.9), matrix
//!   multiplication (Theorem 6.10) and attention (Theorem 6.11).

#![deny(missing_docs)]

pub mod analytic;
pub mod compose;
pub mod counterexample;
pub mod from_pebbling;
pub mod heuristics;
pub mod s_edge_partition;
pub mod s_partition;
pub mod terminal;

pub use compose::{composed_prbp_bound, composed_rbp_bound, ComposedBound};
pub use heuristics::{SDominatorHeuristic, SEdgeHeuristic};
pub use s_edge_partition::SEdgePartition;
pub use s_partition::{SDominatorPartition, SPartition};

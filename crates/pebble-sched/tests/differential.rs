//! Differential testing against the exact solvers.
//!
//! Over randomly generated layered, tree and series-parallel DAGs small
//! enough for the A* solvers (n ≤ 20), this suite proves every engine
//! honest:
//!
//! * every portfolio scheduler's certified cost is at least the A* optimum,
//!   and every admissible bound in its report ladder is at most the optimum;
//! * `compose` returns *exactly* the optimum on tree and series-parallel
//!   instances (whole-instance exact scheduling below the node budget);
//! * the composable decomposition bound of `pebble-bounds` is admissible for
//!   *arbitrary* node partitions — including disconnected, non-convex ones —
//!   exercising the boundary-credit accounting adversarially;
//! * `Scheduler`/`PolicyKind`/`OrderKind` display names round-trip through
//!   `FromStr` (including the `compose` variants) and unknown names are
//!   rejected instead of misparsed.
//!
//! The A* reference searches explore millions of states and need optimised
//! builds; CI runs this suite in release (`cargo test --release -p
//! pebble-sched --test differential`).

#![cfg(not(debug_assertions))]

use pebble_bounds::composed_prbp_bound;
use pebble_dag::generators::{random_layered, RandomLayeredConfig};
use pebble_dag::{Dag, DagBuilder, NodeId};
use pebble_game::exact::{optimal_prbp_cost, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_sched::{
    certify_prbp, compose_prbp, default_suite, ComposeConfig, OrderKind, PolicyKind, Scheduler,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random layered DAGs within exact-solver reach.
fn small_layered() -> impl Strategy<Value = Dag> {
    (2usize..4, 2usize..4, 1usize..3, any::<u64>()).prop_map(|(layers, width, deg, seed)| {
        random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: deg,
            seed,
        })
    })
}

/// Random in-trees (reduction trees): node `i ≥ 1` feeds a uniformly chosen
/// earlier node, so every non-root has out-degree exactly 1.
fn random_in_tree() -> impl Strategy<Value = Dag> {
    (4usize..17, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = DagBuilder::new();
        let nodes = b.add_nodes(n);
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            // Edges run from higher ids to lower ids: acyclic by
            // construction, and node 0 is the unique root (sink).
            b.add_edge(nodes[i], nodes[parent]);
        }
        b.build().expect("random in-tree is a valid DAG")
    })
}

/// Random two-terminal series-parallel DAGs built by recursive composition.
fn random_sp() -> impl Strategy<Value = Dag> {
    (0usize..4, any::<u64>()).prop_map(|(depth, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = DagBuilder::new();
        let s = b.add_node();
        let t = b.add_node();
        grow_sp(&mut b, &mut rng, s, t, depth);
        b.build().expect("recursive SP construction is a valid DAG")
    })
}

/// Recursively realise an SP term between `s` and `t`.
fn grow_sp(b: &mut DagBuilder, rng: &mut ChaCha8Rng, s: NodeId, t: NodeId, depth: usize) {
    if depth == 0 || b.node_count() >= 14 {
        b.add_edge(s, t);
        return;
    }
    if rng.gen_bool(0.5) {
        // Series: s -> m -> t.
        let m = b.add_node();
        grow_sp(b, rng, s, m, depth - 1);
        grow_sp(b, rng, m, t, depth - 1);
    } else {
        // Parallel: two arms; at least one arm gets an internal node so no
        // duplicate edge can arise.
        let m = b.add_node();
        grow_sp(b, rng, s, m, depth - 1);
        grow_sp(b, rng, m, t, depth - 1);
        grow_sp(b, rng, s, t, depth.saturating_sub(1));
    }
}

/// The engines quantified over, including compose.
fn engines() -> Vec<Scheduler> {
    let mut suite = default_suite();
    suite.push(Scheduler::Beam {
        width: 8,
        branch: 4,
    });
    suite.push(Scheduler::Local { iterations: 30 });
    suite.push(Scheduler::Compose { exact_budget: 20 });
    suite
}

fn optimum(dag: &Dag, r: usize) -> usize {
    optimal_prbp_cost(dag, PrbpConfig::new(r), SearchConfig::default())
        .expect("differential instances are solver-sized")
}

/// Compose configured with the same state headroom as the reference
/// `optimum` search, so the equality tests compare exact against exact.
fn exact_config() -> ComposeConfig {
    ComposeConfig {
        exact_max_states: SearchConfig::default().max_states,
        ..ComposeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every engine's certified cost brackets the exact optimum from above,
    /// and every bound in its ladder brackets it from below.
    #[test]
    fn certified_costs_bracket_the_exact_optimum(dag in small_layered()) {
        for r in [2usize, 3] {
            let opt = optimum(&dag, r);
            for s in engines() {
                let Some(trace) = s.run_prbp(&dag, r) else { continue };
                let report = certify_prbp(&dag, r, &trace, s.to_string()).expect("valid trace");
                prop_assert!(
                    report.cost >= opt,
                    "{s}: certified cost {} below optimum {opt}", report.cost
                );
                for bound in &report.bounds {
                    prop_assert!(
                        bound.value <= opt,
                        "{s}: bound {} = {} exceeds optimum {opt}", bound.name, bound.value
                    );
                }
            }
        }
    }

    /// Compose is exactly optimal on in-tree instances.
    #[test]
    fn compose_equals_the_optimum_on_trees(dag in random_in_tree()) {
        for r in [2usize, 3] {
            let opt = optimum(&dag, r);
            let outcome = compose_prbp(&dag, r, &exact_config())
                .expect("r >= 2 schedules any DAG in PRBP");
            prop_assert_eq!(outcome.cost, opt);
            prop_assert!(outcome.trace.validate(&dag, PrbpConfig::new(r)).is_ok());
        }
    }

    /// Compose is exactly optimal on series-parallel instances.
    #[test]
    fn compose_equals_the_optimum_on_series_parallel(dag in random_sp()) {
        // The recursive construction caps growth at 14 nodes before the
        // last expansions; skip the rare larger draw (out of exact reach).
        if dag.node_count() > 16 {
            continue;
        }
        for r in [2usize, 3] {
            let opt = optimum(&dag, r);
            let outcome = compose_prbp(&dag, r, &exact_config())
                .expect("r >= 2 schedules any DAG in PRBP");
            prop_assert_eq!(outcome.cost, opt);
        }
    }

    /// The composable bound is admissible for arbitrary node partitions —
    /// the adversarial check on the fake-source/fake-sink credit accounting.
    #[test]
    fn composed_bound_is_admissible_for_any_partition(
        dag in small_layered(),
        parts_seed in any::<u64>(),
        part_count in 1usize..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(parts_seed);
        let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); part_count];
        for v in dag.nodes() {
            // Some nodes stay unassigned (bucket 0 of count+1).
            let bucket = rng.gen_range(0..=part_count);
            if bucket > 0 {
                parts[bucket - 1].push(v);
            }
        }
        parts.retain(|p| !p.is_empty());
        for r in [2usize, 3] {
            let opt = optimum(&dag, r);
            let bound = composed_prbp_bound(&dag, PrbpConfig::new(r), &parts, true)
                .expect("standard one-shot configuration");
            prop_assert!(
                bound.total() <= opt,
                "composed bound {} exceeds optimum {opt} (parts {:?})",
                bound.total(), parts
            );
        }
    }

    /// Scheduler display names round-trip through `FromStr`.
    #[test]
    fn scheduler_names_roundtrip(
        which in 0usize..5,
        a in 1usize..200,
        b in 1usize..10,
        policy in 0usize..3,
        order in 0usize..2,
    ) {
        let policy = [PolicyKind::Belady, PolicyKind::Lru, PolicyKind::FewestConsumers][policy];
        let order = [OrderKind::Natural, OrderKind::DfsPostorder][order];
        let s = match which {
            0 => Scheduler::Baseline,
            1 => Scheduler::Greedy { policy, order },
            2 => Scheduler::Beam { width: a, branch: b },
            3 => Scheduler::Local { iterations: a },
            _ => Scheduler::Compose { exact_budget: a },
        };
        let parsed: Scheduler = s.to_string().parse().expect("display form parses");
        match (parsed, s) {
            // `beam:<width>` omits the branch; parsing restores the default.
            (Scheduler::Beam { width: pw, .. }, Scheduler::Beam { width, .. }) => {
                prop_assert_eq!(pw, width);
            }
            (parsed, s) => prop_assert_eq!(parsed, s),
        }
    }

    /// Random names never panic the parser, and whatever parses must
    /// round-trip through a display form parsing to the same configuration.
    #[test]
    fn junk_scheduler_names_are_rejected(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789:".chars().collect();
        let len = rng.gen_range(1usize..16);
        let name: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        if let Ok(parsed) = name.parse::<Scheduler>() {
            let redisplayed: Scheduler = parsed.to_string().parse().expect("canonical form");
            match (redisplayed, parsed) {
                (Scheduler::Beam { width: a, .. }, Scheduler::Beam { width: b, .. }) => {
                    prop_assert_eq!(a, b);
                }
                (redisplayed, parsed) => prop_assert_eq!(redisplayed, parsed),
            }
        }
    }
}

/// Fixed-form rejections that must never start parsing (schema stability).
#[test]
fn known_bad_scheduler_names_stay_rejected() {
    for bad in [
        "",
        "compose:",
        "compose:x",
        "compose:20:7",
        "greedy:belady",
        "greedy:belady:dfs:extra",
        "beam:0",
        "local:",
        "annealing:3",
        "Compose",
    ] {
        assert!(bad.parse::<Scheduler>().is_err(), "`{bad}` must not parse");
    }
    // The default-budget display form is the bare name.
    assert_eq!(
        Scheduler::Compose {
            exact_budget: pebble_sched::compose::DEFAULT_EXACT_BUDGET
        }
        .to_string(),
        "compose"
    );
    assert_eq!(
        "compose:32".parse::<Scheduler>().unwrap(),
        Scheduler::Compose { exact_budget: 32 }
    );
}

//! Property-based coverage for the heuristic schedulers.
//!
//! Over randomly generated layered DAGs, every scheduler in the portfolio
//! must (a) emit a trace that replays through the game simulator, (b) cost at
//! least every admissible lower bound, and (c) — as a portfolio — never lose
//! to the generic `strategies::topological` baseline. On instances small
//! enough for the exact A* solvers, the portfolio stays within a fixed
//! factor of the true optimum.

use pebble_dag::generators::{random_layered, RandomLayeredConfig};
use pebble_dag::Dag;
use pebble_game::exact::{self, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::strategies::topological;
use pebble_sched::{
    best_prbp, certify_prbp, certify_rbp, default_suite, OrderKind, PolicyKind, Scheduler,
};
use proptest::prelude::*;

fn dag_strategy() -> impl Strategy<Value = (Dag, usize)> {
    (2usize..5, 2usize..6, 1usize..4, any::<u64>()).prop_map(|(layers, width, deg, seed)| {
        let dag = random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: deg,
            seed,
        });
        let r = dag.max_in_degree() + 2;
        (dag, r)
    })
}

/// The suite the properties quantify over: the default portfolio plus the
/// heavier members exercised at small scale.
fn full_suite() -> Vec<Scheduler> {
    let mut suite = default_suite();
    suite.push(Scheduler::Beam {
        width: 8,
        branch: 4,
    });
    suite.push(Scheduler::Local { iterations: 30 });
    suite
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_prbp_scheduler_validates_and_respects_all_bounds((dag, r) in dag_strategy()) {
        for s in full_suite() {
            let Some(trace) = s.run_prbp(&dag, r) else { continue };
            // `certify_prbp` replays the trace through the simulator and
            // evaluates every admissible bound; an invalid trace errors here.
            let report = certify_prbp(&dag, r, &trace, s.to_string()).expect("valid trace");
            for bound in &report.bounds {
                prop_assert!(
                    report.cost >= bound.value,
                    "{}: cost {} below admissible bound {} = {}",
                    s, report.cost, bound.name, bound.value
                );
            }
            prop_assert!(report.cost >= dag.trivial_cost());
        }
    }

    #[test]
    fn every_rbp_scheduler_validates_and_respects_all_bounds((dag, r) in dag_strategy()) {
        for s in full_suite() {
            let Some(trace) = s.run_rbp(&dag, r) else { continue };
            let report = certify_rbp(&dag, r, &trace, s.to_string()).expect("valid trace");
            for bound in &report.bounds {
                prop_assert!(report.cost >= bound.value);
            }
        }
    }

    #[test]
    fn portfolio_never_loses_to_the_topological_baseline((dag, r) in dag_strategy()) {
        let (_, _, best) = best_prbp(&dag, r, &full_suite()).expect("r >= 2");
        let base = topological::prbp_topological(&dag, r)
            .expect("r >= 2")
            .validate(&dag, PrbpConfig::new(r))
            .expect("valid baseline");
        prop_assert!(best <= base, "portfolio best {best} worse than baseline {base}");

        let rbp_best = full_suite()
            .into_iter()
            .filter_map(|s| s.run_rbp(&dag, r))
            .map(|t| t.validate(&dag, RbpConfig::new(r)).expect("valid trace"))
            .min()
            .expect("greedy RBP applies");
        let rbp_base = topological::rbp_topological(&dag, r)
            .expect("r >= Δin + 1")
            .validate(&dag, RbpConfig::new(r))
            .expect("valid baseline");
        prop_assert!(rbp_best <= rbp_base);
    }
}

/// On exact-solver-sized instances the portfolio stays within a fixed factor
/// of the proven optimum. Fixed seeds: this pins concrete quality, not a
/// theorem, and must not flake.
#[test]
fn portfolio_is_near_optimal_where_the_exact_solver_can_check() {
    const FACTOR: usize = 2;
    for seed in [1u64, 7, 23, 99] {
        let dag = random_layered(RandomLayeredConfig {
            layers: 3,
            width: 3,
            max_in_degree: 2,
            seed,
        });
        let r = 3;
        let opt = exact::optimal_prbp_cost(&dag, PrbpConfig::new(r), SearchConfig::default())
            .expect("solvable");
        let (s, _, best) = best_prbp(&dag, r, &full_suite()).expect("schedulable");
        assert!(
            best <= FACTOR * opt,
            "seed {seed}: best {best} ({s}) exceeds {FACTOR}x optimum {opt}"
        );
        assert!(best >= opt);
    }
}

/// The greedy schedulers handle every policy/order combination at the PRBP
/// capacity floor (`r = 2`), where eviction pressure is maximal.
#[test]
fn greedy_grid_is_exhaustive_at_minimum_cache() {
    let dag = random_layered(RandomLayeredConfig {
        layers: 4,
        width: 4,
        max_in_degree: 3,
        seed: 5,
    });
    for policy in [
        PolicyKind::Belady,
        PolicyKind::Lru,
        PolicyKind::FewestConsumers,
    ] {
        for order in [OrderKind::Natural, OrderKind::DfsPostorder] {
            let s = Scheduler::Greedy { policy, order };
            let trace = s.run_prbp(&dag, 2).expect("r = 2 suffices for PRBP");
            assert!(trace.validate(&dag, PrbpConfig::new(2)).is_ok(), "{s}");
        }
    }
}

//! # pebble-sched
//!
//! Scalable heuristic scheduling for the red-blue pebble games, with
//! certified optimality gaps.
//!
//! The exact solvers of `pebble-game` prove optima on gadget-sized DAGs; this
//! crate schedules DAGs with 10⁴–10⁵ nodes — the scale at which the paper's
//! asymptotics (FFT `Θ(m·log m/log r)`, matmul `Θ(m₁m₂m₃/√r)`, attention
//! `Θ(m²d²/r)`) become visible — and certifies every result:
//!
//! * the **upper bound** is a full move trace replayed through the game
//!   simulators (never a formula);
//! * the **lower bound** is the best admissible bound from `pebble-bounds`
//!   (load-count, S-dominator, S-edge), so `cost / bound` is a proven
//!   optimality-gap certificate ([`report::ScheduleReport`]).
//!
//! ## Schedulers
//!
//! * [`greedy`] — process the nodes in a fixed topological order
//!   ([`order::natural`] or [`order::dfs_postorder`]), loading inputs on
//!   demand and evicting through a pluggable [`policy::EvictionPolicy`]
//!   (Belady / LRU / fewest-remaining-consumers). `O(n + m)` plus `O(r)` per
//!   eviction.
//! * [`beam`] — beam search over partial schedules, deduplicated by the
//!   packed-state encoding shared with the exact solvers
//!   ([`pebble_game::packed`]); width 1 is the adaptive greedy that picks the
//!   cheapest next node online.
//! * [`local`] — seeded local-search refinement (eviction re-decisions +
//!   topology-preserving segment re-ordering) that only ever accepts
//!   strictly cheaper, simulator-validated schedules.
//! * [`edges`] — the edge-order greedy executor: PRBP partial computes
//!   scheduled one edge at a time, which makes streaming-accumulator
//!   (tiled matmul / attention) access patterns expressible generically.
//! * [`compose`] — structure-aware divide-and-conquer: decompose
//!   ([`pebble_dag::decompose`]), schedule components independently (exact
//!   A* below a node budget, portfolio above, dispatched across scoped
//!   threads), stitch with boundary-aware eviction, and certify against the
//!   composable lower bounds of `pebble-bounds`.
//! * [`suite`] — the named portfolio the experiments and benchmarks sweep.
//! * [`anytime`] — deadline-bounded anytime scheduling on the unified
//!   engine ([`pebble_game::engine`]): a fast validated seed, then seeded
//!   parallel branch-and-bound until the deadline, returning the best
//!   certified incumbent at any stop.

#![deny(missing_docs)]

pub mod anytime;
pub mod beam;
pub mod compose;
pub mod edges;
pub mod greedy;
pub mod local;
pub mod order;
pub mod policy;
pub mod report;
pub mod suite;

pub use anytime::{anytime_prbp, anytime_prbp_result, AnytimeConfig, AnytimeError, AnytimeOutcome};
pub use beam::{beam_prbp, BeamConfig};
pub use compose::{compose_prbp, compose_prbp_report, ComposeConfig, ComposeOutcome};
pub use edges::{cone_affinity_edges, greedy_prbp_edges};
pub use greedy::{greedy_prbp, greedy_prbp_into, greedy_rbp, greedy_rbp_into};
pub use local::{local_search_prbp, LocalSearchConfig};
pub use policy::{Candidate, EvictionPolicy, FewestRemainingConsumers, FurthestInFuture, Lru};
pub use report::{
    certify_greedy_prbp, certify_greedy_rbp, certify_prbp, certify_prbp_with,
    certify_prbp_with_bounds, certify_rbp, certify_rbp_with, prbp_bound_ladder, rbp_bound_ladder,
    BoundSet, BoundValue, ScheduleReport,
};
pub use suite::{best_prbp, default_suite, OrderKind, PolicyKind, Scheduler};

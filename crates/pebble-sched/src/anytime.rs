//! Deadline-bounded anytime scheduling: best certified answer by time `T`.
//!
//! The latency-SLO serving story of the ROADMAP ("best certified answer in
//! 250 ms") composes two phases of the unified engine
//! ([`pebble_game::engine`]) under one wall-clock budget:
//!
//! 1. **Seed** — the cheaper of the streaming greedy (Belady eviction over
//!    a DFS postorder, `O(n + m)`) and the adaptive beam (engine beam mode,
//!    width [`AnytimeConfig::seed_width`], greedy-completed if the deadline
//!    fires mid-level) produces a full, simulator-validated schedule fast;
//! 2. **Improve & certify** — the remaining budget runs the exact A* seeded
//!    with that schedule: the incumbent prunes the search
//!    (branch-and-bound), every improvement is validated before it is
//!    published, and exhausting the pruned space proves optimality.
//!
//! The outcome always carries a simulator-validated schedule and an
//! admissible lower bound, so callers get a *certified* `cost / bound` gap
//! no matter when the deadline fires. Attach a
//! [`Progress`] channel to watch the
//! incumbent improve live, or a [`CancelToken`](pebble_game::engine::CancelToken)
//! via the engine directly for caller-side cancellation.

use crate::greedy::greedy_prbp_into;
use crate::order;
use crate::policy::FurthestInFuture;
use pebble_dag::Dag;
use pebble_game::engine::{solve_prbp, EngineConfig, HeuristicSpec, Progress, StopReason};
use pebble_game::exact::{LoadCountHeuristic, LowerBound};
use pebble_game::moves::PrbpMove;
use pebble_game::prbp::PrbpConfig;
use pebble_game::trace::PrbpTrace;
use std::fmt;
use std::time::{Duration, Instant};

/// Knobs of an anytime solve.
#[derive(Debug, Clone)]
pub struct AnytimeConfig {
    /// Total wall-clock budget across both phases.
    pub deadline: Duration,
    /// Worker threads inside the exact phase (0 = available parallelism).
    pub workers: usize,
    /// Beam width of the seeding phase. The default of 1 is the adaptive
    /// greedy — the only width that stays comfortably inside tight deadlines
    /// on 10³⁺-node instances; raise it when the budget is generous.
    pub seed_width: usize,
    /// Report [`AnytimeError::DeadlineNoIncumbent`] when the deadline
    /// machinery stops the seeding phase before it has produced a single
    /// validated schedule, instead of spending unbounded extra time
    /// synthesising one greedily. Latency-sensitive callers (the serving
    /// layer, `prbp schedule --deadline-ms`) set this so "the budget was too
    /// small for this instance" is a distinct, machine-readable outcome.
    pub fail_fast: bool,
}

impl AnytimeConfig {
    /// An anytime configuration with the given deadline, adaptive seeding
    /// and hardware-parallel improvement.
    pub fn new(deadline: Duration) -> Self {
        AnytimeConfig {
            deadline,
            workers: 0,
            seed_width: 1,
            fail_fast: false,
        }
    }

    /// Same, with an explicit worker count for the exact phase.
    pub fn with_workers(deadline: Duration, workers: usize) -> Self {
        AnytimeConfig {
            workers,
            ..AnytimeConfig::new(deadline)
        }
    }
}

/// The certified result of an anytime solve.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    /// The best simulator-validated schedule found within the deadline.
    pub trace: PrbpTrace,
    /// Its replayed I/O cost.
    pub cost: usize,
    /// An admissible lower bound on the optimum (load-count; the certifying
    /// report may tighten it further).
    pub bound: usize,
    /// `true` iff the exact phase finished and proved `cost` optimal.
    pub proven_optimal: bool,
    /// Why the solve returned ([`StopReason::Completed`] = proven).
    pub stop: StopReason,
}

/// Why an anytime solve produced no schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnytimeError {
    /// `r < 2`: the PRBP game needs two red pebbles to aggregate anything.
    SmallR {
        /// The rejected cache size.
        r: usize,
    },
    /// The deadline expired before any incumbent existed (only reachable
    /// with [`AnytimeConfig::fail_fast`]).
    DeadlineNoIncumbent,
}

impl fmt::Display for AnytimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnytimeError::SmallR { r } => {
                write!(f, "r = {r} is too small for PRBP scheduling (need r >= 2)")
            }
            AnytimeError::DeadlineNoIncumbent => {
                write!(f, "deadline expired before any incumbent schedule existed")
            }
        }
    }
}

impl std::error::Error for AnytimeError {}

/// Schedule `dag` in PRBP with cache size `r` under a wall-clock deadline.
/// Returns `None` for `r < 2` (see [`anytime_prbp_result`] for the
/// error-typed variant used by deadline-sensitive callers). The returned
/// schedule is always simulator-validated and paired with an admissible
/// bound; attach `progress` to stream incumbents while the solve runs.
pub fn anytime_prbp(
    dag: &Dag,
    r: usize,
    config: &AnytimeConfig,
    progress: Option<&Progress<PrbpMove>>,
) -> Option<AnytimeOutcome> {
    anytime_prbp_result(dag, r, config, progress).ok()
}

/// [`anytime_prbp`] with a typed error: distinguishes `r < 2` from a
/// deadline that expired before any incumbent existed (the latter only with
/// [`AnytimeConfig::fail_fast`]; without it the seeding phase always
/// synthesises a full schedule, so the only failure mode is `SmallR`).
pub fn anytime_prbp_result(
    dag: &Dag,
    r: usize,
    config: &AnytimeConfig,
    progress: Option<&Progress<PrbpMove>>,
) -> Result<AnytimeOutcome, AnytimeError> {
    if r < 2 {
        return Err(AnytimeError::SmallR { r });
    }
    let started = Instant::now();
    let game = PrbpConfig::new(r);

    // When a JSONL trace is being recorded but the caller brought no
    // progress channel of its own, attach a local one so the convergence
    // timeline (incumbent/bound events) still lands in the trace.
    let local_progress = (progress.is_none() && pebble_obs::trace::enabled()).then(Progress::new);
    let progress = progress.or(local_progress.as_ref());

    // Phase 1: seed. Half the budget caps the adaptive beam; an early stop
    // still returns a full schedule (the engine greedy-completes the best
    // partial) unless `fail_fast` asked for a genuine incumbent or nothing.
    // The streaming greedy is near-free and often much cheaper on
    // structured instances, so the exact phase starts from the better of
    // the two — the engine validates and (if a progress channel is
    // attached) publishes whichever seed it receives.
    let seed_span = pebble_obs::trace::span("anytime:seed");
    let beam_engine = EngineConfig {
        deadline: Some(config.deadline / 2),
        width: Some(config.seed_width.max(1)),
        workers: config.workers,
        fail_fast: config.fail_fast,
        ..EngineConfig::default()
    };
    let beam = match solve_prbp(
        dag,
        game,
        &beam_engine,
        HeuristicSpec::Single(&LoadCountHeuristic),
        None,
        progress,
    ) {
        Ok(beam) => beam,
        // Only reachable with `fail_fast` (r < 2 was rejected above): the
        // seeding budget stopped the beam before a validated schedule
        // existed. Deliberately *not* papered over with the untimed greedy —
        // the caller asked for a bounded-latency answer.
        Err(_) => return Err(AnytimeError::DeadlineNoIncumbent),
    };
    let dfs = order::dfs_postorder(dag);
    let greedy = greedy_prbp_into(dag, r, &dfs, &mut FurthestInFuture, PrbpTrace::new());
    let (seed_trace, seed_cost) = match greedy {
        Some((trace, cost)) if cost < beam.cost => (trace, cost),
        _ => (beam.trace, beam.cost),
    };
    drop(seed_span);
    let seed = AnytimeOutcome {
        cost: seed_cost,
        proven_optimal: seed_cost == beam.bound,
        trace: seed_trace,
        bound: beam.bound,
        stop: StopReason::Deadline,
    };
    if seed.proven_optimal {
        return Ok(AnytimeOutcome {
            stop: StopReason::Completed,
            ..seed
        });
    }

    // Phase 2: seeded exact improvement for the remaining budget.
    let remaining = config.deadline.saturating_sub(started.elapsed());
    if remaining.is_zero() {
        return Ok(seed);
    }
    let _improve_span = pebble_obs::trace::span("anytime:improve");
    let make = || Box::new(LoadCountHeuristic) as Box<dyn LowerBound>;
    let exact_engine = EngineConfig {
        deadline: Some(remaining),
        workers: config.workers,
        ..EngineConfig::default()
    };
    match solve_prbp(
        dag,
        game,
        &exact_engine,
        HeuristicSpec::PerWorker(&make),
        Some(&seed.trace),
        progress,
    ) {
        Ok(out) => Ok(AnytimeOutcome {
            trace: out.trace,
            cost: out.cost,
            bound: out.bound.max(seed.bound),
            proven_optimal: out.proven_optimal,
            stop: out.stop,
        }),
        // Unreachable with a valid seed, but degrade to the seed rather
        // than dropping a certified answer on the floor.
        Err(_) => Ok(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{fft, fig1_full};

    #[test]
    fn small_instance_is_proven_within_a_generous_deadline() {
        let f = fig1_full();
        let out = anytime_prbp(
            &f.dag,
            4,
            &AnytimeConfig::new(Duration::from_secs(30)),
            None,
        )
        .expect("r >= 2");
        assert_eq!(out.cost, 2);
        assert!(out.proven_optimal);
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(), 2);
    }

    #[test]
    fn large_instance_returns_validated_incumbent_at_deadline() {
        let f = fft(64);
        let deadline = Duration::from_millis(200);
        let started = Instant::now();
        let out = anytime_prbp(&f.dag, 8, &AnytimeConfig::new(deadline), None).expect("r >= 2");
        // Generous slack: the contract is "within one expansion batch of the
        // deadline", not hard real-time.
        assert!(started.elapsed() < deadline + Duration::from_secs(5));
        let replayed = out.trace.validate(&f.dag, PrbpConfig::new(8)).unwrap();
        assert_eq!(replayed, out.cost);
        assert!(out.bound <= out.cost);
        assert!(out.bound > 0);
    }

    #[test]
    fn r_below_two_is_rejected() {
        let f = fig1_full();
        assert!(anytime_prbp(
            &f.dag,
            1,
            &AnytimeConfig::new(Duration::from_millis(10)),
            None
        )
        .is_none());
        assert!(matches!(
            anytime_prbp_result(
                &f.dag,
                1,
                &AnytimeConfig::new(Duration::from_millis(10)),
                None
            ),
            Err(AnytimeError::SmallR { r: 1 })
        ));
    }

    #[test]
    fn fail_fast_reports_deadline_no_incumbent_on_an_expired_budget() {
        // A zero deadline stops the beam at its very first level check, so
        // with `fail_fast` no incumbent can exist — deterministically, on
        // any machine.
        let f = fft(64);
        let config = AnytimeConfig {
            fail_fast: true,
            ..AnytimeConfig::new(Duration::ZERO)
        };
        assert!(matches!(
            anytime_prbp_result(&f.dag, 8, &config, None),
            Err(AnytimeError::DeadlineNoIncumbent)
        ));
        // Without fail_fast the same budget still yields a full validated
        // schedule (the greedy completion path).
        let out = anytime_prbp(&f.dag, 8, &AnytimeConfig::new(Duration::ZERO), None)
            .expect("greedy completion synthesises an incumbent");
        assert_eq!(
            out.trace.validate(&f.dag, PrbpConfig::new(8)).unwrap(),
            out.cost
        );
    }
}

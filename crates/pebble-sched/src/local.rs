//! Local-search refinement of a schedule.
//!
//! The search state is a *compute order* (the sequence in which the nodes are
//! completed); two move kinds are explored:
//!
//! * **eviction re-decision** — re-run the greedy executor on the same order
//!   with every shipped [`EvictionPolicy`](crate::policy::EvictionPolicy) and
//!   keep the cheapest result;
//! * **segment re-ordering** — move a contiguous segment of the order to a
//!   different position (seeded, deterministic), keeping the proposal only if
//!   the new order is still topological.
//!
//! Every proposal is *executed through the game simulator* (the greedy
//! executor builds its trace against a live game) and accepted only when the
//! replayed, validated cost strictly decreases — costs are never extrapolated
//! from the order alone.

use crate::greedy::greedy_prbp;
use crate::order;
use crate::policy::all_policies;
use pebble_dag::{topo, Dag, NodeId};
use pebble_game::moves::PrbpMove;
use pebble_game::trace::PrbpTrace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters for [`local_search_prbp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchConfig {
    /// Number of segment-move proposals.
    pub iterations: usize,
    /// RNG seed (the search is fully deterministic for a given seed).
    pub seed: u64,
    /// Maximum length of a moved segment.
    pub max_segment: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            iterations: 200,
            seed: 0x5EED,
            max_segment: 64,
        }
    }
}

/// Recover the compute order of a PRBP trace: sources (in id order) followed
/// by the non-source nodes in the order they became fully computed. Lets the
/// local search refine the output of any scheduler, including the beam.
///
/// Returns `None` when the trace is malformed for this DAG: either it does
/// not complete every node, or it contains more `PartialCompute` moves into
/// some node than that node has in-edges. (Both cases used to be guarded by
/// `debug_assert!` only, so a release build silently returned a truncated
/// order — or wrapped the in-degree counter around — instead of failing.)
pub fn compute_order_of_trace(dag: &Dag, trace: &PrbpTrace) -> Option<Vec<NodeId>> {
    let n = dag.node_count();
    let mut unmarked_in: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId::from_index(i)) as u32)
        .collect();
    let mut order: Vec<NodeId> = dag.nodes().filter(|&v| dag.is_source(v)).collect();
    for mv in &trace.moves {
        if let PrbpMove::PartialCompute { to, .. } = *mv {
            let left = unmarked_in[to.index()].checked_sub(1)?;
            unmarked_in[to.index()] = left;
            if left == 0 {
                order.push(to);
            }
        }
    }
    if order.len() != n {
        return None;
    }
    Some(order)
}

/// Greedily evaluate `order` with every shipped eviction policy; returns the
/// cheapest `(policy name, trace, validated cost)`.
fn best_policy(dag: &Dag, r: usize, ord: &[NodeId]) -> Option<(&'static str, PrbpTrace, usize)> {
    let mut best: Option<(&'static str, PrbpTrace, usize)> = None;
    for mut p in all_policies() {
        let trace = greedy_prbp(dag, r, ord, p.as_mut())?;
        let cost = trace.io_cost();
        if best.as_ref().map_or(true, |&(_, _, c)| cost < c) {
            best = Some((p.name(), trace, cost));
        }
    }
    best
}

/// Returns `true` if every edge of `dag` is oriented forward under `pos`.
fn is_topological(dag: &Dag, pos: &[usize]) -> bool {
    dag.edges().all(|e| {
        let (u, v) = dag.edge_endpoints(e);
        pos[u.index()] < pos[v.index()]
    })
}

/// Move the segment `v[start .. start + len]` so that it begins at index
/// `dest` of the resulting vector, preserving the relative order of all other
/// elements. `dest` ranges over `0 ..= v.len() - len`; `dest == start` is a
/// no-op.
///
/// Implemented as a single slice rotation: `O(window)` time, no allocation.
/// (The previous implementation drained the segment and re-inserted it
/// element-by-element at `dest` *relative to the drained vector*, which both
/// cost `O(n · len)` and, for `dest > start`, landed the segment `len`
/// positions past the documented destination.)
fn move_segment<T>(v: &mut [T], start: usize, len: usize, dest: usize) {
    if dest < start {
        v[dest..start + len].rotate_right(len);
    } else {
        v[start..dest + len].rotate_left(len);
    }
}

/// Refine the schedule starting from `initial_order` (defaults to the natural
/// order when `None`): pick the best eviction policy for the order, then
/// propose seeded segment moves, re-running the greedy executor on every
/// topologically valid proposal and keeping only strictly cheaper validated
/// results. Returns the refined trace and its cost; `None` for `r < 2` or
/// when `initial_order` is not a topological order covering every node
/// exactly once.
pub fn local_search_prbp(
    dag: &Dag,
    r: usize,
    initial_order: Option<Vec<NodeId>>,
    cfg: LocalSearchConfig,
) -> Option<(PrbpTrace, usize)> {
    if let Some(ord) = &initial_order {
        // Validate here, in release too: a bad caller-supplied order would
        // otherwise only surface as a panic inside the greedy executor.
        if !topo::is_topological_order(dag, ord) {
            return None;
        }
    }
    let mut ord = initial_order.unwrap_or_else(|| order::natural(dag));
    let (_, mut best_trace, mut best_cost) = best_policy(dag, r, &ord)?;

    let n = ord.len();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut pos = vec![0usize; n];
    for _ in 0..cfg.iterations {
        if n < 3 {
            break;
        }
        let len = rng.gen_range(1..=cfg.max_segment.clamp(1, n - 1));
        // Inclusive upper end: a segment may start at (or be moved to) the
        // very tail of the order, position n - len.
        let start = rng.gen_range(0..=n - len);
        let dest = rng.gen_range(0..=n - len);
        if dest == start {
            continue;
        }
        // Move ord[start .. start+len] so that it begins at `dest`.
        let mut cand = ord.clone();
        move_segment(&mut cand, start, len, dest);
        for (i, v) in cand.iter().enumerate() {
            pos[v.index()] = i;
        }
        if !is_topological(dag, &pos) {
            continue;
        }
        // Re-decide the eviction policy on the proposed order, accepting
        // only a strict, simulator-validated improvement.
        let Some((_, trace, cost)) = best_policy(dag, r, &cand) else {
            continue;
        };
        if cost < best_cost {
            best_cost = cost;
            best_trace = trace;
            ord = cand;
        }
    }
    Some((best_trace, best_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_prbp, BeamConfig};
    use pebble_dag::generators::{fft, fig1_full, random_layered, RandomLayeredConfig};
    use pebble_game::prbp::PrbpConfig;

    #[test]
    fn compute_order_roundtrips_through_beam_traces() {
        let dag = fft(8).dag;
        let trace = beam_prbp(&dag, 4, BeamConfig::adaptive()).unwrap();
        let ord = compute_order_of_trace(&dag, &trace).expect("beam traces are complete");
        assert_eq!(ord.len(), dag.node_count());
        assert!(topo::is_topological_order(&dag, &ord));
    }

    #[test]
    fn compute_order_rejects_incomplete_and_malformed_traces() {
        // Regression: the pre-fix code only `debug_assert`ed completeness, so
        // a release build returned a silently truncated order for incomplete
        // traces — and wrapped `unmarked_in` around on traces with repeated
        // aggregations into the same node.
        let dag = fft(8).dag;
        let full = beam_prbp(&dag, 4, BeamConfig::adaptive()).unwrap();

        // Incomplete: drop the tail of a valid trace.
        let cut = PrbpTrace::from_moves(full.moves[..full.moves.len() / 2].to_vec());
        assert_eq!(compute_order_of_trace(&dag, &cut), None);

        // Malformed: aggregate the same edge more often than the target's
        // in-degree allows; the decrement must not wrap.
        let (u, v) = dag.edge_endpoints(dag.edges().next().unwrap());
        let dup = PrbpTrace::from_moves(vec![
            PrbpMove::PartialCompute { from: u, to: v };
            dag.in_degree(v) + 1
        ]);
        assert_eq!(compute_order_of_trace(&dag, &dup), None);
    }

    #[test]
    fn move_segment_pins_final_positions() {
        // Documented semantics: the segment begins at `dest` in the result.
        let mut v = vec![0, 1, 2, 3, 4, 5];
        move_segment(&mut v, 1, 2, 3); // move [1, 2] so it begins at index 3
        assert_eq!(v, vec![0, 3, 4, 1, 2, 5]);

        let mut v = vec![0, 1, 2, 3, 4, 5];
        move_segment(&mut v, 3, 2, 1); // move [3, 4] so it begins at index 1
        assert_eq!(v, vec![0, 3, 4, 1, 2, 5]);

        // Extremes: to the very front and the very tail.
        let mut v = vec![0, 1, 2, 3, 4];
        move_segment(&mut v, 2, 2, 0);
        assert_eq!(v, vec![2, 3, 0, 1, 4]);
        let mut v = vec![0, 1, 2, 3, 4];
        move_segment(&mut v, 0, 2, 3);
        assert_eq!(v, vec![2, 3, 4, 0, 1]);

        // `dest == start` is a no-op.
        let mut v = vec![0, 1, 2, 3];
        move_segment(&mut v, 1, 2, 1);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn local_search_rejects_invalid_initial_orders() {
        let dag = fig1_full().dag;
        let mut rev = order::natural(&dag);
        rev.reverse();
        assert!(local_search_prbp(&dag, 3, Some(rev), LocalSearchConfig::default()).is_none());
    }

    #[test]
    fn local_search_never_worsens_and_validates() {
        for seed in 0..3 {
            let dag = random_layered(RandomLayeredConfig {
                layers: 5,
                width: 8,
                max_in_degree: 3,
                seed,
            });
            let r = 5;
            let (_, baseline, base_cost) = best_policy(&dag, r, &order::natural(&dag)).unwrap();
            assert_eq!(
                baseline.validate(&dag, PrbpConfig::new(r)).unwrap(),
                base_cost
            );
            let cfg = LocalSearchConfig {
                iterations: 40,
                ..Default::default()
            };
            let (trace, cost) = local_search_prbp(&dag, r, None, cfg).unwrap();
            assert!(cost <= base_cost, "{cost} > {base_cost}");
            assert_eq!(trace.validate(&dag, PrbpConfig::new(r)).unwrap(), cost);
        }
    }

    #[test]
    fn local_search_is_deterministic() {
        let dag = fig1_full().dag;
        let cfg = LocalSearchConfig::default();
        let a = local_search_prbp(&dag, 3, None, cfg).unwrap();
        let b = local_search_prbp(&dag, 3, None, cfg).unwrap();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn rejects_tiny_cache() {
        let dag = fig1_full().dag;
        assert!(local_search_prbp(&dag, 1, None, LocalSearchConfig::default()).is_none());
    }
}

//! Pluggable eviction policies for the greedy schedulers.
//!
//! When a scheduler needs a free fast-memory slot it collects every currently
//! evictable red pebble into a list of [`Candidate`]s and asks an
//! [`EvictionPolicy`] to pick the victim. The policy sees, per candidate, the
//! next position in the compute order at which the value is consumed again
//! (Belady's clairvoyant signal, precomputed by
//! [`pebble_dag::liveness::NextUse`]), the last step that touched it, the
//! number of remaining consumers, and whether the eviction is free or costs a
//! save.

use pebble_dag::NodeId;

/// One evictable red pebble, as presented to an [`EvictionPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The node holding the red pebble.
    pub node: NodeId,
    /// Position in the compute order of the next consumer of this value, or
    /// [`pebble_dag::liveness::NEVER`] if no consumer remains.
    pub next_use: usize,
    /// Monotone step counter value of the last time this value was touched
    /// (loaded, computed into, or read by a compute).
    pub last_use: usize,
    /// Number of remaining consumers (uncomputed successors in RBP, unmarked
    /// out-edges in PRBP).
    pub remaining_consumers: usize,
    /// `true` if evicting this pebble costs no I/O (the value is dead or a
    /// slow-memory copy already exists); `false` if a save must be paid
    /// first.
    pub free: bool,
}

/// How a greedy scheduler chooses which red pebble to evict.
///
/// # Contract
///
/// [`EvictionPolicy::choose`] is called with a non-empty candidate slice and
/// must return the index of the victim within that slice. The scheduler
/// guarantees every candidate is legally evictable at the moment of the call
/// (pinned values — the inputs and target of the move being scheduled — are
/// never offered). A policy never affects the *validity* of the schedule,
/// only its cost: whatever it picks, the scheduler pays the required save and
/// emits simulator-checked moves. Implementations must be deterministic for a
/// given candidate slice (benchmark baselines replay schedules bit-for-bit);
/// break ties on [`Candidate::node`].
pub trait EvictionPolicy {
    /// Short stable identifier used in experiment and benchmark output.
    fn name(&self) -> &'static str;

    /// Index of the victim within `candidates` (non-empty).
    fn choose(&mut self, candidates: &[Candidate]) -> usize;
}

/// Belady's rule: evict the value whose next use lies furthest in the future.
/// Free evictions win among equals, node id breaks remaining ties.
#[derive(Debug, Clone, Copy, Default)]
pub struct FurthestInFuture;

impl EvictionPolicy for FurthestInFuture {
    fn name(&self) -> &'static str {
        "belady"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> usize {
        pick(candidates, |c| {
            (c.next_use, c.free as usize, usize::MAX - c.node.index())
        })
    }
}

/// Least-recently-used: evict the value untouched for the longest time. The
/// classic online policy, here as the reference point Belady is compared
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> usize {
        pick(candidates, |c| {
            (
                usize::MAX - c.last_use,
                c.free as usize,
                usize::MAX - c.node.index(),
            )
        })
    }
}

/// Evict the value with the fewest remaining consumers (dead values first),
/// preferring free evictions among equals.
#[derive(Debug, Clone, Copy, Default)]
pub struct FewestRemainingConsumers;

impl EvictionPolicy for FewestRemainingConsumers {
    fn name(&self) -> &'static str {
        "fewest-consumers"
    }

    fn choose(&mut self, candidates: &[Candidate]) -> usize {
        pick(candidates, |c| {
            (
                usize::MAX - c.remaining_consumers,
                c.free as usize,
                usize::MAX - c.node.index(),
            )
        })
    }
}

/// Index of the candidate maximising `key` (ties resolved by the key itself;
/// all shipped keys end in a strict node-id component).
fn pick<K: Ord>(candidates: &[Candidate], key: impl Fn(&Candidate) -> K) -> usize {
    debug_assert!(!candidates.is_empty());
    let mut best = 0;
    for i in 1..candidates.len() {
        if key(&candidates[i]) > key(&candidates[best]) {
            best = i;
        }
    }
    best
}

/// The shipped policies, in stable output order. Fresh boxes per call: the
/// policies are stateless today, but the trait allows stateful ones.
pub fn all_policies() -> Vec<Box<dyn EvictionPolicy>> {
    vec![
        Box::new(FurthestInFuture),
        Box::new(Lru),
        Box::new(FewestRemainingConsumers),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::liveness::NEVER;

    fn cand(node: usize, next_use: usize, last_use: usize, rem: usize, free: bool) -> Candidate {
        Candidate {
            node: NodeId::from_index(node),
            next_use,
            last_use,
            remaining_consumers: rem,
            free,
        }
    }

    #[test]
    fn belady_picks_furthest_next_use() {
        let cs = [cand(0, 5, 0, 1, false), cand(1, 9, 0, 1, false)];
        assert_eq!(FurthestInFuture.choose(&cs), 1);
        // Dead values (NEVER) beat everything.
        let cs = [cand(0, NEVER, 0, 0, true), cand(1, 9, 0, 1, false)];
        assert_eq!(FurthestInFuture.choose(&cs), 0);
    }

    #[test]
    fn belady_prefers_free_on_ties_and_low_ids_last() {
        let cs = [cand(3, 7, 0, 1, false), cand(1, 7, 0, 1, true)];
        assert_eq!(FurthestInFuture.choose(&cs), 1);
        let cs = [cand(3, 7, 0, 1, true), cand(1, 7, 0, 1, true)];
        assert_eq!(
            FurthestInFuture.choose(&cs),
            1,
            "smallest node id wins ties"
        );
    }

    #[test]
    fn lru_picks_oldest() {
        let cs = [cand(0, 5, 10, 1, false), cand(1, 5, 3, 1, false)];
        assert_eq!(Lru.choose(&cs), 1);
    }

    #[test]
    fn fewest_consumers_picks_dead_first() {
        let cs = [cand(0, 5, 0, 2, false), cand(1, 5, 0, 0, true)];
        assert_eq!(FewestRemainingConsumers.choose(&cs), 1);
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<_> = all_policies().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["belady", "lru", "fewest-consumers"]);
    }
}

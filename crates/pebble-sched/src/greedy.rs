//! Greedy topological schedulers: process the nodes in a fixed compute
//! order, loading inputs on demand and evicting through a pluggable
//! [`EvictionPolicy`].
//!
//! Every move is pushed through the validated trace builders of
//! `pebble-game`, so an internal inconsistency fails at the offending move;
//! callers still re-validate the finished pebbling from scratch before
//! reporting its cost (see [`crate::report`]).
//!
//! The executors come in two forms: [`greedy_prbp`] / [`greedy_rbp`] collect
//! the moves into a trace, while [`greedy_prbp_into`] / [`greedy_rbp_into`]
//! stream every validated move into a caller-supplied
//! [`MoveSink`] — the memory-bounded path that lets
//! million-node DAGs be scheduled and certified without ever materialising a
//! move vector.
//!
//! The caller-supplied compute order is validated up-front (`O(n + m)`); a
//! non-topological or incomplete order returns `None` in release builds too,
//! instead of tripping an assertion deep inside the trace builder.
//!
//! Complexity: `O(n + m)` for the order and liveness precomputation plus
//! `O(r)` per eviction, so instances with 10⁴–10⁵ nodes schedule in
//! milliseconds — far beyond the reach of the exact solvers.

use crate::policy::{Candidate, EvictionPolicy};
use pebble_dag::liveness::NextUse;
use pebble_dag::{topo, Dag, NodeId};
use pebble_game::moves::{PrbpMove, RbpMove};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::sink::MoveSink;
use pebble_game::trace::{PrbpTrace, RbpTrace};
use pebble_game::{PrbpBuilder, RbpBuilder};

/// O(1) membership tracking of the currently red nodes, so eviction
/// candidates are collected in `O(r)` instead of `O(n)`.
struct RedSet {
    members: Vec<NodeId>,
    pos: Vec<u32>,
}

const NOT_RED: u32 = u32::MAX;

impl RedSet {
    fn new(n: usize) -> Self {
        RedSet {
            members: Vec::new(),
            pos: vec![NOT_RED; n],
        }
    }

    fn insert(&mut self, v: NodeId) {
        if self.pos[v.index()] == NOT_RED {
            self.pos[v.index()] = self.members.len() as u32;
            self.members.push(v);
        }
    }

    fn remove(&mut self, v: NodeId) {
        let p = self.pos[v.index()];
        debug_assert_ne!(p, NOT_RED);
        let last = *self.members.last().expect("non-empty");
        self.members.swap_remove(p as usize);
        self.pos[last.index()] = p;
        self.pos[v.index()] = NOT_RED;
    }

    fn contains(&self, v: NodeId) -> bool {
        self.pos[v.index()] != NOT_RED
    }

    fn len(&self) -> usize {
        self.members.len()
    }
}

/// Schedule `dag` in PRBP with cache size `r`, processing the nodes of
/// `order` (a topological order covering every node) and evicting through
/// `policy`. Works for any `r ≥ 2`; returns `None` below that, and `None`
/// when `order` is not a topological order covering every node exactly once.
///
/// The in-edges of each node are aggregated one at a time, so at most two
/// pebbles (the current input and the accumulator) are ever pinned.
pub fn greedy_prbp(
    dag: &Dag,
    r: usize,
    order: &[NodeId],
    policy: &mut dyn EvictionPolicy,
) -> Option<PrbpTrace> {
    greedy_prbp_into(dag, r, order, policy, PrbpTrace::new()).map(|(trace, _)| trace)
}

/// Streaming form of [`greedy_prbp`]: every validated move is forwarded to
/// `sink` instead of being collected, so the executor runs in `O(n + m)`
/// memory regardless of how many moves the schedule contains. Returns the
/// sink and the executor's I/O cost, or `None` under the same conditions as
/// [`greedy_prbp`] (`r < 2`, invalid order).
pub fn greedy_prbp_into<S: MoveSink<PrbpMove>>(
    dag: &Dag,
    r: usize,
    order: &[NodeId],
    policy: &mut dyn EvictionPolicy,
    sink: S,
) -> Option<(S, usize)> {
    if r < 2 {
        return None;
    }
    // Validate up-front: external callers (the CLI, refinement loops) hand in
    // arbitrary orders, and a non-topological one would only surface as a
    // builder `.expect(...)` panic deep inside the executor.
    if !topo::is_topological_order(dag, order) {
        return None;
    }
    let n = dag.node_count();
    let mut next_use = NextUse::new(dag, order);
    let mut last_use = vec![0usize; n];
    let mut red = RedSet::new(n);
    let mut builder = PrbpBuilder::with_sink(dag, PrbpConfig::new(r), sink);
    let mut clock = 0usize;
    let mut candidates: Vec<Candidate> = Vec::with_capacity(r);

    for (t, &v) in order.iter().enumerate() {
        if dag.is_source(v) {
            continue;
        }
        for &(u, _) in dag.in_edges(v) {
            clock += 1;
            let mut needed = 0;
            if !red.contains(u) {
                needed += 1;
            }
            if !red.contains(v) {
                needed += 1;
            }
            while red.len() + needed > r {
                candidates.clear();
                for &w in &red.members {
                    if w == u || w == v {
                        continue;
                    }
                    let game = builder.game();
                    let remaining = game.unmarked_out_degree(w);
                    let dark = game.pebble_state(w) == pebble_game::PebbleState::DarkRed;
                    let free = !dark || (remaining == 0 && !dag.is_sink(w));
                    candidates.push(Candidate {
                        node: w,
                        // A value with no unmarked out-edge is dead even if
                        // its last consumer sits at the current position, so
                        // the cursor-based signal (which cannot look inside
                        // position t) is overridden to NEVER.
                        next_use: if remaining == 0 {
                            pebble_dag::liveness::NEVER
                        } else {
                            next_use.next_use_at(w, t)
                        },
                        last_use: last_use[w.index()],
                        remaining_consumers: remaining,
                        free,
                    });
                }
                let victim = candidates[policy.choose(&candidates)].node;
                builder.evict(victim).expect("victim is evictable");
                red.remove(victim);
            }
            if !red.contains(u) {
                builder.ensure_red(u).expect("u has a blue copy");
                red.insert(u);
            }
            if !red.contains(v) {
                red.insert(v);
            }
            builder
                .push(PrbpMove::PartialCompute { from: u, to: v })
                .expect("edge aggregation is legal");
            last_use[u.index()] = clock;
            last_use[v.index()] = clock;
        }
        if dag.is_sink(v) {
            builder.push(PrbpMove::Save(v)).expect("sink is dark red");
            builder.push(PrbpMove::Delete(v)).expect("light red delete");
            red.remove(v);
        }
    }
    let (sink, game) = builder.finish();
    debug_assert!(game.is_terminal());
    Some((sink, game.io_cost()))
}

/// Schedule `dag` in RBP with cache size `r`, processing the nodes of
/// `order` and evicting through `policy`. RBP requires all inputs of a node
/// to be red simultaneously, so this needs `r ≥ Δ_in + 1`; returns `None`
/// below that, and `None` when `order` is not a topological order covering
/// every node exactly once.
pub fn greedy_rbp(
    dag: &Dag,
    r: usize,
    order: &[NodeId],
    policy: &mut dyn EvictionPolicy,
) -> Option<RbpTrace> {
    greedy_rbp_into(dag, r, order, policy, RbpTrace::new()).map(|(trace, _)| trace)
}

/// Streaming form of [`greedy_rbp`]: every validated move is forwarded to
/// `sink` instead of being collected. Returns the sink and the executor's
/// I/O cost, or `None` under the same conditions as [`greedy_rbp`].
pub fn greedy_rbp_into<S: MoveSink<RbpMove>>(
    dag: &Dag,
    r: usize,
    order: &[NodeId],
    policy: &mut dyn EvictionPolicy,
    sink: S,
) -> Option<(S, usize)> {
    if r < dag.max_in_degree() + 1 {
        return None;
    }
    if !topo::is_topological_order(dag, order) {
        return None;
    }
    let n = dag.node_count();
    let mut next_use = NextUse::new(dag, order);
    let mut last_use = vec![0usize; n];
    let mut pinned = vec![false; n];
    let mut red = RedSet::new(n);
    // Uncomputed successors per node, maintained incrementally so eviction
    // candidates are scored in O(1) each (keeping evictions at O(r) total).
    let mut remaining: Vec<u32> = dag.nodes().map(|v| dag.out_degree(v) as u32).collect();
    let mut builder = RbpBuilder::with_sink(dag, RbpConfig::new(r), sink);
    let mut clock = 0usize;
    let mut candidates: Vec<Candidate> = Vec::with_capacity(r);

    for (t, &v) in order.iter().enumerate() {
        if dag.is_source(v) {
            continue;
        }
        clock += 1;
        let mut needed = 1; // the slot for v itself
        for &(u, _) in dag.in_edges(v) {
            pinned[u.index()] = true;
            if !red.contains(u) {
                needed += 1;
            }
        }
        while red.len() + needed > r {
            candidates.clear();
            for &w in &red.members {
                if pinned[w.index()] || w == v {
                    continue;
                }
                let rem = remaining[w.index()] as usize;
                let free = rem == 0 || builder.game().has_blue(w);
                candidates.push(Candidate {
                    node: w,
                    // Dead values report NEVER: the cursor-based signal
                    // cannot see that a use at the current position t was
                    // already consumed.
                    next_use: if rem == 0 {
                        pebble_dag::liveness::NEVER
                    } else {
                        next_use.next_use_at(w, t)
                    },
                    last_use: last_use[w.index()],
                    remaining_consumers: rem,
                    free,
                });
            }
            let victim = candidates[policy.choose(&candidates)].node;
            builder.evict(victim).expect("victim is evictable");
            red.remove(victim);
        }
        for &(u, _) in dag.in_edges(v) {
            if !red.contains(u) {
                builder.ensure_red(u).expect("u has a blue copy");
                red.insert(u);
            }
            last_use[u.index()] = clock;
        }
        builder.push(RbpMove::Compute(v)).expect("inputs are red");
        red.insert(v);
        last_use[v.index()] = clock;
        for &(u, _) in dag.in_edges(v) {
            pinned[u.index()] = false;
            remaining[u.index()] -= 1;
        }
        if dag.is_sink(v) {
            builder.push(RbpMove::Save(v)).expect("sink is red");
            builder.push(RbpMove::Delete(v)).expect("red delete");
            red.remove(v);
        }
    }
    let (sink, game) = builder.finish();
    debug_assert!(game.is_terminal());
    Some((sink, game.io_cost()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order;
    use crate::policy::{all_policies, FurthestInFuture};
    use pebble_dag::generators::{
        binary_tree, fft, fig1_full, matmul, random_layered, RandomLayeredConfig,
    };

    fn prbp_cost(dag: &Dag, r: usize, ord: &[NodeId], policy: &mut dyn EvictionPolicy) -> usize {
        let trace = greedy_prbp(dag, r, ord, policy).expect("schedulable");
        trace
            .validate(dag, PrbpConfig::new(r))
            .expect("valid trace")
    }

    #[test]
    fn prbp_greedy_valid_on_structured_dags_for_all_policies() {
        for dag in [
            fig1_full().dag,
            binary_tree(4),
            fft(16).dag,
            matmul(3, 3, 3).dag,
        ] {
            let ord = order::natural(&dag);
            for mut p in all_policies() {
                let cost = prbp_cost(&dag, 3, &ord, p.as_mut());
                assert!(cost >= dag.trivial_cost());
            }
        }
    }

    #[test]
    fn rbp_greedy_valid_and_capacity_gated() {
        let mm = matmul(3, 3, 3);
        let ord = order::natural(&mm.dag);
        assert!(greedy_rbp(&mm.dag, 3, &ord, &mut FurthestInFuture).is_none());
        let trace = greedy_rbp(
            &mm.dag,
            mm.dag.max_in_degree() + 2,
            &ord,
            &mut FurthestInFuture,
        )
        .unwrap();
        let cost = trace
            .validate(&mm.dag, RbpConfig::new(mm.dag.max_in_degree() + 2))
            .unwrap();
        assert!(cost >= mm.dag.trivial_cost());
    }

    #[test]
    fn prbp_greedy_works_at_minimum_cache() {
        let dag = fft(8).dag;
        let ord = order::natural(&dag);
        assert!(greedy_prbp(&dag, 1, &ord, &mut FurthestInFuture).is_none());
        let cost = prbp_cost(&dag, 2, &ord, &mut FurthestInFuture);
        assert!(cost >= dag.trivial_cost());
    }

    #[test]
    fn belady_beats_or_matches_lru_on_random_layered() {
        // Not a theorem, but a strong regression signal on this fixed seed
        // set: the clairvoyant policy should not lose to LRU.
        let mut belady_total = 0usize;
        let mut lru_total = 0usize;
        for seed in 0..4 {
            let dag = random_layered(RandomLayeredConfig {
                layers: 6,
                width: 12,
                max_in_degree: 3,
                seed,
            });
            let ord = order::natural(&dag);
            belady_total += prbp_cost(&dag, 6, &ord, &mut FurthestInFuture);
            lru_total += prbp_cost(&dag, 6, &ord, &mut crate::policy::Lru);
        }
        assert!(belady_total <= lru_total, "{belady_total} > {lru_total}");
    }

    #[test]
    fn ample_cache_reaches_trivial_cost() {
        let dag = binary_tree(4);
        let ord = order::natural(&dag);
        let cost = prbp_cost(&dag, 64, &ord, &mut FurthestInFuture);
        assert_eq!(cost, dag.trivial_cost());
    }

    #[test]
    fn non_topological_orders_are_rejected_not_panicked() {
        // Regression: these entry points used to guard the caller-supplied
        // order with `debug_assert!` only, so in release builds a reversed
        // order panicked via an `.expect(...)` deep inside the trace builder
        // instead of returning `None` as documented.
        let dag = fft(8).dag;
        let mut rev = order::natural(&dag);
        rev.reverse();
        assert!(greedy_prbp(&dag, 4, &rev, &mut FurthestInFuture).is_none());
        assert!(greedy_rbp(&dag, dag.max_in_degree() + 2, &rev, &mut FurthestInFuture).is_none());

        // Incomplete and duplicated orders are rejected the same way.
        let short = &order::natural(&dag)[1..];
        assert!(greedy_prbp(&dag, 4, short, &mut FurthestInFuture).is_none());
        let mut dup = order::natural(&dag);
        dup[0] = dup[1];
        assert!(greedy_prbp(&dag, 4, &dup, &mut FurthestInFuture).is_none());
    }

    #[test]
    fn streaming_executor_matches_the_materialised_trace() {
        use pebble_game::sink::CountingSink;
        let dag = fft(16).dag;
        let r = 4;
        let ord = order::natural(&dag);
        let trace = greedy_prbp(&dag, r, &ord, &mut FurthestInFuture).unwrap();
        let (sink, io) =
            greedy_prbp_into(&dag, r, &ord, &mut FurthestInFuture, CountingSink::new()).unwrap();
        assert_eq!(sink.moves, trace.len());
        assert_eq!(sink.io, trace.io_cost());
        assert_eq!(io, trace.io_cost());

        let rtrace = greedy_rbp(&dag, r + 4, &ord, &mut FurthestInFuture).unwrap();
        let (rsink, rio) = greedy_rbp_into(
            &dag,
            r + 4,
            &ord,
            &mut FurthestInFuture,
            CountingSink::new(),
        )
        .unwrap();
        assert_eq!(rsink.moves, rtrace.len());
        assert_eq!(rio, rtrace.io_cost());
    }

    #[test]
    fn dfs_order_beats_natural_on_matmul() {
        // The layer-major order opens every output accumulator long before
        // its products arrive; the DFS postorder computes each accumulator's
        // products right before aggregating them, which is what keeps the
        // accumulators resident. This locality win is why the DFS order is
        // part of the default portfolio.
        let mm = matmul(8, 8, 8);
        let r = 24;
        let nat = prbp_cost(&mm.dag, r, &order::natural(&mm.dag), &mut FurthestInFuture);
        let dfs = prbp_cost(
            &mm.dag,
            r,
            &order::dfs_postorder(&mm.dag),
            &mut FurthestInFuture,
        );
        assert!(dfs < nat, "dfs {dfs} >= natural {nat}");
    }
}

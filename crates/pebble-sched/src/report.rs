//! Certified schedule reports: a validated upper bound paired with the best
//! admissible lower bound, so every heuristic result carries a proof of how
//! far from optimal it can be.
//!
//! The upper bound always comes from *replaying the trace through the game
//! simulator* — never from a formula. The lower bounds are the admissible
//! initial-state bounds of `pebble-bounds` / `pebble-game`:
//!
//! * `load-count` — mandatory loads and saves
//!   ([`pebble_game::exact::LoadCountHeuristic`]); always evaluated, so the
//!   bound ladder is non-empty by construction;
//! * `s-dominator` — the dominator phase bound of Theorem 6.7
//!   ([`pebble_bounds::SDominatorHeuristic`]);
//! * `s-edge` — the S-edge-partition bound of Theorem 6.5
//!   ([`pebble_bounds::SEdgeHeuristic`]).
//!
//! Since each bound is admissible, `cost / best_lower_bound` certifies the
//! optimality gap: the schedule is provably within that factor of `OPT`.
//!
//! Two certification paths exist. [`certify_rbp`] / [`certify_prbp`] replay a
//! materialised trace. [`certify_greedy_rbp`] / [`certify_greedy_prbp`] run a
//! greedy executor with a *streaming* certifier sink: every emitted move is
//! replayed through an independent simulator as it is produced, so a
//! million-node DAG is scheduled, validated and certified in `O(n + m)`
//! memory without ever materialising a move vector.

use crate::greedy::{greedy_prbp_into, greedy_rbp_into};
use crate::policy::EvictionPolicy;
use pebble_bounds::{SDominatorHeuristic, SEdgeHeuristic};
use pebble_dag::{Dag, NodeId};
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound};
use pebble_game::prbp::{PrbpConfig, PrbpError, PrbpGame};
use pebble_game::rbp::{RbpConfig, RbpError, RbpGame};
use pebble_game::sink::MoveSink;
use pebble_game::trace::{PrbpTrace, RbpTrace, TraceError};
use serde::{Deserialize, Serialize};

/// One named admissible lower bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundValue {
    /// Stable bound identifier (`load-count`, `s-dominator`, `s-edge`).
    pub name: String,
    /// The bound on the optimal I/O cost.
    pub value: usize,
}

/// Which admissible lower bounds a certification evaluates.
///
/// `load-count` is always part of the ladder — it is linear-time and what
/// guarantees the ladder is never empty. The partition bounds (`s-dominator`,
/// `s-edge`) run max-flow computations per phase and are worth their cost on
/// small and mid-size instances, but not on million-node DAGs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSet {
    /// `load-count` only: linear time, the choice for very large instances.
    Fast,
    /// `load-count`, `s-dominator` and `s-edge`.
    Full,
}

impl BoundSet {
    /// Node-count threshold above which [`BoundSet::auto_for`] stops
    /// evaluating the (max-flow-based) partition bounds.
    pub const AUTO_FULL_LIMIT: usize = 100_000;

    /// [`BoundSet::Full`] for instances up to [`BoundSet::AUTO_FULL_LIMIT`]
    /// nodes, [`BoundSet::Fast`] beyond.
    pub fn auto_for(dag: &Dag) -> Self {
        if dag.node_count() <= Self::AUTO_FULL_LIMIT {
            BoundSet::Full
        } else {
            BoundSet::Fast
        }
    }
}

/// A certified schedule: validated cost, the lower-bound ladder, and the
/// resulting optimality gap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// `"rbp"` or `"prbp"`.
    pub model: String,
    /// Cache size the schedule was validated under.
    pub r: usize,
    /// Scheduler identifier (e.g. `greedy:belady:natural`).
    pub scheduler: String,
    /// Simulator-replayed I/O cost of the trace.
    pub cost: usize,
    /// Number of moves in the trace.
    pub moves: usize,
    /// Every admissible lower bound evaluated on the initial state. Reports
    /// built by this module always evaluate `load-count`, so the ladder is
    /// never empty.
    pub bounds: Vec<BoundValue>,
    /// The largest of [`ScheduleReport::bounds`] (still admissible).
    pub best_bound: usize,
}

impl ScheduleReport {
    /// The certified optimality gap `cost / best_bound`.
    ///
    /// Finite for every report built by the `certify_*` functions: the ladder
    /// always contains the `load-count` bound, and on any valid [`Dag`]
    /// (non-empty, no isolated nodes — hence at least one source and one
    /// sink) that bound is at least 2. `best_bound` is the plain maximum of
    /// the ladder — it is never floored or otherwise adjusted.
    pub fn gap(&self) -> f64 {
        self.cost as f64 / self.best_bound as f64
    }
}

/// Evaluate the lower-bound ladder through `eval` (which closes over the DAG,
/// the model and its configuration). The `load-count` entry is unconditional,
/// so the returned ladder is non-empty and `best` needs no fallback value —
/// an empty ladder is impossible by construction.
fn bound_ladder(set: BoundSet, mut eval: impl FnMut(&dyn LowerBound) -> usize) -> LadderOutcome {
    let load = BoundValue {
        name: LoadCountHeuristic.name().to_string(),
        value: eval(&LoadCountHeuristic),
    };
    let mut best = load.value;
    let mut bounds = vec![load];
    if set == BoundSet::Full {
        let dominator = SDominatorHeuristic::new();
        let edge = SEdgeHeuristic::new();
        for h in [&dominator as &dyn LowerBound, &edge] {
            let value = eval(h);
            best = best.max(value);
            bounds.push(BoundValue {
                name: h.name().to_string(),
                value,
            });
        }
    }
    LadderOutcome { bounds, best }
}

struct LadderOutcome {
    bounds: Vec<BoundValue>,
    best: usize,
}

/// Assemble the report shared by every certification path.
fn assemble(
    model: &str,
    r: usize,
    scheduler: String,
    cost: usize,
    moves: usize,
    ladder: LadderOutcome,
) -> ScheduleReport {
    ScheduleReport {
        model: model.to_string(),
        r,
        scheduler,
        cost,
        moves,
        bounds: ladder.bounds,
        best_bound: ladder.best,
    }
}

/// Validate `trace` on `dag` under RBP with cache `r` and pair the replayed
/// cost with the admissible lower bounds of `set`.
pub fn certify_rbp_with(
    dag: &Dag,
    r: usize,
    trace: &RbpTrace,
    scheduler: impl Into<String>,
    set: BoundSet,
) -> Result<ScheduleReport, TraceError<RbpError>> {
    let config = RbpConfig::new(r);
    let cost = trace.validate(dag, config)?;
    let ladder = bound_ladder(set, |h| exact::rbp_initial_bound(dag, config, h));
    Ok(assemble(
        "rbp",
        r,
        scheduler.into(),
        cost,
        trace.len(),
        ladder,
    ))
}

/// [`certify_rbp_with`] using the full bound ladder.
pub fn certify_rbp(
    dag: &Dag,
    r: usize,
    trace: &RbpTrace,
    scheduler: impl Into<String>,
) -> Result<ScheduleReport, TraceError<RbpError>> {
    certify_rbp_with(dag, r, trace, scheduler, BoundSet::Full)
}

/// Validate `trace` on `dag` under PRBP with cache `r` and pair the replayed
/// cost with the admissible lower bounds of `set`.
pub fn certify_prbp_with(
    dag: &Dag,
    r: usize,
    trace: &PrbpTrace,
    scheduler: impl Into<String>,
    set: BoundSet,
) -> Result<ScheduleReport, TraceError<PrbpError>> {
    let config = PrbpConfig::new(r);
    let cost = trace.validate(dag, config)?;
    let ladder = bound_ladder(set, |h| exact::prbp_initial_bound(dag, config, h));
    Ok(assemble(
        "prbp",
        r,
        scheduler.into(),
        cost,
        trace.len(),
        ladder,
    ))
}

/// [`certify_prbp_with`] with additional caller-supplied admissible bounds
/// appended to the ladder (e.g. the composable decomposition bound of
/// `pebble-bounds::compose`). The caller vouches for the admissibility of
/// `extra`; `best_bound` is the maximum over the combined ladder.
pub fn certify_prbp_with_bounds(
    dag: &Dag,
    r: usize,
    trace: &PrbpTrace,
    scheduler: impl Into<String>,
    set: BoundSet,
    extra: Vec<BoundValue>,
) -> Result<ScheduleReport, TraceError<PrbpError>> {
    let mut report = certify_prbp_with(dag, r, trace, scheduler, set)?;
    for bound in extra {
        report.best_bound = report.best_bound.max(bound.value);
        report.bounds.push(bound);
    }
    Ok(report)
}

/// [`certify_prbp_with`] using the full bound ladder.
pub fn certify_prbp(
    dag: &Dag,
    r: usize,
    trace: &PrbpTrace,
    scheduler: impl Into<String>,
) -> Result<ScheduleReport, TraceError<PrbpError>> {
    certify_prbp_with(dag, r, trace, scheduler, BoundSet::Full)
}

/// The lower-bound ladder of the *initial* PRBP state, without scheduling
/// anything: `(bounds, best_bound)`. What `prbp bound` prints.
pub fn prbp_bound_ladder(dag: &Dag, r: usize, set: BoundSet) -> (Vec<BoundValue>, usize) {
    let config = PrbpConfig::new(r);
    let ladder = bound_ladder(set, |h| exact::prbp_initial_bound(dag, config, h));
    (ladder.bounds, ladder.best)
}

/// The lower-bound ladder of the *initial* RBP state, without scheduling
/// anything: `(bounds, best_bound)`.
pub fn rbp_bound_ladder(dag: &Dag, r: usize, set: BoundSet) -> (Vec<BoundValue>, usize) {
    let config = RbpConfig::new(r);
    let ladder = bound_ladder(set, |h| exact::rbp_initial_bound(dag, config, h));
    (ladder.bounds, ladder.best)
}

/// A [`MoveSink`] that replays every visited move through an independent
/// simulator: the streaming equivalent of `trace.validate(..)`. The first
/// illegal move is remembered (with its index) and later moves are ignored.
struct ReplaySink<G, M, E> {
    game: G,
    moves: usize,
    failure: Option<TraceError<E>>,
    apply: fn(&mut G, M) -> Result<(), E>,
}

impl<G, M: std::fmt::Display + Copy, E> ReplaySink<G, M, E> {
    fn new(game: G, apply: fn(&mut G, M) -> Result<(), E>) -> Self {
        ReplaySink {
            game,
            moves: 0,
            failure: None,
            apply,
        }
    }
}

impl<G, M: std::fmt::Display + Copy, E> MoveSink<M> for ReplaySink<G, M, E> {
    fn record(&mut self, mv: M) {
        if self.failure.is_none() {
            if let Err(error) = (self.apply)(&mut self.game, mv) {
                self.failure = Some(TraceError::InvalidMove {
                    index: self.moves,
                    description: mv.to_string(),
                    error,
                });
            }
        }
        self.moves += 1;
    }
}

/// Run the greedy PRBP executor on `order`/`policy` and certify the result
/// through the streaming pipeline: every move is validated twice (by the
/// executor's own builder and by an independent replay simulator inside the
/// sink) and never stored. Returns `None` under the same conditions as
/// [`crate::greedy_prbp`] (`r < 2`, invalid order); `Err` if the replayed
/// pebbling is rejected, which would indicate an executor bug.
pub fn certify_greedy_prbp(
    dag: &Dag,
    r: usize,
    order: &[NodeId],
    policy: &mut dyn EvictionPolicy,
    scheduler: impl Into<String>,
    set: BoundSet,
) -> Option<Result<ScheduleReport, TraceError<PrbpError>>> {
    let config = PrbpConfig::new(r);
    let sink = ReplaySink::new(PrbpGame::new(dag, config), PrbpGame::apply);
    let (sink, _) = greedy_prbp_into(dag, r, order, policy, sink)?;
    if let Some(err) = sink.failure {
        return Some(Err(err));
    }
    if !sink.game.is_terminal() {
        return Some(Err(TraceError::NotTerminal));
    }
    let cost = sink.game.io_cost();
    let ladder = bound_ladder(set, |h| exact::prbp_initial_bound(dag, config, h));
    Some(Ok(assemble(
        "prbp",
        r,
        scheduler.into(),
        cost,
        sink.moves,
        ladder,
    )))
}

/// Run the greedy RBP executor on `order`/`policy` and certify the result
/// through the streaming pipeline. Returns `None` under the same conditions
/// as [`crate::greedy_rbp`] (`r < Δ_in + 1`, invalid order).
pub fn certify_greedy_rbp(
    dag: &Dag,
    r: usize,
    order: &[NodeId],
    policy: &mut dyn EvictionPolicy,
    scheduler: impl Into<String>,
    set: BoundSet,
) -> Option<Result<ScheduleReport, TraceError<RbpError>>> {
    let config = RbpConfig::new(r);
    let sink = ReplaySink::new(RbpGame::new(dag, config), RbpGame::apply);
    let (sink, _) = greedy_rbp_into(dag, r, order, policy, sink)?;
    if let Some(err) = sink.failure {
        return Some(Err(err));
    }
    if !sink.game.is_terminal() {
        return Some(Err(TraceError::NotTerminal));
    }
    let cost = sink.game.io_cost();
    let ladder = bound_ladder(set, |h| exact::rbp_initial_bound(dag, config, h));
    Some(Ok(assemble(
        "rbp",
        r,
        scheduler.into(),
        cost,
        sink.moves,
        ladder,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_prbp, BeamConfig};
    use crate::greedy::{greedy_prbp, greedy_rbp};
    use crate::order;
    use crate::policy::FurthestInFuture;
    use pebble_dag::generators::{fft, fig1_full};
    use pebble_game::exact::SearchConfig;

    #[test]
    fn prbp_report_brackets_the_exact_optimum() {
        let dag = fig1_full().dag;
        let r = 4;
        let trace = beam_prbp(&dag, r, BeamConfig::default()).unwrap();
        let report = certify_prbp(&dag, r, &trace, "beam:8").unwrap();
        let opt =
            exact::optimal_prbp_cost(&dag, PrbpConfig::new(r), SearchConfig::default()).unwrap();
        assert!(report.best_bound <= opt, "lower bound must be admissible");
        assert!(report.cost >= opt, "no heuristic beats the optimum");
        assert!(report.gap() >= 1.0);
        assert_eq!(report.model, "prbp");
        assert_eq!(report.bounds.len(), 3);
    }

    #[test]
    fn rbp_report_brackets_the_exact_optimum() {
        let dag = fig1_full().dag;
        let r = 4;
        let ord = order::natural(&dag);
        let trace = greedy_rbp(&dag, r, &ord, &mut FurthestInFuture).unwrap();
        let report = certify_rbp(&dag, r, &trace, "greedy:belady:natural").unwrap();
        let opt =
            exact::optimal_rbp_cost(&dag, RbpConfig::new(r), SearchConfig::default()).unwrap();
        assert!(report.best_bound <= opt);
        assert!(report.cost >= opt);
    }

    #[test]
    fn ladder_is_never_empty_and_best_bound_is_its_plain_maximum() {
        // Regression for the `.unwrap_or(0).max(1)` flooring: `best_bound`
        // must be exactly the maximum of the (non-empty) ladder, and the
        // ladder always starts with `load-count`, which on any valid DAG
        // (>= 1 source, >= 1 sink) is at least 2 — so `gap()` is finite
        // without any silent adjustment.
        let dag = fig1_full().dag;
        for set in [BoundSet::Fast, BoundSet::Full] {
            let trace = beam_prbp(&dag, 3, BeamConfig::adaptive()).unwrap();
            let report = certify_prbp_with(&dag, 3, &trace, "beam:1", set).unwrap();
            assert!(!report.bounds.is_empty());
            assert_eq!(report.bounds[0].name, "load-count");
            assert_eq!(
                report.best_bound,
                report.bounds.iter().map(|b| b.value).max().unwrap()
            );
            assert!(report.bounds[0].value >= 2);
            assert!(report.gap().is_finite());
        }
    }

    #[test]
    fn fast_and_full_ladders_agree_on_load_count() {
        let dag = fft(8).dag;
        let (fast, fast_best) = prbp_bound_ladder(&dag, 4, BoundSet::Fast);
        let (full, full_best) = prbp_bound_ladder(&dag, 4, BoundSet::Full);
        assert_eq!(fast.len(), 1);
        assert_eq!(full.len(), 3);
        assert_eq!(fast[0], full[0]);
        assert!(full_best >= fast_best);
        let (rfast, _) = rbp_bound_ladder(&dag, 8, BoundSet::Fast);
        assert_eq!(rfast[0].name, "load-count");
    }

    #[test]
    fn streaming_certification_matches_the_materialised_path() {
        let dag = fft(16).dag;
        let r = 6;
        let ord = order::dfs_postorder(&dag);
        let trace = greedy_prbp(&dag, r, &ord, &mut FurthestInFuture).unwrap();
        let via_trace = certify_prbp(&dag, r, &trace, "greedy:belady:dfs").unwrap();
        let via_stream = certify_greedy_prbp(
            &dag,
            r,
            &ord,
            &mut FurthestInFuture,
            "greedy:belady:dfs",
            BoundSet::Full,
        )
        .unwrap()
        .unwrap();
        assert_eq!(via_stream, via_trace);

        let rr = dag.max_in_degree() + 2;
        let rtrace = greedy_rbp(&dag, rr, &ord, &mut FurthestInFuture).unwrap();
        let rvia_trace = certify_rbp(&dag, rr, &rtrace, "greedy:belady:dfs").unwrap();
        let rvia_stream = certify_greedy_rbp(
            &dag,
            rr,
            &ord,
            &mut FurthestInFuture,
            "greedy:belady:dfs",
            BoundSet::Full,
        )
        .unwrap()
        .unwrap();
        assert_eq!(rvia_stream, rvia_trace);
    }

    #[test]
    fn streaming_certification_rejects_invalid_orders() {
        let dag = fft(8).dag;
        let mut rev = order::natural(&dag);
        rev.reverse();
        assert!(certify_greedy_prbp(
            &dag,
            4,
            &rev,
            &mut FurthestInFuture,
            "greedy",
            BoundSet::Fast
        )
        .is_none());
    }

    #[test]
    fn invalid_traces_are_rejected() {
        let dag = fig1_full().dag;
        let empty = PrbpTrace::new();
        assert!(certify_prbp(&dag, 4, &empty, "noop").is_err());
    }

    #[test]
    fn report_serialises() {
        let dag = fft(8).dag;
        let trace = beam_prbp(&dag, 4, BeamConfig::adaptive()).unwrap();
        let report = certify_prbp(&dag, 4, &trace, "beam:1").unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: ScheduleReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

//! Certified schedule reports: a validated upper bound paired with the best
//! admissible lower bound, so every heuristic result carries a proof of how
//! far from optimal it can be.
//!
//! The upper bound always comes from *replaying the trace through the game
//! simulator* — never from a formula. The lower bounds are the admissible
//! initial-state bounds of `pebble-bounds` / `pebble-game`:
//!
//! * `load-count` — mandatory loads and saves
//!   ([`pebble_game::exact::LoadCountHeuristic`]);
//! * `s-dominator` — the dominator phase bound of Theorem 6.7
//!   ([`pebble_bounds::SDominatorHeuristic`]);
//! * `s-edge` — the S-edge-partition bound of Theorem 6.5
//!   ([`pebble_bounds::SEdgeHeuristic`]).
//!
//! Since each bound is admissible, `cost / best_lower_bound` certifies the
//! optimality gap: the schedule is provably within that factor of `OPT`.

use pebble_bounds::{SDominatorHeuristic, SEdgeHeuristic};
use pebble_dag::Dag;
use pebble_game::exact::{self, LoadCountHeuristic, LowerBound};
use pebble_game::prbp::{PrbpConfig, PrbpError};
use pebble_game::rbp::{RbpConfig, RbpError};
use pebble_game::trace::{PrbpTrace, RbpTrace, TraceError};
use serde::{Deserialize, Serialize};

/// One named admissible lower bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundValue {
    /// Stable bound identifier (`load-count`, `s-dominator`, `s-edge`).
    pub name: String,
    /// The bound on the optimal I/O cost.
    pub value: usize,
}

/// A certified schedule: validated cost, the lower-bound ladder, and the
/// resulting optimality gap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// `"rbp"` or `"prbp"`.
    pub model: String,
    /// Cache size the schedule was validated under.
    pub r: usize,
    /// Scheduler identifier (e.g. `greedy:belady:natural`).
    pub scheduler: String,
    /// Simulator-replayed I/O cost of the trace.
    pub cost: usize,
    /// Number of moves in the trace.
    pub moves: usize,
    /// Every admissible lower bound evaluated on the initial state.
    pub bounds: Vec<BoundValue>,
    /// The largest of [`ScheduleReport::bounds`] (still admissible).
    pub best_bound: usize,
}

impl ScheduleReport {
    /// The certified optimality gap `cost / best_bound`. Always finite: every
    /// DAG has at least one source and one sink, so the load-count bound is
    /// at least 2.
    pub fn gap(&self) -> f64 {
        self.cost as f64 / self.best_bound as f64
    }
}

/// Validate `trace` on `dag` under RBP with cache `r` and pair the replayed
/// cost with the admissible lower bounds.
pub fn certify_rbp(
    dag: &Dag,
    r: usize,
    trace: &RbpTrace,
    scheduler: impl Into<String>,
) -> Result<ScheduleReport, TraceError<RbpError>> {
    let config = RbpConfig::new(r);
    let cost = trace.validate(dag, config)?;
    let bounds: Vec<BoundValue> = [
        &LoadCountHeuristic as &dyn LowerBound,
        &SDominatorHeuristic::new(),
        &SEdgeHeuristic::new(),
    ]
    .into_iter()
    .map(|h| BoundValue {
        name: h.name().to_string(),
        value: exact::rbp_initial_bound(dag, config, h),
    })
    .collect();
    let best_bound = bounds.iter().map(|b| b.value).max().unwrap_or(0).max(1);
    Ok(ScheduleReport {
        model: "rbp".to_string(),
        r,
        scheduler: scheduler.into(),
        cost,
        moves: trace.len(),
        bounds,
        best_bound,
    })
}

/// Validate `trace` on `dag` under PRBP with cache `r` and pair the replayed
/// cost with the admissible lower bounds.
pub fn certify_prbp(
    dag: &Dag,
    r: usize,
    trace: &PrbpTrace,
    scheduler: impl Into<String>,
) -> Result<ScheduleReport, TraceError<PrbpError>> {
    let config = PrbpConfig::new(r);
    let cost = trace.validate(dag, config)?;
    let bounds: Vec<BoundValue> = [
        &LoadCountHeuristic as &dyn LowerBound,
        &SDominatorHeuristic::new(),
        &SEdgeHeuristic::new(),
    ]
    .into_iter()
    .map(|h| BoundValue {
        name: h.name().to_string(),
        value: exact::prbp_initial_bound(dag, config, h),
    })
    .collect();
    let best_bound = bounds.iter().map(|b| b.value).max().unwrap_or(0).max(1);
    Ok(ScheduleReport {
        model: "prbp".to_string(),
        r,
        scheduler: scheduler.into(),
        cost,
        moves: trace.len(),
        bounds,
        best_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{beam_prbp, BeamConfig};
    use crate::greedy::greedy_rbp;
    use crate::order;
    use crate::policy::FurthestInFuture;
    use pebble_dag::generators::{fft, fig1_full};
    use pebble_game::exact::SearchConfig;

    #[test]
    fn prbp_report_brackets_the_exact_optimum() {
        let dag = fig1_full().dag;
        let r = 4;
        let trace = beam_prbp(&dag, r, BeamConfig::default()).unwrap();
        let report = certify_prbp(&dag, r, &trace, "beam:8").unwrap();
        let opt =
            exact::optimal_prbp_cost(&dag, PrbpConfig::new(r), SearchConfig::default()).unwrap();
        assert!(report.best_bound <= opt, "lower bound must be admissible");
        assert!(report.cost >= opt, "no heuristic beats the optimum");
        assert!(report.gap() >= 1.0);
        assert_eq!(report.model, "prbp");
        assert_eq!(report.bounds.len(), 3);
    }

    #[test]
    fn rbp_report_brackets_the_exact_optimum() {
        let dag = fig1_full().dag;
        let r = 4;
        let ord = order::natural(&dag);
        let trace = greedy_rbp(&dag, r, &ord, &mut FurthestInFuture).unwrap();
        let report = certify_rbp(&dag, r, &trace, "greedy:belady:natural").unwrap();
        let opt =
            exact::optimal_rbp_cost(&dag, RbpConfig::new(r), SearchConfig::default()).unwrap();
        assert!(report.best_bound <= opt);
        assert!(report.cost >= opt);
    }

    #[test]
    fn invalid_traces_are_rejected() {
        let dag = fig1_full().dag;
        let empty = PrbpTrace::new();
        assert!(certify_prbp(&dag, 4, &empty, "noop").is_err());
    }

    #[test]
    fn report_serialises() {
        let dag = fft(8).dag;
        let trace = beam_prbp(&dag, 4, BeamConfig::adaptive()).unwrap();
        let report = certify_prbp(&dag, 4, &trace, "beam:1").unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: ScheduleReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

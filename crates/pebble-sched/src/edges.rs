//! Edge-order greedy scheduling: the PRBP executor generalised from node
//! sequences to *edge* sequences.
//!
//! [`crate::greedy_prbp`] processes a node order and aggregates all in-edges
//! of a node back to back, which forces every pending input of a
//! high-fan-in node (a matmul accumulator, an attention score) to be
//! resident simultaneously. PRBP's partial computes do not require that: an
//! accumulator can absorb one input at a time, with each input produced
//! just-in-time and deleted immediately. [`greedy_prbp_edges`] schedules an
//! explicit edge sequence and unlocks exactly that pattern — it is what
//! makes the tiled matmul / streaming attention access patterns expressible
//! as a *generic* greedy run (see `compose`).
//!
//! The edge sequence must be *complete* (every edge exactly once) and
//! *source-complete* (all in-edges of `u` appear before any edge `(u, v)`),
//! which is verified up-front in `O(n + m)`; invalid sequences return
//! `None`. Eviction decisions go through the usual pluggable
//! [`EvictionPolicy`], with Belady next-use distances measured in edge
//! positions.

use crate::policy::{Candidate, EvictionPolicy};
use pebble_dag::liveness::NEVER;
use pebble_dag::{Dag, EdgeId, NodeId};
use pebble_game::moves::PrbpMove;
use pebble_game::prbp::{PebbleState, PrbpConfig};
use pebble_game::trace::PrbpTrace;
use pebble_game::PrbpBuilder;

/// Schedule `dag` in PRBP with cache size `r` by processing `edges` in the
/// given order, evicting through `policy`. Works for any `r ≥ 2`; returns
/// `None` below that, or when `edges` is not a complete, source-complete
/// edge sequence.
pub fn greedy_prbp_edges(
    dag: &Dag,
    r: usize,
    edges: &[EdgeId],
    policy: &mut dyn EvictionPolicy,
) -> Option<PrbpTrace> {
    if r < 2 || edges.len() != dag.edge_count() {
        return None;
    }
    let n = dag.node_count();
    // Validate: every edge once, and every in-edge of `u` before any (u, v).
    let mut seen = dag.edge_set();
    let mut in_done = vec![0usize; n];
    for &e in edges {
        if e.index() >= dag.edge_count() || seen.contains(e.index()) {
            return None;
        }
        seen.insert(e.index());
        let (u, v) = dag.edge_endpoints(e);
        if in_done[u.index()] != dag.in_degree(u) {
            return None;
        }
        in_done[v.index()] += 1;
    }

    // Next-use over edge positions: for each node, the ascending positions
    // at which it is an endpoint.
    let mut occurrences: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (t, &e) in edges.iter().enumerate() {
        let (u, v) = dag.edge_endpoints(e);
        occurrences[u.index()].push(t as u32);
        occurrences[v.index()].push(t as u32);
    }
    let mut cursor = vec![0u32; n];

    let mut red = Vec::new(); // current red nodes (order irrelevant)
    let mut is_red = vec![false; n];
    let mut last_use = vec![0usize; n];
    let mut builder = PrbpBuilder::new(dag, PrbpConfig::new(r));
    let mut candidates: Vec<Candidate> = Vec::with_capacity(r);

    for (t, &e) in edges.iter().enumerate() {
        let (u, v) = dag.edge_endpoints(e);
        let mut needed = 0;
        if !is_red[u.index()] {
            needed += 1;
        }
        if !is_red[v.index()] {
            needed += 1;
        }
        while red.len() + needed > r {
            candidates.clear();
            for &w in &red {
                let w: NodeId = w;
                if w == u || w == v {
                    continue;
                }
                let game = builder.game();
                let remaining = game.unmarked_out_degree(w);
                let dark = game.pebble_state(w) == pebble_game::PebbleState::DarkRed;
                let free = !dark || (remaining == 0 && !dag.is_sink(w));
                let next_use = if remaining == 0 {
                    NEVER
                } else {
                    let occ = &occurrences[w.index()];
                    let mut c = cursor[w.index()] as usize;
                    while c < occ.len() && occ[c] as usize <= t {
                        c += 1;
                    }
                    cursor[w.index()] = c as u32;
                    occ.get(c).map(|&p| p as usize).unwrap_or(NEVER)
                };
                candidates.push(Candidate {
                    node: w,
                    next_use,
                    last_use: last_use[w.index()],
                    remaining_consumers: remaining,
                    free,
                });
            }
            let victim = candidates[policy.choose(&candidates)].node;
            builder.evict(victim).expect("victim is evictable");
            remove_red(&mut red, &mut is_red, victim);
        }
        if !is_red[u.index()] {
            // `u` is fully computed (source-completeness) and not red: its
            // value was saved when it was evicted, so a blue copy exists.
            builder.ensure_red(u).expect("u has a blue copy");
            insert_red(&mut red, &mut is_red, u);
        }
        if !is_red[v.index()] {
            if builder.game().pebble_state(v) == PebbleState::Blue {
                // A partially aggregated value that was spilled: bring it
                // back before aggregating into it (a blue-only target would
                // lose its partial value).
                builder.push(PrbpMove::Load(v)).expect("v has a blue copy");
            }
            insert_red(&mut red, &mut is_red, v);
        }
        builder
            .push(PrbpMove::PartialCompute { from: u, to: v })
            .expect("edge aggregation is legal");
        last_use[u.index()] = t + 1;
        last_use[v.index()] = t + 1;
        // A fully consumed non-sink input dies immediately, freeing its slot.
        if builder.game().unmarked_out_degree(u) == 0 && !dag.is_sink(u) {
            builder.evict(u).expect("dead value evicts for free");
            remove_red(&mut red, &mut is_red, u);
        }
        // A completed sink is saved and dropped on the spot.
        if dag.is_sink(v) && builder.game().unmarked_in_degree(v) == 0 {
            builder.push(PrbpMove::Save(v)).expect("sink is dark red");
            builder.push(PrbpMove::Delete(v)).expect("light red delete");
            remove_red(&mut red, &mut is_red, v);
        }
    }
    let (trace, game) = builder.finish();
    debug_assert!(game.is_terminal());
    Some(trace)
}

fn insert_red(red: &mut Vec<NodeId>, is_red: &mut [bool], v: NodeId) {
    if !is_red[v.index()] {
        is_red[v.index()] = true;
        red.push(v);
    }
}

fn remove_red(red: &mut Vec<NodeId>, is_red: &mut [bool], v: NodeId) {
    debug_assert!(is_red[v.index()]);
    is_red[v.index()] = false;
    let pos = red.iter().position(|&w| w == v).expect("red member");
    red.swap_remove(pos);
}

/// A shared-input-affinity edge order for DAGs whose non-source nodes all
/// have out-degree ≤ 1 (sink-cone components): process the cone nodes by
/// (level, descending-sorted predecessor ids); at each node emit its
/// source in-edges followed by its single out-edge. Accumulators absorb one
/// input at a time while consumers of the same source run back to back.
/// Returns `None` when some non-source node has out-degree ≥ 2.
pub fn cone_affinity_edges(dag: &Dag) -> Option<Vec<EdgeId>> {
    let n = dag.node_count();
    for v in dag.nodes() {
        if !dag.is_source(v) && dag.out_degree(v) > 1 {
            return None;
        }
    }
    let levels = pebble_dag::topo::levels(dag);
    let mut pi: Vec<NodeId> = dag.nodes().filter(|&v| !dag.is_source(v)).collect();
    let key: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let v = NodeId::from_index(i);
            if dag.is_source(v) {
                Vec::new()
            } else {
                let mut preds: Vec<usize> = dag.predecessors(v).map(|u| u.index()).collect();
                preds.sort_unstable_by(|a, b| b.cmp(a));
                preds
            }
        })
        .collect();
    pi.sort_by(|&a, &b| {
        (levels[a.index()], &key[a.index()], a.index()).cmp(&(
            levels[b.index()],
            &key[b.index()],
            b.index(),
        ))
    });
    let mut edges = Vec::with_capacity(dag.edge_count());
    for &v in &pi {
        for &(u, e) in dag.in_edges(v) {
            if dag.is_source(u) {
                edges.push(e);
            }
        }
        if let Some(&(_, e)) = dag.out_edges(v).first() {
            edges.push(e);
        }
    }
    debug_assert_eq!(edges.len(), dag.edge_count());
    Some(edges)
}

/// The by-target edge order equivalent to running [`crate::greedy_prbp`] on
/// `order`: for each node of the order, its in-edges in CSR order. Useful as
/// a baseline edge sequence and in tests.
pub fn by_target_edges(dag: &Dag, order: &[NodeId]) -> Vec<EdgeId> {
    let mut edges = Vec::with_capacity(dag.edge_count());
    for &v in order {
        for &(_, e) in dag.in_edges(v) {
            edges.push(e);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order;
    use crate::policy::FurthestInFuture;
    use pebble_dag::generators::{attention_qk, fft, matmul};

    #[test]
    fn by_target_edges_match_node_greedy_validity() {
        let dag = fft(16).dag;
        let ord = order::natural(&dag);
        let edges = by_target_edges(&dag, &ord);
        let trace = greedy_prbp_edges(&dag, 4, &edges, &mut FurthestInFuture).unwrap();
        assert!(trace.validate(&dag, PrbpConfig::new(4)).is_ok());
    }

    #[test]
    fn invalid_edge_sequences_are_rejected() {
        let dag = fft(8).dag;
        let ord = order::natural(&dag);
        let edges = by_target_edges(&dag, &ord);
        let mut rev = edges.clone();
        rev.reverse();
        assert!(greedy_prbp_edges(&dag, 4, &rev, &mut FurthestInFuture).is_none());
        assert!(greedy_prbp_edges(&dag, 4, &edges[1..], &mut FurthestInFuture).is_none());
        let mut dup = edges.clone();
        dup[0] = dup[1];
        assert!(greedy_prbp_edges(&dag, 4, &dup, &mut FurthestInFuture).is_none());
        assert!(greedy_prbp_edges(&dag, 1, &edges, &mut FurthestInFuture).is_none());
    }

    #[test]
    fn cone_order_streams_matmul_accumulators() {
        // On a matmul the affinity edge order visits products k-major and
        // forwards each product into its accumulator immediately, so the
        // working set is accumulators + one input row/column — far below
        // what the node-order greedy needs for the same instance.
        let mm = matmul(4, 4, 4).dag;
        let r = 4 * 4 + 2 * 4 + 2; // t² accumulators + 2t inputs + transient
        let edges = cone_affinity_edges(&mm).unwrap();
        let trace = greedy_prbp_edges(&mm, r, &edges, &mut FurthestInFuture).unwrap();
        let cost = trace.validate(&mm, PrbpConfig::new(r)).unwrap();
        // Spill-free: every source loaded once, every sink saved once.
        assert_eq!(cost, mm.trivial_cost());

        let ord = order::dfs_postorder(&mm);
        let node_trace = crate::greedy_prbp(&mm, r, &ord, &mut FurthestInFuture).unwrap();
        let node_cost = node_trace.validate(&mm, PrbpConfig::new(r)).unwrap();
        assert!(cost <= node_cost);
    }

    #[test]
    fn cone_order_applies_to_attention_qk() {
        let att = attention_qk(4, 2).dag;
        let edges = cone_affinity_edges(&att).unwrap();
        let r = 16 + 2 * 4 * 2 + 2;
        let trace = greedy_prbp_edges(&att, r, &edges, &mut FurthestInFuture).unwrap();
        assert_eq!(
            trace.validate(&att, PrbpConfig::new(r)).unwrap(),
            att.trivial_cost()
        );
    }

    #[test]
    fn cone_order_rejects_fanout_dags() {
        assert!(cone_affinity_edges(&fft(8).dag).is_none());
    }

    #[test]
    fn spilled_accumulators_reload_correctly() {
        // Tiny cache on a matmul forces accumulator spills; the executor
        // must reload blue-only partial values before aggregating into them.
        let mm = matmul(3, 3, 3).dag;
        let edges = cone_affinity_edges(&mm).unwrap();
        for r in [2usize, 3, 4, 6] {
            let trace = greedy_prbp_edges(&mm, r, &edges, &mut FurthestInFuture).unwrap();
            let cost = trace.validate(&mm, PrbpConfig::new(r)).unwrap();
            assert!(cost >= mm.trivial_cost());
        }
    }
}

//! Structure-aware divide-and-conquer scheduling: decompose, schedule each
//! component independently (exact below a node budget, heuristic above),
//! stitch the per-component traces into one simulator-valid schedule.
//!
//! ## Pipeline
//!
//! 1. **Decompose** ([`pebble_dag::decompose`]): candidate decompositions
//!    are generated — the whole DAG, its weakly connected components, level
//!    bands at a few size caps, and sink-cone tiles where applicable.
//! 2. **Schedule** each component on its extracted sub-DAG (members +
//!    boundary inputs), dispatching components across scoped worker threads.
//!    Components within [`ComposeConfig::exact_budget`] nodes are solved
//!    *optimally* by the A* solver; larger ones get the best of the
//!    heuristic portfolio, plus the shared-input-affinity edge schedule
//!    ([`crate::edges`]) on cone-shaped components.
//! 3. **Stitch**: replay each component's moves against the full-DAG
//!    simulator in quotient-topological order. Boundary-aware
//!    eviction keeps the stitched trace valid: a deletion whose value still
//!    has unmarked cross edges is upgraded to save-then-delete, and the
//!    cache is flushed between components so every component starts from
//!    the empty fast memory its sub-schedule assumed. The cheapest stitched
//!    candidate wins.
//!
//! Every stitched trace is re-validated from scratch by the caller's
//! certification, and the winning cost is paired with the composable lower
//! bound of `pebble-bounds` (plus per-component exact optima where
//! components are boundary-free), so structure-aware runs certify *tighter*
//! gaps, not just lower costs.

use crate::edges::{cone_affinity_edges, greedy_prbp_edges};
use crate::policy::FurthestInFuture;
use crate::report::{certify_prbp_with_bounds, BoundSet, BoundValue, ScheduleReport};
use crate::suite::{best_prbp, default_suite, Scheduler};
use pebble_bounds::composed_prbp_bound;
use pebble_dag::decompose::{decompose, Decomposition, ExtractedComponent, Strategy};
use pebble_dag::{Dag, NodeId};
use pebble_game::engine::{self, EngineConfig, HeuristicSpec};
use pebble_game::exact::{self, LoadCountHeuristic};
use pebble_game::moves::PrbpMove;
use pebble_game::prbp::PrbpConfig;
use pebble_game::trace::{PrbpTrace, TraceError};
use pebble_game::PrbpBuilder;

/// The default node budget below which components are solved exactly. The
/// unified engine's seeded branch-and-bound (the portfolio's best schedule
/// primes the incumbent and prunes the search) made the exact phase cheap
/// enough to raise this from the historical 20.
pub const DEFAULT_EXACT_BUDGET: usize = 24;

/// Configuration of the [`compose_prbp`] pipeline.
#[derive(Debug, Clone)]
pub struct ComposeConfig {
    /// Components with at most this many sub-DAG nodes are solved optimally
    /// by the A* solver (falling back to the portfolio when the state limit
    /// trips).
    pub exact_budget: usize,
    /// State limit per per-component exact search.
    pub exact_max_states: usize,
    /// Worker threads for per-component scheduling; 0 uses the available
    /// hardware parallelism.
    pub threads: usize,
    /// Component size caps (members + boundary inputs) tried for the banded
    /// and tiled decompositions; empty derives `{4r, 16r}` from the cache
    /// size.
    pub caps: Vec<usize>,
}

impl Default for ComposeConfig {
    fn default() -> Self {
        ComposeConfig {
            exact_budget: DEFAULT_EXACT_BUDGET,
            exact_max_states: 2_000_000,
            threads: 0,
            caps: Vec::new(),
        }
    }
}

impl ComposeConfig {
    /// A configuration with the given exact budget and defaults elsewhere.
    pub fn with_exact_budget(exact_budget: usize) -> Self {
        ComposeConfig {
            exact_budget,
            ..Default::default()
        }
    }
}

/// The result of a compose run.
#[derive(Debug, Clone)]
pub struct ComposeOutcome {
    /// The stitched, simulator-valid schedule.
    pub trace: PrbpTrace,
    /// Its replayed I/O cost.
    pub cost: usize,
    /// The winning decomposition strategy.
    pub strategy: Strategy,
    /// Number of components in the winning decomposition.
    pub components: usize,
    /// How many of them were solved exactly.
    pub exact_components: usize,
    /// The best composable lower bound across all candidate partitions
    /// (including per-component exact optima on boundary-free components).
    /// Admissible for the full instance; `None` only for non-standard game
    /// variants.
    pub composed_bound: Option<usize>,
}

/// Schedule `dag` in PRBP with cache size `r` through the decompose /
/// conquer / stitch pipeline. Returns `None` for `r < 2`. The result is
/// never worse than the plain portfolio ([`best_prbp`] over
/// [`default_suite`]), which participates as the single-component candidate.
pub fn compose_prbp(dag: &Dag, r: usize, config: &ComposeConfig) -> Option<ComposeOutcome> {
    if r < 2 {
        return None;
    }
    let caps: Vec<usize> = if config.caps.is_empty() {
        let mut caps = vec![
            (4 * r).max(2 * config.exact_budget),
            (16 * r).max(4 * config.exact_budget),
        ];
        caps.dedup();
        caps
    } else {
        config.caps.clone()
    };
    // A tile's unsaved sinks are live accumulators throughout its schedule;
    // capping them at ~3r/4 leaves room for the streaming inputs.
    let max_sinks = (3 * r / 4).max(1);

    let decompose_span = pebble_obs::trace::span("compose:decompose");
    let mut candidates: Vec<Decomposition> =
        vec![decompose(dag, Strategy::Whole).expect("whole always applies")];
    let wcc = decompose(dag, Strategy::Wcc).expect("wcc always applies");
    if wcc.components.len() > 1 {
        candidates.push(wcc);
    }
    for &cap in &caps {
        if let Some(d) = decompose(
            dag,
            Strategy::SinkCones {
                max_nodes: cap,
                max_sinks,
            },
        ) {
            if d.components.len() > 1 {
                candidates.push(d);
            }
        }
        let d = decompose(dag, Strategy::LevelBands { max_nodes: cap }).expect("bands total");
        if d.components.len() > 1 {
            candidates.push(d);
        }
    }

    drop(decompose_span);

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };

    let _schedule_span = pebble_obs::trace::span("compose:schedule");
    let mut best: Option<(usize, PrbpTrace, Strategy, usize, usize)> = None;
    let mut composed_bound: Option<usize> = None;
    for decomposition in &candidates {
        let Some(scheduled) = schedule_decomposition(dag, r, decomposition, config, threads) else {
            continue;
        };
        // The composable bound is admissible for every candidate partition,
        // so the maximum over candidates is too. Components without any
        // boundary contribute their exact optimum when one was proved. For
        // the single-component candidate the formula degenerates to the
        // global ladder the certification evaluates anyway, so only the
        // exact case is taken from it.
        let candidate_bound = if decomposition.components.len() > 1 {
            composed_prbp_bound(dag, PrbpConfig::new(r), &scheduled.partition, true).map(
                |mut bound| {
                    for (i, comp) in decomposition.components.iter().enumerate() {
                        if comp.inputs.is_empty() && comp.outputs.is_empty() {
                            if let Some(exact) = scheduled.exact[i] {
                                bound.per_component[i] = bound.per_component[i].max(exact);
                            }
                        }
                    }
                    bound.total()
                },
            )
        } else {
            scheduled.exact[0]
        };
        if let Some(total) = candidate_bound {
            if composed_bound.map_or(true, |b| total > b) {
                composed_bound = Some(total);
            }
        }
        let exact_count = scheduled.exact.iter().filter(|e| e.is_some()).count();
        let better = best
            .as_ref()
            .map_or(true, |&(cost, ..)| scheduled.cost < cost);
        if better {
            best = Some((
                scheduled.cost,
                scheduled.trace,
                decomposition.strategy,
                decomposition.components.len(),
                exact_count,
            ));
        }
    }
    let (cost, trace, strategy, components, exact_components) = best?;
    Some(ComposeOutcome {
        trace,
        cost,
        strategy,
        components,
        exact_components,
        composed_bound,
    })
}

/// [`compose_prbp`] followed by certification: the stitched trace is
/// re-validated from scratch and its report ladder additionally carries the
/// composable `compose` bound.
pub fn compose_prbp_report(
    dag: &Dag,
    r: usize,
    config: &ComposeConfig,
    set: BoundSet,
    scheduler: impl Into<String>,
) -> Option<Result<ScheduleReport, TraceError<pebble_game::prbp::PrbpError>>> {
    let outcome = compose_prbp(dag, r, config)?;
    let extra: Vec<BoundValue> = outcome
        .composed_bound
        .map(|value| BoundValue {
            name: "compose".to_string(),
            value,
        })
        .into_iter()
        .collect();
    Some(certify_prbp_with_bounds(
        dag,
        r,
        &outcome.trace,
        scheduler,
        set,
        extra,
    ))
}

struct ScheduledDecomposition {
    trace: PrbpTrace,
    cost: usize,
    /// Per-component exact optimum, when the component was solved optimally.
    exact: Vec<Option<usize>>,
    /// Member lists, for the composable bound.
    partition: Vec<Vec<NodeId>>,
}

fn schedule_decomposition(
    dag: &Dag,
    r: usize,
    decomposition: &Decomposition,
    config: &ComposeConfig,
    threads: usize,
) -> Option<ScheduledDecomposition> {
    let extracted: Vec<ExtractedComponent> = decomposition
        .components
        .iter()
        .map(|c| pebble_dag::decompose::extract_component(dag, c))
        .collect();
    let components_span = pebble_obs::trace::span("compose:components");
    let results = par_map(extracted.iter().collect(), threads, |sub| {
        let _span = pebble_obs::trace::span("compose:component");
        schedule_component(sub, r, config)
    });
    drop(components_span);
    let mut traces = Vec::with_capacity(results.len());
    let mut exact = Vec::with_capacity(results.len());
    for result in results {
        let (trace, solved) = result?;
        traces.push(trace);
        exact.push(solved);
    }
    let stitch_span = pebble_obs::trace::span("compose:stitch");
    let (trace, cost) = stitch(dag, r, &extracted, &traces);
    drop(stitch_span);
    Some(ScheduledDecomposition {
        trace,
        cost,
        exact,
        partition: decomposition
            .components
            .iter()
            .map(|c| c.nodes.clone())
            .collect(),
    })
}

/// Schedule one extracted component. Returns the local trace and, when the
/// component was solved optimally, its exact cost.
///
/// Heuristics run first: a heuristic schedule meeting the admissible
/// load-count bound is already provably optimal, which skips the exponential
/// search entirely on the (very common) boundary-dominated components —
/// a decomposition with hundreds of tiny star-shaped pieces would otherwise
/// burn a capped A* search per piece just to reconfirm the greedy result.
fn schedule_component(
    sub: &ExtractedComponent,
    r: usize,
    config: &ComposeConfig,
) -> Option<(PrbpTrace, Option<usize>)> {
    let dag = &sub.dag;
    let config_prbp = PrbpConfig::new(r);
    let mut suite = default_suite();
    if dag.node_count() <= 512 {
        suite.push(Scheduler::Beam {
            width: 8,
            branch: 4,
        });
    }
    let mut best: Option<(PrbpTrace, usize)> = best_prbp(dag, r, &suite).map(|(_, t, c)| (t, c));
    // Cone-shaped components additionally get the streaming-accumulator
    // edge schedule, which the node-order portfolio cannot express.
    if let Some(edges) = cone_affinity_edges(dag) {
        if let Some(trace) = greedy_prbp_edges(dag, r, &edges, &mut FurthestInFuture) {
            let cost = trace
                .validate(dag, config_prbp)
                .expect("edge executor emits valid traces");
            if best.as_ref().map_or(true, |&(_, c)| cost < c) {
                best = Some((trace, cost));
            }
        }
    }
    let (trace, cost) = best?;
    let lower = exact::prbp_initial_bound(dag, config_prbp, &LoadCountHeuristic);
    if cost == lower {
        // Certified optimal without any search.
        return Some((trace, Some(cost)));
    }
    if dag.node_count() <= config.exact_budget {
        // Seed the engine with the portfolio's best schedule: the search
        // becomes a branch-and-bound that prunes everything at least as
        // expensive as the incumbent, and a budget-stopped solve still
        // returns the best (validated) schedule seen instead of failing.
        let engine_cfg = EngineConfig {
            node_budget: Some(config.exact_max_states),
            ..EngineConfig::default()
        };
        if let Ok(out) = engine::solve_prbp(
            dag,
            config_prbp,
            &engine_cfg,
            HeuristicSpec::Single(&LoadCountHeuristic),
            Some(&trace),
            None,
        ) {
            let certified = out.proven_optimal.then_some(out.cost);
            return Some((out.trace, certified));
        }
    }
    Some((trace, None))
}

/// Replay per-component traces against the full-DAG simulator, in component
/// order, with boundary-aware eviction. See the module docs for why every
/// rewritten move is legal; the returned trace additionally re-validates in
/// the caller's certification path.
fn stitch(
    dag: &Dag,
    r: usize,
    extracted: &[ExtractedComponent],
    traces: &[PrbpTrace],
) -> (PrbpTrace, usize) {
    let mut builder = PrbpBuilder::new(dag, PrbpConfig::new(r));
    for (sub, trace) in extracted.iter().zip(traces) {
        let map = |l: NodeId| sub.to_global[l.index()];
        for &mv in &trace.moves {
            match mv {
                PrbpMove::Load(v) => builder
                    .push(PrbpMove::Load(map(v)))
                    .expect("stitched load has a blue copy"),
                PrbpMove::Save(v) => builder
                    .push(PrbpMove::Save(map(v)))
                    .expect("stitched save is dark red"),
                PrbpMove::PartialCompute { from, to } => builder
                    .push(PrbpMove::PartialCompute {
                        from: map(from),
                        to: map(to),
                    })
                    .expect("stitched aggregation is legal"),
                // Boundary-aware eviction: a value whose cross edges are
                // still unmarked is saved before its red pebble goes.
                PrbpMove::Delete(v) => {
                    builder.evict(map(v)).expect("stitched eviction is legal");
                }
                PrbpMove::Clear(_) => {
                    unreachable!("compose schedules the standard one-shot game")
                }
            }
        }
        // Flush: the next component's sub-schedule assumed an empty cache,
        // and every crossing value must end up with a blue copy.
        for &g in &sub.to_global {
            if builder.game().pebble_state(g).has_red() {
                builder.evict(g).expect("flush eviction is legal");
            }
        }
    }
    let (trace, game) = builder.finish();
    assert!(game.is_terminal(), "stitched schedule must be terminal");
    (trace, game.io_cost())
}

/// Minimal scoped-thread work queue (the `pebble-experiments::runner`
/// pattern, kept local to avoid a dependency cycle): runs `worker` over the
/// items on up to `threads` threads, results in input order.
fn par_map<I: Send, T: Send>(
    items: Vec<I>,
    threads: usize,
    worker: impl Fn(I) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items.into_iter().map(worker).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                let out = worker(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{binary_tree, fft, fig1_full, matmul};
    use pebble_dag::DagBuilder;
    use pebble_game::exact::{optimal_prbp_cost, SearchConfig};

    #[test]
    fn compose_is_exact_on_small_instances() {
        let dag = fig1_full().dag;
        for r in [3usize, 4] {
            let outcome = compose_prbp(&dag, r, &ComposeConfig::default()).unwrap();
            let opt = optimal_prbp_cost(&dag, PrbpConfig::new(r), SearchConfig::default()).unwrap();
            assert_eq!(outcome.cost, opt);
            assert!(outcome.exact_components >= 1);
            assert_eq!(
                outcome.trace.validate(&dag, PrbpConfig::new(r)).unwrap(),
                opt
            );
            // The composable bound of the exactly-solved whole instance is
            // the optimum itself.
            assert_eq!(outcome.composed_bound, Some(opt));
        }
    }

    #[test]
    fn compose_solves_disconnected_instances_per_component() {
        // Two disjoint copies of a small tree: each weak component is
        // solved exactly, the stitched schedule sums the optima, and the
        // composable bound certifies a 1.0 gap.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(14);
        for half in 0..2 {
            let o = half * 7;
            for (u, v) in [(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)] {
                b.add_edge(n[o + u], n[o + v]);
            }
        }
        let dag = b.build().unwrap();
        let r = 3;
        let outcome = compose_prbp(&dag, r, &ComposeConfig::default()).unwrap();
        let opt = optimal_prbp_cost(&dag, PrbpConfig::new(r), SearchConfig::default()).unwrap();
        assert_eq!(outcome.cost, opt);
        assert_eq!(outcome.composed_bound, Some(opt));
        assert!(outcome.trace.validate(&dag, PrbpConfig::new(r)).is_ok());
    }

    #[test]
    fn compose_never_loses_to_the_portfolio() {
        for (dag, r) in [(fft(32).dag, 8usize), (matmul(4, 4, 4).dag, 12)] {
            let outcome = compose_prbp(&dag, r, &ComposeConfig::default()).unwrap();
            let (_, _, portfolio) = best_prbp(&dag, r, &default_suite()).unwrap();
            assert!(
                outcome.cost <= portfolio,
                "compose {} > portfolio {}",
                outcome.cost,
                portfolio
            );
            assert!(outcome.trace.validate(&dag, PrbpConfig::new(r)).is_ok());
        }
    }

    // The two full-size structure wins sweep several complete portfolio
    // passes and take minutes unoptimised; like E16 they are exercised in
    // release builds only (CI runs the pebble-sched suite in release).
    #[cfg(not(debug_assertions))]
    #[test]
    fn compose_beats_the_portfolio_on_banded_fft() {
        let dag = fft(64).dag;
        let r = 16;
        let outcome = compose_prbp(&dag, r, &ComposeConfig::default()).unwrap();
        let (_, _, portfolio) = best_prbp(&dag, r, &default_suite()).unwrap();
        assert!(
            outcome.cost < portfolio,
            "compose {} >= portfolio {}",
            outcome.cost,
            portfolio
        );
        assert!(matches!(outcome.strategy, Strategy::LevelBands { .. }));
        assert!(outcome.components > 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn compose_tiles_matmul() {
        let mm = matmul(8, 8, 8).dag;
        let r = 24;
        let outcome = compose_prbp(&mm, r, &ComposeConfig::default()).unwrap();
        let (_, _, portfolio) = best_prbp(&mm, r, &default_suite()).unwrap();
        assert!(outcome.cost < portfolio);
        assert!(matches!(outcome.strategy, Strategy::SinkCones { .. }));
    }

    #[test]
    fn compose_report_carries_the_compose_bound() {
        let dag = binary_tree(3);
        let report = compose_prbp_report(
            &dag,
            4,
            &ComposeConfig::default(),
            BoundSet::Full,
            "compose",
        )
        .unwrap()
        .unwrap();
        assert!(report.bounds.iter().any(|b| b.name == "compose"));
        assert!(report.gap() >= 1.0);
        // The 15-node tree is within the exact budget: certified optimal.
        assert!((report.gap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compose_rejects_tiny_caches() {
        assert!(compose_prbp(&binary_tree(2), 1, &ComposeConfig::default()).is_none());
    }
}

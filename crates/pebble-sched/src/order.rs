//! Compute orders for the greedy schedulers.
//!
//! A greedy scheduler processes the non-source nodes of the DAG in a fixed
//! topological order; the order determines the reuse distances the eviction
//! policy has to work with, so it dominates the achieved I/O cost on large
//! instances. Two generic providers live here:
//!
//! * [`natural`] — Kahn's algorithm with a FIFO queue (breadth-first /
//!   layer-major). Good for shallow DAGs, poor for deep layered DAGs whose
//!   layers exceed the cache.
//! * [`dfs_postorder`] — memoised depth-first search from the sinks. Values
//!   are computed as late as their first consumer allows, which keeps
//!   producer–consumer pairs close together (the recursive-decomposition
//!   order on divide-and-conquer DAGs such as the FFT butterfly).

use pebble_dag::{topo, Dag, NodeId};

/// The breadth-first (layer-major) topological order of
/// [`pebble_dag::topo::topological_order`].
pub fn natural(dag: &Dag) -> Vec<NodeId> {
    topo::topological_order(dag)
}

/// Memoised depth-first postorder from the sinks (taken in increasing id
/// order): every node appears after all of its predecessors, so the result
/// is a valid topological order; each node appears exactly once, at the
/// position its first-visited consumer forces it to.
pub fn dfs_postorder(dag: &Dag) -> Vec<NodeId> {
    let n = dag.node_count();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS; the stack entry tracks how many in-edges were expanded.
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for sink in dag.sinks() {
        if visited[sink.index()] {
            continue;
        }
        visited[sink.index()] = true;
        stack.push((sink, 0));
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let ins = dag.in_edges(v);
            if *next < ins.len() {
                let (u, _) = ins[*next];
                *next += 1;
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    stack.push((u, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every node reaches a sink");
    debug_assert!(topo::is_topological_order(dag, &order));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{fft, matmul, random_layered, RandomLayeredConfig};
    use pebble_dag::topo::is_topological_order;

    #[test]
    fn both_orders_are_topological_on_structured_dags() {
        for dag in [
            fft(16).dag,
            matmul(3, 4, 5).dag,
            random_layered(RandomLayeredConfig::default()),
        ] {
            let nat = natural(&dag);
            let dfs = dfs_postorder(&dag);
            assert_eq!(nat.len(), dag.node_count());
            assert_eq!(dfs.len(), dag.node_count());
            assert!(is_topological_order(&dag, &nat));
            assert!(is_topological_order(&dag, &dfs));
        }
    }

    #[test]
    fn dfs_postorder_differs_from_natural_on_deep_dags() {
        let dag = fft(16).dag;
        assert_ne!(natural(&dag), dfs_postorder(&dag));
    }

    #[test]
    fn dfs_postorder_is_deterministic() {
        let dag = fft(32).dag;
        assert_eq!(dfs_postorder(&dag), dfs_postorder(&dag));
    }
}

//! Beam search over partial PRBP schedules — thin wrapper over the unified
//! anytime engine.
//!
//! The search itself (macro-step node completions, packed-state dedup, the
//! move-chain sharing and the eviction policy) lives in
//! `pebble_game::engine`; this module keeps the historical `beam_prbp` entry
//! point and its [`BeamConfig`] knobs. A partial schedule is identified with
//! its pebbling configuration in the canonical packed encoding of
//! [`pebble_game::packed`] (the same `[red | blue | marked]` bit planes the
//! exact A* solver interns), so two beam entries that reach the same
//! configuration are merged and only the cheaper survives — a beam-limited
//! version of the solver's transposition table.
//!
//! Width 1 degenerates to an *adaptive* greedy scheduler that picks the
//! globally cheapest next node online — the workhorse for instances where a
//! fixed compute order wastes locality; larger widths buy schedule quality
//! on mid-size instances for more time and memory. Callers that want
//! deadlines, cancellation or parallel child materialisation configure the
//! same search through [`pebble_game::engine::solve_prbp`] with
//! `EngineConfig::width`.

use pebble_dag::Dag;
use pebble_game::engine::{solve_prbp, EngineConfig, HeuristicSpec};
use pebble_game::exact::LoadCountHeuristic;
use pebble_game::prbp::PrbpConfig;
use pebble_game::trace::PrbpTrace;

/// Search parameters for [`beam_prbp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Number of partial schedules kept per level (≥ 1).
    pub width: usize,
    /// Candidate next-nodes proposed per beam entry per level (≥ 1).
    pub branch: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            width: 8,
            branch: 4,
        }
    }
}

impl BeamConfig {
    /// Width-1 beam: the adaptive greedy scheduler.
    pub fn adaptive() -> Self {
        BeamConfig {
            width: 1,
            branch: 1,
        }
    }
}

/// Beam-search PRBP scheduler. Works for any `r ≥ 2`; returns `None` below
/// that. Deterministic: all ranking ties are broken by node id and beam
/// insertion order.
pub fn beam_prbp(dag: &Dag, r: usize, cfg: BeamConfig) -> Option<PrbpTrace> {
    if r < 2 {
        return None;
    }
    let engine = EngineConfig {
        width: Some(cfg.width.max(1)),
        branch: cfg.branch.max(1),
        ..EngineConfig::default()
    };
    solve_prbp(
        dag,
        PrbpConfig::new(r),
        &engine,
        HeuristicSpec::Single(&LoadCountHeuristic),
        None,
        None,
    )
    .ok()
    .map(|out| out.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{binary_tree, fft, fig1_full, matmul};
    use pebble_game::prbp::PrbpConfig;

    fn validated(dag: &Dag, r: usize, cfg: BeamConfig) -> usize {
        let trace = beam_prbp(dag, r, cfg).expect("schedulable");
        trace
            .validate(dag, PrbpConfig::new(r))
            .expect("valid trace")
    }

    #[test]
    fn beam_schedules_structured_dags_validly() {
        for dag in [fig1_full().dag, binary_tree(4), fft(16).dag] {
            for cfg in [BeamConfig::adaptive(), BeamConfig::default()] {
                let cost = validated(&dag, 4, cfg);
                assert!(cost >= dag.trivial_cost());
            }
        }
    }

    #[test]
    fn beam_works_at_minimum_cache() {
        let dag = fig1_full().dag;
        assert!(beam_prbp(&dag, 1, BeamConfig::default()).is_none());
        let cost = validated(&dag, 2, BeamConfig::default());
        assert!(cost >= dag.trivial_cost());
    }

    #[test]
    fn wider_beam_never_loses_to_adaptive_on_small_dags() {
        for dag in [fig1_full().dag, matmul(2, 2, 2).dag, fft(8).dag] {
            let narrow = validated(&dag, 3, BeamConfig::adaptive());
            let wide = validated(
                &dag,
                3,
                BeamConfig {
                    width: 16,
                    branch: 8,
                },
            );
            assert!(wide <= narrow, "wide {wide} > narrow {narrow}");
        }
    }

    #[test]
    fn ample_cache_reaches_trivial_cost() {
        let dag = binary_tree(3);
        assert_eq!(
            validated(&dag, 64, BeamConfig::adaptive()),
            dag.trivial_cost()
        );
    }

    #[test]
    fn beam_is_deterministic() {
        let dag = fft(16).dag;
        let a = beam_prbp(&dag, 6, BeamConfig::default()).unwrap();
        let b = beam_prbp(&dag, 6, BeamConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

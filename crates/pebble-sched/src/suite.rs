//! The named scheduler portfolio swept by experiments and benchmarks.
//!
//! Each [`Scheduler`] value is a fully-determined configuration with a stable
//! display name, so experiment tables and the committed benchmark baseline
//! can refer to schedulers by string and replay them bit-for-bit.

use crate::beam::{beam_prbp, BeamConfig};
use crate::greedy::{greedy_prbp, greedy_rbp};
use crate::local::{local_search_prbp, LocalSearchConfig};
use crate::order;
use crate::policy::{EvictionPolicy, FewestRemainingConsumers, FurthestInFuture, Lru};
use pebble_dag::{Dag, NodeId};
use pebble_game::strategies::topological;
use pebble_game::trace::{PrbpTrace, RbpTrace};
use std::fmt;

/// Eviction policy selector (the shipped [`crate::policy`] implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Belady / furthest-in-future.
    Belady,
    /// Least-recently-used.
    Lru,
    /// Fewest remaining consumers.
    FewestConsumers,
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "belady" => Ok(PolicyKind::Belady),
            "lru" => Ok(PolicyKind::Lru),
            "fewest" => Ok(PolicyKind::FewestConsumers),
            other => Err(format!(
                "unknown eviction policy `{other}` (expected belady, lru or fewest)"
            )),
        }
    }
}

impl PolicyKind {
    /// Instantiate the shipped implementation of this policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Belady => Box::new(FurthestInFuture),
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::FewestConsumers => Box::new(FewestRemainingConsumers),
        }
    }

    fn name(self) -> &'static str {
        match self {
            PolicyKind::Belady => "belady",
            PolicyKind::Lru => "lru",
            PolicyKind::FewestConsumers => "fewest",
        }
    }
}

/// Compute-order selector for the greedy schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderKind {
    /// Layer-major (Kahn FIFO) order.
    Natural,
    /// Memoised DFS postorder from the sinks.
    DfsPostorder,
}

impl std::str::FromStr for OrderKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "natural" => Ok(OrderKind::Natural),
            "dfs" => Ok(OrderKind::DfsPostorder),
            other => Err(format!(
                "unknown compute order `{other}` (expected natural or dfs)"
            )),
        }
    }
}

impl OrderKind {
    /// Materialise this compute order for `dag`.
    pub fn build(self, dag: &Dag) -> Vec<NodeId> {
        match self {
            OrderKind::Natural => order::natural(dag),
            OrderKind::DfsPostorder => order::dfs_postorder(dag),
        }
    }

    fn name(self) -> &'static str {
        match self {
            OrderKind::Natural => "natural",
            OrderKind::DfsPostorder => "dfs",
        }
    }
}

/// A fully-determined scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// The generic topological strategies of `pebble-game` — the portfolio's
    /// fallback floor, kept so "best of suite" can never lose to the
    /// pre-existing baseline.
    Baseline,
    /// Order-driven greedy with a pluggable policy.
    Greedy {
        /// Eviction policy.
        policy: PolicyKind,
        /// Compute order.
        order: OrderKind,
    },
    /// Beam search over partial schedules (width 1 = adaptive greedy).
    Beam {
        /// Beam width.
        width: usize,
        /// Candidates proposed per entry per level.
        branch: usize,
    },
    /// Local-search refinement (policy re-decision + segment re-ordering)
    /// starting from the natural order.
    Local {
        /// Segment-move proposals.
        iterations: usize,
    },
    /// Structure-aware divide-and-conquer: decompose (weak components /
    /// level bands / sink-cone tiles), schedule each component independently
    /// (exact A* below the node budget), stitch with boundary-aware
    /// eviction. Never worse than the plain portfolio, which participates
    /// as the single-component candidate. PRBP-only.
    Compose {
        /// Node budget below which components are solved exactly.
        exact_budget: usize,
    },
}

impl fmt::Display for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Scheduler::Baseline => write!(f, "baseline"),
            Scheduler::Greedy { policy, order } => {
                write!(f, "greedy:{}:{}", policy.name(), order.name())
            }
            Scheduler::Beam { width, .. } => write!(f, "beam:{width}"),
            Scheduler::Local { iterations } => write!(f, "local:{iterations}"),
            Scheduler::Compose { exact_budget } => {
                if exact_budget == crate::compose::DEFAULT_EXACT_BUDGET {
                    write!(f, "compose")
                } else {
                    write!(f, "compose:{exact_budget}")
                }
            }
        }
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    /// Parse the display form back into a configuration: `baseline`,
    /// `greedy:<policy>:<order>`, `beam:<width>[:<branch>]` (branch defaults
    /// to 4, the [`crate::beam::BeamConfig::default`] value) or
    /// `local:<iterations>`.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "baseline" {
            return Ok(Scheduler::Baseline);
        }
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        match head {
            "greedy" => {
                let policy = parts
                    .next()
                    .ok_or_else(|| "greedy needs a policy: greedy:<policy>:<order>".to_string())?
                    .parse()?;
                let order = parts
                    .next()
                    .ok_or_else(|| "greedy needs an order: greedy:<policy>:<order>".to_string())?
                    .parse()?;
                if parts.next().is_some() {
                    return Err(format!("trailing components in scheduler `{s}`"));
                }
                Ok(Scheduler::Greedy { policy, order })
            }
            "beam" => {
                let width: usize = parts
                    .next()
                    .ok_or_else(|| "beam needs a width: beam:<width>[:<branch>]".to_string())?
                    .parse()
                    .map_err(|_| format!("invalid beam width in `{s}`"))?;
                let branch: usize = match parts.next() {
                    Some(b) => b
                        .parse()
                        .map_err(|_| format!("invalid beam branch in `{s}`"))?,
                    None => 4,
                };
                if width == 0 || branch == 0 || parts.next().is_some() {
                    return Err(format!("invalid beam configuration `{s}`"));
                }
                Ok(Scheduler::Beam { width, branch })
            }
            "local" => {
                let iterations: usize = parts
                    .next()
                    .ok_or_else(|| "local needs a proposal count: local:<iterations>".to_string())?
                    .parse()
                    .map_err(|_| format!("invalid iteration count in `{s}`"))?;
                if parts.next().is_some() {
                    return Err(format!("trailing components in scheduler `{s}`"));
                }
                Ok(Scheduler::Local { iterations })
            }
            "compose" => {
                let exact_budget: usize = match parts.next() {
                    Some(b) => b
                        .parse()
                        .map_err(|_| format!("invalid exact budget in `{s}`"))?,
                    None => crate::compose::DEFAULT_EXACT_BUDGET,
                };
                if parts.next().is_some() {
                    return Err(format!("trailing components in scheduler `{s}`"));
                }
                Ok(Scheduler::Compose { exact_budget })
            }
            other => Err(format!(
                "unknown scheduler `{other}` (expected baseline, greedy:<policy>:<order>, \
                 beam:<width>[:<branch>], local:<iterations> or compose[:<budget>])"
            )),
        }
    }
}

impl Scheduler {
    /// Stable phase label for trace spans and the `phase_duration_us`
    /// metric. Static per *family* (not per parameterisation) so the metric
    /// label set stays bounded.
    fn phase_name(self) -> &'static str {
        match self {
            Scheduler::Baseline => "portfolio:baseline",
            Scheduler::Greedy { .. } => "portfolio:greedy",
            Scheduler::Beam { .. } => "portfolio:beam",
            Scheduler::Local { .. } => "portfolio:local",
            Scheduler::Compose { .. } => "portfolio:compose",
        }
    }

    /// Run this scheduler in PRBP. `None` when the configuration cannot
    /// schedule the instance (`r` too small).
    pub fn run_prbp(self, dag: &Dag, r: usize) -> Option<PrbpTrace> {
        match self {
            Scheduler::Baseline => topological::prbp_topological(dag, r),
            Scheduler::Greedy { policy, order } => {
                let ord = order.build(dag);
                greedy_prbp(dag, r, &ord, policy.build().as_mut())
            }
            Scheduler::Beam { width, branch } => beam_prbp(dag, r, BeamConfig { width, branch }),
            Scheduler::Local { iterations } => local_search_prbp(
                dag,
                r,
                None,
                LocalSearchConfig {
                    iterations,
                    ..Default::default()
                },
            )
            .map(|(trace, _)| trace),
            Scheduler::Compose { exact_budget } => crate::compose::compose_prbp(
                dag,
                r,
                &crate::compose::ComposeConfig::with_exact_budget(exact_budget),
            )
            .map(|outcome| outcome.trace),
        }
    }

    /// Run this scheduler in RBP. Beam, local search and compose are
    /// PRBP-only and return `None`; the others return `None` when
    /// `r < Δ_in + 1`.
    pub fn run_rbp(self, dag: &Dag, r: usize) -> Option<RbpTrace> {
        match self {
            Scheduler::Baseline => topological::rbp_topological(dag, r),
            Scheduler::Greedy { policy, order } => {
                let ord = order.build(dag);
                greedy_rbp(dag, r, &ord, policy.build().as_mut())
            }
            Scheduler::Beam { .. } | Scheduler::Local { .. } | Scheduler::Compose { .. } => None,
        }
    }
}

/// The default portfolio, cheap enough to sweep on every instance: the
/// baseline floor, every eviction policy on the natural order, Belady on the
/// DFS order, and the adaptive (width-1) beam.
pub fn default_suite() -> Vec<Scheduler> {
    vec![
        Scheduler::Baseline,
        Scheduler::Greedy {
            policy: PolicyKind::Belady,
            order: OrderKind::Natural,
        },
        Scheduler::Greedy {
            policy: PolicyKind::Lru,
            order: OrderKind::Natural,
        },
        Scheduler::Greedy {
            policy: PolicyKind::FewestConsumers,
            order: OrderKind::Natural,
        },
        Scheduler::Greedy {
            policy: PolicyKind::Belady,
            order: OrderKind::DfsPostorder,
        },
        Scheduler::Beam {
            width: 1,
            branch: 1,
        },
    ]
}

/// Run every scheduler of `suite` in PRBP and return the cheapest result as
/// `(scheduler, trace, validated cost)`. Costs come from a full simulator
/// re-validation of each trace, not from the builders' counters.
pub fn best_prbp(
    dag: &Dag,
    r: usize,
    suite: &[Scheduler],
) -> Option<(Scheduler, PrbpTrace, usize)> {
    let mut best: Option<(Scheduler, PrbpTrace, usize)> = None;
    for &s in suite {
        let _span = pebble_obs::trace::span(s.phase_name());
        let Some(trace) = s.run_prbp(dag, r) else {
            continue;
        };
        let cost = trace
            .validate(dag, pebble_game::prbp::PrbpConfig::new(r))
            .expect("schedulers emit valid traces");
        if best.as_ref().map_or(true, |&(_, _, c)| cost < c) {
            best = Some((s, trace, cost));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{fft, fig1_full};

    #[test]
    fn names_are_stable() {
        assert_eq!(Scheduler::Baseline.to_string(), "baseline");
        assert_eq!(
            Scheduler::Greedy {
                policy: PolicyKind::Belady,
                order: OrderKind::Natural
            }
            .to_string(),
            "greedy:belady:natural"
        );
        assert_eq!(
            Scheduler::Beam {
                width: 8,
                branch: 4
            }
            .to_string(),
            "beam:8"
        );
        assert_eq!(
            Scheduler::Local { iterations: 200 }.to_string(),
            "local:200"
        );
    }

    #[test]
    fn parsing_roundtrips_display_names() {
        for s in default_suite() {
            let parsed = s.to_string().parse::<Scheduler>().unwrap();
            match (parsed, s) {
                // The display form `beam:<width>` intentionally omits the
                // branch; parsing restores the default branch instead.
                (Scheduler::Beam { width: pw, .. }, Scheduler::Beam { width, .. }) => {
                    assert_eq!(pw, width);
                }
                (parsed, s) => assert_eq!(parsed, s),
            }
        }
        assert_eq!(
            "beam:8:4".parse::<Scheduler>().unwrap(),
            Scheduler::Beam {
                width: 8,
                branch: 4
            }
        );
        assert_eq!(
            "local:120".parse::<Scheduler>().unwrap(),
            Scheduler::Local { iterations: 120 }
        );
        for bad in [
            "",
            "greedy",
            "greedy:belady",
            "greedy:belady:dfs:extra",
            "beam:0",
            "beam:x",
            "local:y",
            "annealing:3",
        ] {
            assert!(bad.parse::<Scheduler>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn best_of_suite_never_loses_to_baseline() {
        for dag in [fig1_full().dag, fft(16).dag] {
            for r in [2usize, 4, 8] {
                let (_, _, best) = best_prbp(&dag, r, &default_suite()).unwrap();
                let base = Scheduler::Baseline
                    .run_prbp(&dag, r)
                    .unwrap()
                    .validate(&dag, pebble_game::prbp::PrbpConfig::new(r))
                    .unwrap();
                assert!(best <= base, "best {best} > baseline {base}");
            }
        }
    }

    #[test]
    fn rbp_suite_respects_capacity() {
        let dag = fig1_full().dag;
        assert!(Scheduler::Baseline.run_rbp(&dag, 2).is_none());
        assert!(Scheduler::Beam {
            width: 4,
            branch: 4
        }
        .run_rbp(&dag, 8)
        .is_none());
        let t = Scheduler::Greedy {
            policy: PolicyKind::Lru,
            order: OrderKind::Natural,
        }
        .run_rbp(&dag, 4)
        .unwrap();
        assert!(t
            .validate(&dag, pebble_game::rbp::RbpConfig::new(4))
            .is_ok());
    }
}

//! Partition construction and validation (E8, E9 families).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebble_bounds::counterexample::{partition_from_pebbling, prbp_trivial_trace};
use pebble_bounds::from_pebbling::{dominator_partition_from_prbp, edge_partition_from_prbp};
use pebble_dag::generators::{kary_tree, matvec, spartition_counterexample};
use pebble_game::strategies;

fn bench_trace_to_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_to_partition");
    group.sample_size(10);
    let mv = matvec(8);
    let trace = strategies::matvec::prbp_streaming(&mv);
    group.bench_function("edge_partition_matvec_m8", |b| {
        b.iter(|| edge_partition_from_prbp(&mv.dag, &trace, 11))
    });
    group.bench_function("dominator_partition_matvec_m8", |b| {
        b.iter(|| dominator_partition_from_prbp(&mv.dag, &trace, 11))
    });
    let tree = kary_tree(2, 6);
    let tree_trace = strategies::tree::prbp_tree(&tree);
    group.bench_function("edge_partition_tree_d6", |b| {
        b.iter(|| edge_partition_from_prbp(&tree.dag, &tree_trace, 3))
    });
    group.finish();
}

fn bench_partition_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_validation");
    group.sample_size(10);
    let mv = matvec(6);
    let trace = strategies::matvec::prbp_streaming(&mv);
    let ep = edge_partition_from_prbp(&mv.dag, &trace, 9);
    group.bench_function("validate_edge_partition_matvec_m6", |b| {
        b.iter(|| ep.validate(&mv.dag, 18).unwrap())
    });
    group.finish();
}

fn bench_counterexample(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_5_4_counterexample");
    group.sample_size(10);
    for size in [50usize, 200] {
        let cx = spartition_counterexample(size);
        group.bench_with_input(
            BenchmarkId::new("pebble_and_partition", size),
            &cx,
            |b, cx| {
                b.iter(|| {
                    let trace = prbp_trivial_trace(cx);
                    let p = partition_from_pebbling(cx);
                    (trace.io_cost(), p.class_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_to_partition,
    bench_partition_validation,
    bench_counterexample
);
criterion_main!(benches);

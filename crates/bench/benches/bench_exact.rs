//! Exact-solver latency on the paper's gadget DAGs (E1, E6, E15 families).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebble_dag::generators::{binary_tree, chained_gadgets, fig1_full};
use pebble_game::exact::{self, SearchConfig};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;

fn bench_fig1(c: &mut Criterion) {
    let f = fig1_full();
    let mut group = c.benchmark_group("exact_fig1_r4");
    group.sample_size(10);
    group.bench_function("rbp", |b| {
        b.iter(|| {
            exact::optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap()
        })
    });
    group.bench_function("prbp", |b| {
        b.iter(|| {
            exact::optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap()
        })
    });
    group.finish();
}

fn bench_binary_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_binary_tree_r3");
    group.sample_size(10);
    for depth in [2usize, 3] {
        let dag = binary_tree(depth);
        group.bench_with_input(BenchmarkId::new("rbp", depth), &dag, |b, dag| {
            b.iter(|| {
                exact::optimal_rbp_cost(dag, RbpConfig::new(3), SearchConfig::default()).unwrap()
            })
        });
    }
    let small = binary_tree(2);
    group.bench_function("prbp/2", |b| {
        b.iter(|| {
            exact::optimal_prbp_cost(&small, PrbpConfig::new(3), SearchConfig::default()).unwrap()
        })
    });
    group.finish();
}

fn bench_chained_gadgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_chained_gadgets_r4");
    group.sample_size(10);
    {
        let copies = 1usize;
        let g = chained_gadgets(copies);
        group.bench_with_input(BenchmarkId::new("prbp", copies), &g.dag, |b, dag| {
            b.iter(|| {
                exact::optimal_prbp_cost(dag, PrbpConfig::new(4), SearchConfig::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_binary_tree,
    bench_chained_gadgets
);
criterion_main!(benches);

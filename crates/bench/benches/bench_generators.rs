//! DAG generator and substrate throughput (construction, topological
//! utilities, minimum dominators) — the substrate every experiment builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebble_dag::generators::{attention_qk, fft, matmul, random_layered, RandomLayeredConfig};
use pebble_dag::{dominators, topo, BitSet};
use pebble_hardness::reduction48;
use pebble_hardness::UGraph;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for m in [1024usize, 4096] {
        group.bench_with_input(BenchmarkId::new("fft", m), &m, |b, &m| b.iter(|| fft(m)));
    }
    group.bench_function("matmul_16", |b| b.iter(|| matmul(16, 16, 16)));
    group.bench_function("attention_qk_32_4", |b| b.iter(|| attention_qk(32, 4)));
    group.bench_function("reduction48_c5", |b| {
        let g = UGraph::cycle(5);
        b.iter(|| reduction48::build(&g, 0))
    });
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    let dag = random_layered(RandomLayeredConfig {
        layers: 12,
        width: 64,
        max_in_degree: 4,
        seed: 7,
    });
    group.bench_function("topological_order_768_nodes", |b| {
        b.iter(|| topo::topological_order(&dag))
    });
    group.bench_function("levels_768_nodes", |b| b.iter(|| topo::levels(&dag)));
    let sinks = BitSet::from_indices(dag.node_count(), dag.sinks().iter().map(|v| v.index()));
    group.bench_function("min_dominator_sinks_768_nodes", |b| {
        b.iter(|| dominators::min_dominator_size(&dag, &sinks))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_substrate);
criterion_main!(benches);

//! Strategy generation + validated replay for the structured workloads
//! (E2, E3, E4, E6, E10, E11, E12 families).

use bench::{replay_prbp, replay_rbp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebble_dag::generators::{
    attention_full, chained_gadgets, fft, kary_tree, matmul, matvec, zipper,
};
use pebble_game::strategies;

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec_prop_4_3");
    group.sample_size(10);
    for m in [8usize, 16, 32] {
        let g = matvec(m);
        group.bench_with_input(BenchmarkId::new("prbp_streaming", m), &g, |b, g| {
            b.iter(|| {
                let t = strategies::matvec::prbp_streaming(g);
                replay_prbp(&g.dag, &t, m + 3)
            })
        });
        group.bench_with_input(BenchmarkId::new("rbp_row_by_row", m), &g, |b, g| {
            b.iter(|| {
                let t = strategies::matvec::rbp_row_by_row(g);
                replay_rbp(&g.dag, &t, 2 * m)
            })
        });
    }
    group.finish();
}

fn bench_trees_and_zipper(c: &mut Criterion) {
    let mut group = c.benchmark_group("trees_and_zipper");
    group.sample_size(10);
    for d in [6usize, 8] {
        let tree = kary_tree(2, d);
        group.bench_with_input(BenchmarkId::new("binary_tree_prbp", d), &tree, |b, tree| {
            b.iter(|| {
                let t = strategies::tree::prbp_tree(tree);
                replay_prbp(&tree.dag, &t, 3)
            })
        });
    }
    let z = zipper(5, 20);
    group.bench_function("zipper_prbp_d5_l20", |b| {
        b.iter(|| {
            let t = strategies::zipper::prbp_zipper(&z);
            replay_prbp(&z.dag, &t, 7)
        })
    });
    group.finish();
}

fn bench_linear_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("chained_gadgets_prop_4_7");
    group.sample_size(10);
    for copies in [16usize, 64, 256] {
        let g = chained_gadgets(copies);
        group.bench_with_input(BenchmarkId::new("prbp", copies), &g, |b, g| {
            b.iter(|| {
                let t = strategies::chain_gadget::prbp_trace(g);
                replay_prbp(&g.dag, &t, 4)
            })
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_section_6_3");
    group.sample_size(10);
    for m in [256usize, 1024] {
        let f = fft(m);
        group.bench_with_input(BenchmarkId::new("fft_blocked_r16", m), &f, |b, f| {
            b.iter(|| {
                let t = strategies::fft::prbp_blocked(f, 16).unwrap();
                replay_prbp(&f.dag, &t, 16)
            })
        });
    }
    let mm = matmul(10, 10, 10);
    group.bench_function("matmul_tiled_m10_r25", |b| {
        b.iter(|| {
            let t = strategies::matmul::prbp_tiled(&mm, 25).unwrap();
            replay_prbp(&mm.dag, &t, 25)
        })
    });
    let att = attention_full(12, 2);
    group.bench_function("attention_streaming_m12_d2_r19", |b| {
        b.iter(|| {
            let t = strategies::attention::prbp_streaming(&att, 19).unwrap();
            replay_prbp(&att.dag, &t, 19)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_trees_and_zipper,
    bench_linear_gap,
    bench_kernels
);
criterion_main!(benches);

//! Shared helpers for the Criterion benchmark suites.
//!
//! The benchmarks mirror the experiment families of `pebble-experiments`
//! (which print the paper's tables); here the same workloads are measured for
//! *throughput* of the library itself — simulator replay speed, exact-solver
//! latency on the gadget DAGs, strategy generation and partition
//! construction.

#![deny(missing_docs)]

pub mod sched_baseline;
pub mod solver_baseline;

use pebble_dag::Dag;
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use pebble_game::trace::{PrbpTrace, RbpTrace};

/// Read and parse a committed baseline JSON document, with the tool name
/// prefixed to any error. The baseline binaries call this *before* writing
/// their own measurement to `--out`: with the default paths both point at
/// the committed file, and writing first would gate the fresh run against
/// itself while silently clobbering the baseline.
pub fn load_baseline<T: serde::Deserialize>(tool: &str, path: &str) -> Result<T, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{tool}: cannot read baseline {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{tool}: cannot parse baseline {path}: {e:?}"))
}

/// Replay an RBP trace and return its validated cost (panics on an invalid
/// trace — benchmarks must only measure correct pebblings).
pub fn replay_rbp(dag: &Dag, trace: &RbpTrace, r: usize) -> usize {
    trace
        .validate(dag, RbpConfig::new(r))
        .expect("benchmark trace must be valid")
}

/// Replay a PRBP trace and return its validated cost.
pub fn replay_prbp(dag: &Dag, trace: &PrbpTrace, r: usize) -> usize {
    trace
        .validate(dag, PrbpConfig::new(r))
        .expect("benchmark trace must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::fig1_full;
    use pebble_game::strategies::fig1;

    #[test]
    fn replay_helpers_return_costs() {
        let f = fig1_full();
        assert_eq!(replay_rbp(&f.dag, &fig1::rbp_optimal_trace(&f), 4), 3);
        assert_eq!(replay_prbp(&f.dag, &fig1::prbp_optimal_trace(&f), 4), 2);
    }
}

//! Emit (and optionally gate on) the exact-solver benchmark baseline.
//!
//! ```text
//! bench_solvers [--quick] [--reps N] [--threads N] [--out PATH]
//!               [--check BASELINE] [--tolerance PCT] [--time-tolerance PCT]
//!               [--no-time-gate]
//! ```
//!
//! Runs the E1–E9 solver corpus with every heuristic, writes the results as
//! JSON to `--out` (default `BENCH_solvers.json` in the current directory),
//! and, when `--check` names a committed baseline, exits nonzero if the
//! expanded-state count of any (instance, heuristic) pair regressed by more
//! than `--tolerance` percent (default 25) or its median solver time by more
//! than `--time-tolerance` percent (default 100). Expanded-state counts are
//! deterministic and hardware-independent — the precise gate; wall-clock is
//! a loose backstop, only gated above a 5 ms noise floor, and only
//! meaningful when the baseline was produced on comparable hardware — pass
//! `--no-time-gate` to skip it entirely (what CI does: its runners are a
//! different machine class than whoever committed the baseline).

use bench::solver_baseline::{self, SolverBaseline};
use std::process::ExitCode;

struct Args {
    quick: bool,
    reps: Option<usize>,
    threads: usize,
    out: String,
    check: Option<String>,
    tolerance: u64,
    time_tolerance: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        reps: None,
        threads: pebble_experiments::runner::default_threads(),
        out: "BENCH_solvers.json".to_string(),
        check: None,
        tolerance: 25,
        time_tolerance: Some(100),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--reps" => {
                args.reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--time-tolerance" => {
                args.time_tolerance = Some(
                    value("--time-tolerance")?
                        .parse()
                        .map_err(|e| format!("--time-tolerance: {e}"))?,
                )
            }
            "--no-time-gate" => args.time_tolerance = None,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_solvers: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mode, reps) = if args.quick {
        ("quick", args.reps.unwrap_or(3))
    } else {
        ("full", args.reps.unwrap_or(9))
    };

    // Read the gate baseline before any measurement is written (see
    // `bench::load_baseline`).
    let baseline: Option<SolverBaseline> = match &args.check {
        None => None,
        Some(check_path) => match bench::load_baseline("bench_solvers", check_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!(
        "bench_solvers: sweeping {} instances x {} heuristics ({mode}, {reps} reps, {} threads)",
        solver_baseline::corpus().len(),
        solver_baseline::heuristic_names().len(),
        args.threads
    );
    let current = solver_baseline::run(mode, reps, args.threads);

    let json = serde_json::to_string(&current).expect("baseline serialises");
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("bench_solvers: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("bench_solvers: wrote {}", args.out);

    for inst in &current.instances {
        let zero = inst
            .heuristics
            .iter()
            .find(|h| h.heuristic == "zero")
            .map(|h| h.expanded)
            .unwrap_or(0);
        let line: Vec<String> = inst
            .heuristics
            .iter()
            .map(|h| {
                format!(
                    "{}={} ({:.1}x)",
                    h.heuristic,
                    h.expanded,
                    zero as f64 / h.expanded.max(1) as f64
                )
            })
            .collect();
        eprintln!(
            "  {:<18} {:<5} r={:<2} expanded: {}",
            inst.id,
            inst.model,
            inst.r,
            line.join("  ")
        );
    }

    for e in &current.engine {
        eprintln!(
            "  {:<18} {:<5} r={:<2} engine w={} ({} used): cost={} expanded={} {:.1}M exp/s",
            e.id,
            e.model,
            e.r,
            e.workers,
            e.workers_used,
            e.cost,
            e.expanded,
            e.throughput as f64 / 1e6
        );
    }

    let (Some(baseline), Some(check_path)) = (baseline, args.check) else {
        return ExitCode::SUCCESS;
    };
    let regressions =
        solver_baseline::regressions(&baseline, &current, args.tolerance, args.time_tolerance);
    if regressions.is_empty() {
        let time_gate = match args.time_tolerance {
            Some(pct) => format!("time +{pct}%"),
            None => "time gate off".to_string(),
        };
        eprintln!(
            "bench_solvers: no regressions vs {check_path} (expanded +{}%, {time_gate})",
            args.tolerance
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_solvers: {} regression(s) vs {check_path}:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  REGRESSION: {r}");
        }
        ExitCode::FAILURE
    }
}

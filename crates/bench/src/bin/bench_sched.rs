//! Emit (and optionally gate on) the scheduler benchmark baseline.
//!
//! ```text
//! bench_sched [--threads N] [--out PATH] [--check BASELINE]
//! ```
//!
//! Sweeps the E16 scheduling corpus through the full `pebble-sched`
//! portfolio, writes the results as JSON to `--out` (default
//! `BENCH_sched.json` in the current directory) and, when `--check` names a
//! committed baseline, exits nonzero on *any* difference: scheduler costs
//! are deterministic — seeded local search, id-ordered tie-breaks, no
//! wall-clock in the document — so the gate is exact and machine
//! independent. Refresh the committed baseline by re-running this binary and
//! committing the file whenever scheduler behaviour changes intentionally.

use bench::sched_baseline::{self, SchedBaseline};
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: pebble_experiments::runner::default_threads(),
        out: "BENCH_sched.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_sched: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Read the gate baseline before any measurement is written (see
    // `bench::load_baseline`).
    let baseline: Option<SchedBaseline> = match &args.check {
        None => None,
        Some(check_path) => match bench::load_baseline("bench_sched", check_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!(
        "bench_sched: sweeping the scheduling corpus ({} threads)",
        args.threads
    );
    let current = sched_baseline::run(args.threads);

    let json = serde_json::to_string(&current).expect("baseline serialises");
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("bench_sched: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("bench_sched: wrote {}", args.out);

    let (Some(baseline), Some(check_path)) = (baseline, args.check) else {
        return ExitCode::SUCCESS;
    };
    let diffs = sched_baseline::diffs(&baseline, &current);
    if diffs.is_empty() {
        eprintln!("bench_sched: baseline matches {check_path} exactly");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_sched: {} difference(s) vs {check_path}:",
            diffs.len()
        );
        for d in &diffs {
            eprintln!("  DIFF: {d}");
        }
        ExitCode::FAILURE
    }
}

//! The CI-tracked scheduler benchmark baseline (`BENCH_sched.json`).
//!
//! The E16 scheduling corpus (`pebble_experiments::e16_sched`) is swept
//! through the full scheduler portfolio; per (instance, scheduler) the
//! simulator-replayed cost and move count are recorded, together with the
//! per-instance admissible lower bounds and the resulting best certified
//! gap. Unlike the solver baseline there is no wall-clock in the document at
//! all: every scheduler is deterministic (seeded local search, id-ordered
//! tie-breaks), so the committed baseline is gated *exactly* — any cost
//! change is a real behaviour change that must be committed consciously.
//! Wall-clock per instance goes to stderr for eyeballing only.

use pebble_experiments::e16_sched::{self, SchedInstance};
use serde::{Deserialize, Serialize};

/// One (instance, scheduler) measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerResult {
    /// Scheduler identifier (`greedy:belady:natural`, `beam:8`, `tiled`, …).
    pub scheduler: String,
    /// Simulator-replayed I/O cost.
    pub cost: usize,
    /// Number of moves in the validated trace.
    pub moves: usize,
}

/// All measurements for one corpus instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceResult {
    /// Stable instance id.
    pub id: String,
    /// `"rbp"` or `"prbp"`.
    pub model: String,
    /// Cache size.
    pub r: usize,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Best admissible lower bound on the optimal I/O cost.
    pub best_bound: usize,
    /// Per-scheduler results in sweep order.
    pub schedulers: Vec<SchedulerResult>,
    /// Cheapest cost across the portfolio.
    pub best_cost: usize,
    /// Certified optimality gap `best_cost / best_bound`.
    pub gap: f64,
}

/// The complete baseline document. Fully deterministic: regenerating it on
/// any machine must reproduce it byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedBaseline {
    /// Schema version of this document.
    pub schema: usize,
    /// One entry per corpus instance.
    pub instances: Vec<InstanceResult>,
}

/// Measure one corpus instance: sweep its portfolio and assemble the record.
pub fn measure(inst: &SchedInstance) -> InstanceResult {
    let reports = e16_sched::sweep_instance(inst);
    assert!(!reports.is_empty(), "{}: empty portfolio", inst.id);
    let best_bound = reports
        .iter()
        .map(|rep| rep.best_bound)
        .max()
        .expect("non-empty");
    let best_cost = reports.iter().map(|rep| rep.cost).min().expect("non-empty");
    InstanceResult {
        id: inst.id.to_string(),
        model: inst.model.short_name().to_string(),
        r: inst.r,
        nodes: inst.dag.node_count(),
        edges: inst.dag.edge_count(),
        best_bound,
        schedulers: reports
            .iter()
            .map(|rep| SchedulerResult {
                scheduler: rep.scheduler.clone(),
                cost: rep.cost,
                moves: rep.moves,
            })
            .collect(),
        best_cost,
        gap: best_cost as f64 / best_bound as f64,
    }
}

/// Sweep the whole corpus across `threads` workers and assemble the baseline.
pub fn run(threads: usize) -> SchedBaseline {
    let corpus = e16_sched::corpus();
    let instances = pebble_experiments::runner::run_parallel_with_threads(
        corpus.iter().collect::<Vec<_>>(),
        |inst| {
            let t0 = std::time::Instant::now();
            let result = measure(inst);
            eprintln!(
                "  {:<16} {:<5} r={:<4} best {:>8} / lb {:>6} (gap {:.2}) [{} ms]",
                result.id,
                result.model,
                result.r,
                result.best_cost,
                result.best_bound,
                result.gap,
                t0.elapsed().as_millis()
            );
            result
        },
        threads,
    );
    SchedBaseline {
        schema: 1,
        instances,
    }
}

/// Compare a fresh run against the committed baseline. Scheduler costs are
/// deterministic, so the gate is *exact*: any difference in cost, move
/// count, bound or corpus shape is reported. Returns human-readable
/// regression lines; empty means the gate passes.
pub fn diffs(baseline: &SchedBaseline, current: &SchedBaseline) -> Vec<String> {
    let mut out = Vec::new();
    for base_inst in &baseline.instances {
        let Some(cur_inst) = current
            .instances
            .iter()
            .find(|i| i.id == base_inst.id && i.model == base_inst.model && i.r == base_inst.r)
        else {
            out.push(format!(
                "{} ({}, r={}): instance missing from current run",
                base_inst.id, base_inst.model, base_inst.r
            ));
            continue;
        };
        if cur_inst.best_bound != base_inst.best_bound {
            out.push(format!(
                "{} ({}): best bound {} -> {}",
                base_inst.id, base_inst.model, base_inst.best_bound, cur_inst.best_bound
            ));
        }
        for base_s in &base_inst.schedulers {
            let Some(cur_s) = cur_inst
                .schedulers
                .iter()
                .find(|s| s.scheduler == base_s.scheduler)
            else {
                out.push(format!(
                    "{} ({}) [{}]: scheduler missing from current run",
                    base_inst.id, base_inst.model, base_s.scheduler
                ));
                continue;
            };
            if cur_s.cost != base_s.cost || cur_s.moves != base_s.moves {
                out.push(format!(
                    "{} ({}) [{}]: cost {} -> {}, moves {} -> {}",
                    base_inst.id,
                    base_inst.model,
                    base_s.scheduler,
                    base_s.cost,
                    cur_s.cost,
                    base_s.moves,
                    cur_s.moves
                ));
            }
        }
        for cur_s in &cur_inst.schedulers {
            if !base_inst
                .schedulers
                .iter()
                .any(|s| s.scheduler == cur_s.scheduler)
            {
                out.push(format!(
                    "{} ({}) [{}]: scheduler missing from baseline (refresh it)",
                    base_inst.id, base_inst.model, cur_s.scheduler
                ));
            }
        }
    }
    for cur_inst in &current.instances {
        if !baseline
            .instances
            .iter()
            .any(|i| i.id == cur_inst.id && i.model == cur_inst.model && i.r == cur_inst.r)
        {
            out.push(format!(
                "{} ({}, r={}): instance missing from baseline (refresh it)",
                cur_inst.id, cur_inst.model, cur_inst.r
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(cost: usize) -> SchedBaseline {
        SchedBaseline {
            schema: 1,
            instances: vec![InstanceResult {
                id: "x".into(),
                model: "prbp".into(),
                r: 4,
                nodes: 10,
                edges: 12,
                best_bound: 6,
                schedulers: vec![SchedulerResult {
                    scheduler: "beam:1".into(),
                    cost,
                    moves: 30,
                }],
                best_cost: cost,
                gap: cost as f64 / 6.0,
            }],
        }
    }

    #[test]
    fn identical_baselines_have_no_diffs() {
        assert!(diffs(&tiny(12), &tiny(12)).is_empty());
    }

    #[test]
    fn any_cost_change_is_flagged() {
        assert_eq!(diffs(&tiny(12), &tiny(13)).len(), 1);
        assert_eq!(diffs(&tiny(13), &tiny(12)).len(), 1, "improvements too");
    }

    #[test]
    fn corpus_shape_changes_are_flagged_both_ways() {
        let b = tiny(12);
        let mut c = tiny(12);
        c.instances[0].schedulers.push(SchedulerResult {
            scheduler: "new".into(),
            cost: 1,
            moves: 2,
        });
        assert_eq!(diffs(&b, &c).len(), 1);
        let mut empty = tiny(12);
        empty.instances.clear();
        assert_eq!(diffs(&b, &empty).len(), 1);
        assert_eq!(diffs(&empty, &b).len(), 1);
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let b = tiny(42);
        let s = serde_json::to_string(&b).unwrap();
        let back: SchedBaseline = serde_json::from_str(&s).unwrap();
        assert_eq!(b, back);
    }
}

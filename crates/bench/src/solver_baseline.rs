//! The CI-tracked exact-solver benchmark baseline (`BENCH_solvers.json`).
//!
//! A corpus of small instances from the paper's E1–E9 experiment families is
//! solved with every shipped A* heuristic. Two metrics are recorded per
//! (instance, heuristic) pair:
//!
//! * **expanded** — states expanded by the search. Deterministic and
//!   hardware-independent: the metric regressions are gated on.
//! * **median_ns** — median wall-clock nanoseconds over the configured
//!   repetitions. Machine-dependent; the gate applies a tolerance and a
//!   floor so timer noise on sub-millisecond searches cannot fail CI, and
//!   can be disabled entirely for cross-machine comparisons.
//!
//! The `bench_solvers` binary sweeps the corpus across all cores, writes the
//! JSON, and — given `--check <baseline>` — fails when a gated metric
//! regresses by more than the configured percentage against the committed
//! baseline.

use pebble_dag::generators::{
    binary_tree, chained_gadgets, fig1_full, kary_tree, matvec, pebble_collection, zipper,
};
use pebble_dag::Dag;
use pebble_game::engine::{self as engine, EngineConfig, HeuristicSpec};
use pebble_game::exact::{
    self, LoadCountHeuristic, LowerBound, SearchConfig, Solved, ZeroHeuristic,
};
use pebble_game::prbp::PrbpConfig;
use pebble_game::rbp::RbpConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (instance, heuristic) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicResult {
    /// Heuristic name ([`LowerBound::name`]).
    pub heuristic: String,
    /// Optimal cost found (identical across heuristics by admissibility).
    pub cost: usize,
    /// States expanded — the hardware-independent regression metric.
    pub expanded: usize,
    /// Successor states generated.
    pub generated: usize,
    /// Distinct states interned in the transposition table.
    pub distinct: usize,
    /// Median wall-clock nanoseconds across repetitions.
    pub median_ns: u64,
}

/// All measurements for one instance of the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceResult {
    /// Stable instance id (`<experiment-family>-<workload>`).
    pub id: String,
    /// `"rbp"` or `"prbp"`.
    pub model: String,
    /// Cache size used.
    pub r: usize,
    /// Node count of the DAG.
    pub nodes: usize,
    /// Edge count of the DAG.
    pub edges: usize,
    /// Per-heuristic measurements, in [`heuristic_names`] order.
    pub heuristics: Vec<HeuristicResult>,
}

/// One unified-engine measurement at a fixed worker count (schema 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineResult {
    /// Stable instance id (matches [`InstanceResult::id`]).
    pub id: String,
    /// `"rbp"` or `"prbp"`.
    pub model: String,
    /// Cache size used.
    pub r: usize,
    /// Requested worker count; 0 means "all available cores", so the gate
    /// key stays machine-independent.
    pub workers: usize,
    /// Workers the measuring machine actually ran.
    pub workers_used: usize,
    /// Proven optimal cost — identical at every worker count by the
    /// engine's answer-determinism, and gated as such.
    pub cost: usize,
    /// States expanded, aggregated across workers. Deterministic (and
    /// gated) only at `workers = 1`; informational above.
    pub expanded: usize,
    /// Median wall-clock nanoseconds across repetitions.
    pub median_ns: u64,
    /// Expansion throughput (expanded states per second at the median) —
    /// how the sequential-vs-parallel engine comparison is read.
    pub throughput: u64,
}

/// The complete baseline document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverBaseline {
    /// Schema version of this document.
    pub schema: usize,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Wall-clock repetitions per measurement.
    pub reps: usize,
    /// One entry per corpus instance.
    pub instances: Vec<InstanceResult>,
    /// Unified-engine measurements at workers = 1 vs workers = all, on the
    /// heavy end of the corpus (schema >= 2; refresh schema-1 baselines).
    pub engine: Vec<EngineResult>,
}

/// One solvable workload of the corpus.
pub struct InstanceSpec {
    /// Stable instance id.
    pub id: &'static str,
    /// `"rbp"` or `"prbp"`.
    pub model: &'static str,
    /// Cache size.
    pub r: usize,
    /// The DAG to pebble.
    pub dag: Dag,
}

/// The benchmark corpus: one or two models per workload, drawn from the
/// E1–E9 experiment families, sized so that even the Zero-heuristic
/// (uniform-cost) search completes in well under a second per instance.
pub fn corpus() -> Vec<InstanceSpec> {
    let fig1 = fig1_full();
    let spec = |id, model, r, dag| InstanceSpec { id, model, r, dag };
    vec![
        spec("e01-fig1", "rbp", 4, fig1.dag.clone()),
        spec("e01-fig1", "prbp", 4, fig1.dag),
        spec("e02-matvec2", "prbp", 5, matvec(2).dag),
        spec("e03-zipper-d2", "rbp", 4, zipper(2, 3).dag),
        spec("e03-zipper-d2", "prbp", 4, zipper(2, 3).dag),
        spec("e04-tree-d3", "rbp", 3, binary_tree(3)),
        spec("e04-tree-d2", "prbp", 3, kary_tree(2, 2).dag),
        spec("e05-collection-d2", "prbp", 4, pebble_collection(2, 3).dag),
        // Two gadget copies: a single copy is structurally the Figure 1 DAG
        // already measured as e01-fig1.
        spec("e06-chain2", "rbp", 4, chained_gadgets(2).dag),
        spec("e06-chain2", "prbp", 4, chained_gadgets(2).dag),
        spec("e09-zipper-d3", "prbp", 5, zipper(3, 4).dag),
    ]
}

/// The heuristics measured for every instance, in output order.
pub fn heuristic_names() -> Vec<&'static str> {
    vec!["zero", "load-count", "s-dominator", "s-edge"]
}

fn heuristic_by_name(name: &str) -> Box<dyn LowerBound> {
    match name {
        "zero" => Box::new(ZeroHeuristic),
        "load-count" => Box::new(LoadCountHeuristic),
        "s-dominator" => Box::new(pebble_bounds::SDominatorHeuristic::new()),
        "s-edge" => Box::new(pebble_bounds::SEdgeHeuristic::new()),
        other => panic!("unknown heuristic {other}"),
    }
}

fn solve(spec: &InstanceSpec, heuristic: &dyn LowerBound) -> Solved {
    let search = SearchConfig::default();
    match spec.model {
        "rbp" => exact::optimal_rbp_cost_with(&spec.dag, RbpConfig::new(spec.r), search, heuristic),
        "prbp" => {
            exact::optimal_prbp_cost_with(&spec.dag, PrbpConfig::new(spec.r), search, heuristic)
        }
        other => panic!("unknown model {other}"),
    }
    .expect("corpus instances must be solvable")
}

/// Measure one instance with every heuristic, `reps` timed repetitions each.
pub fn measure(spec: &InstanceSpec, reps: usize) -> InstanceResult {
    let mut heuristics = Vec::new();
    let mut costs = Vec::new();
    for name in heuristic_names() {
        // Untimed warm-up: the first solve pays for allocator growth and cold
        // caches, which would otherwise dominate small-rep medians.
        solve(spec, heuristic_by_name(name).as_ref());
        let mut solved = None;
        let mut times: Vec<u64> = (0..reps.max(1))
            .map(|_| {
                // A fresh heuristic per repetition: the residual caches must
                // not carry over, or later repetitions measure a different
                // (cheaper) search.
                let h = heuristic_by_name(name);
                let t0 = Instant::now();
                let s = solve(spec, h.as_ref());
                let dt = t0.elapsed().as_nanos() as u64;
                solved = Some(s);
                dt
            })
            .collect();
        times.sort_unstable();
        let solved = solved.expect("at least one repetition");
        costs.push(solved.cost);
        heuristics.push(HeuristicResult {
            heuristic: name.to_string(),
            cost: solved.cost,
            expanded: solved.stats.expanded,
            generated: solved.stats.generated,
            distinct: solved.stats.distinct,
            median_ns: times[times.len() / 2],
        });
    }
    assert!(
        costs.windows(2).all(|w| w[0] == w[1]),
        "{} ({}): heuristics disagree on the optimum: {costs:?}",
        spec.id,
        spec.model
    );
    InstanceResult {
        id: spec.id.to_string(),
        model: spec.model.to_string(),
        r: spec.r,
        nodes: spec.dag.node_count(),
        edges: spec.dag.edge_count(),
        heuristics,
    }
}

/// The heavy end of the corpus — the instances where the parallel engine
/// has enough states to distribute for throughput to mean anything.
pub fn engine_corpus() -> Vec<InstanceSpec> {
    corpus()
        .into_iter()
        .filter(|s| {
            matches!(
                (s.id, s.model),
                ("e02-matvec2", "prbp") | ("e04-tree-d3", "rbp") | ("e09-zipper-d3", "prbp")
            )
        })
        .collect()
}

/// The worker counts swept by the engine section: sequential, and "all
/// available cores" (recorded as 0 so the gate key is machine-independent).
pub const ENGINE_WORKER_COUNTS: [usize; 2] = [1, 0];

/// Measure one engine solve of `spec` at `workers` requested workers.
pub fn measure_engine(spec: &InstanceSpec, reps: usize, workers: usize) -> EngineResult {
    let engine_cfg = EngineConfig {
        workers,
        ..EngineConfig::default()
    };
    let make = || Box::new(LoadCountHeuristic) as Box<dyn LowerBound>;
    let run_once = || match spec.model {
        "rbp" => engine::solve_rbp(
            &spec.dag,
            RbpConfig::new(spec.r),
            &engine_cfg,
            HeuristicSpec::PerWorker(&make),
            None,
            None,
        )
        .map(|o| (o.cost, o.proven_optimal, o.stats)),
        "prbp" => engine::solve_prbp(
            &spec.dag,
            PrbpConfig::new(spec.r),
            &engine_cfg,
            HeuristicSpec::PerWorker(&make),
            None,
            None,
        )
        .map(|o| (o.cost, o.proven_optimal, o.stats)),
        other => panic!("unknown model {other}"),
    };
    run_once().expect("warm-up solves"); // untimed warm-up
    let mut last = None;
    let mut times: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let out = run_once().expect("corpus instances must be solvable");
            let dt = t0.elapsed().as_nanos() as u64;
            last = Some(out);
            dt
        })
        .collect();
    times.sort_unstable();
    let (cost, proven, stats) = last.expect("at least one repetition");
    assert!(
        proven,
        "{} ({}): engine failed to prove",
        spec.id, spec.model
    );
    let median_ns = times[times.len() / 2];
    let workers_used = match workers {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        w => w,
    };
    EngineResult {
        id: spec.id.to_string(),
        model: spec.model.to_string(),
        r: spec.r,
        workers,
        workers_used,
        cost,
        expanded: stats.expanded,
        median_ns,
        throughput: (stats.expanded as u128 * 1_000_000_000 / median_ns.max(1) as u128) as u64,
    }
}

/// Sweep the whole corpus across `threads` workers and assemble the
/// baseline document.
pub fn run(mode: &str, reps: usize, threads: usize) -> SolverBaseline {
    let instances = pebble_experiments::runner::run_parallel_with_threads(
        corpus(),
        |spec| measure(&spec, reps),
        threads,
    );
    // The engine sweep runs serially: its parallel rows own the machine, so
    // concurrent measurements would corrupt each other's wall clock.
    let mut engine = Vec::new();
    for spec in engine_corpus() {
        for workers in ENGINE_WORKER_COUNTS {
            engine.push(measure_engine(&spec, reps, workers));
        }
    }
    SolverBaseline {
        schema: 2,
        mode: mode.to_string(),
        reps,
        instances,
        engine,
    }
}

/// Wall-clock regressions below this baseline value are ignored entirely:
/// sub-5ms searches are dominated by timer and allocator noise.
pub const TIME_FLOOR_NS: u64 = 5_000_000;

/// Compare a fresh run against a committed baseline. Returns a list of
/// human-readable regression descriptions; empty means the gate passes.
///
/// * `expanded` is compared with `tolerance_pct` headroom. It is
///   deterministic and hardware-independent, so any growth is a real
///   algorithmic regression and the default tolerance is tight (25%);
/// * `median_ns` is compared with `time_tolerance_pct` headroom, and only
///   when the baseline time is at least [`TIME_FLOOR_NS`]. Wall clock is
///   machine- and load-dependent (well over 25% run-to-run variance on
///   shared CI runners), so its default tolerance is loose (100%) — a
///   backstop against order-of-magnitude constant-factor regressions that
///   leave the expansion counts unchanged. It is only meaningful when both
///   runs came from comparable hardware; pass `None` to disable the time
///   gate entirely (cross-machine comparisons, e.g. CI vs a committed
///   developer baseline).
///
/// Instances or heuristics missing from either side are reported too — a
/// silently shrinking corpus would otherwise read as "no regressions".
pub fn regressions(
    baseline: &SolverBaseline,
    current: &SolverBaseline,
    tolerance_pct: u64,
    time_tolerance_pct: Option<u64>,
) -> Vec<String> {
    let mut out = Vec::new();
    let factor = |v: u64| v.saturating_mul(100 + tolerance_pct) / 100;
    for base_inst in &baseline.instances {
        let Some(cur_inst) = current
            .instances
            .iter()
            .find(|i| i.id == base_inst.id && i.model == base_inst.model)
        else {
            out.push(format!(
                "{} ({}): instance missing from current run",
                base_inst.id, base_inst.model
            ));
            continue;
        };
        for base_h in &base_inst.heuristics {
            let Some(cur_h) = cur_inst
                .heuristics
                .iter()
                .find(|h| h.heuristic == base_h.heuristic)
            else {
                out.push(format!(
                    "{} ({}) [{}]: heuristic missing from current run",
                    base_inst.id, base_inst.model, base_h.heuristic
                ));
                continue;
            };
            if cur_h.cost != base_h.cost {
                out.push(format!(
                    "{} ({}) [{}]: optimum changed {} -> {} (correctness!)",
                    base_inst.id, base_inst.model, base_h.heuristic, base_h.cost, cur_h.cost
                ));
            }
            if cur_h.expanded as u64 > factor(base_h.expanded as u64) {
                out.push(format!(
                    "{} ({}) [{}]: expanded {} -> {} (> +{tolerance_pct}%)",
                    base_inst.id,
                    base_inst.model,
                    base_h.heuristic,
                    base_h.expanded,
                    cur_h.expanded
                ));
            }
            if let Some(time_pct) = time_tolerance_pct {
                let limit = base_h.median_ns.saturating_mul(100 + time_pct) / 100;
                if base_h.median_ns >= TIME_FLOOR_NS && cur_h.median_ns > limit {
                    out.push(format!(
                        "{} ({}) [{}]: median {} ns -> {} ns (> +{time_pct}%)",
                        base_inst.id,
                        base_inst.model,
                        base_h.heuristic,
                        base_h.median_ns,
                        cur_h.median_ns
                    ));
                }
            }
        }
    }
    for base_e in &baseline.engine {
        let Some(cur_e) = current
            .engine
            .iter()
            .find(|e| e.id == base_e.id && e.model == base_e.model && e.workers == base_e.workers)
        else {
            out.push(format!(
                "{} ({}) [engine w={}]: row missing from current run",
                base_e.id, base_e.model, base_e.workers
            ));
            continue;
        };
        if cur_e.cost != base_e.cost {
            out.push(format!(
                "{} ({}) [engine w={}]: optimum changed {} -> {} (correctness!)",
                base_e.id, base_e.model, base_e.workers, base_e.cost, cur_e.cost
            ));
        }
        // Only the sequential engine's expansion count is deterministic;
        // parallel rows are throughput telemetry, gated on cost alone.
        if base_e.workers == 1 && cur_e.expanded as u64 > factor(base_e.expanded as u64) {
            out.push(format!(
                "{} ({}) [engine w=1]: expanded {} -> {} (> +{tolerance_pct}%)",
                base_e.id, base_e.model, base_e.expanded, cur_e.expanded
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_baseline(expanded: usize, median_ns: u64) -> SolverBaseline {
        SolverBaseline {
            schema: 2,
            mode: "quick".into(),
            reps: 1,
            instances: vec![InstanceResult {
                id: "x".into(),
                model: "rbp".into(),
                r: 4,
                nodes: 1,
                edges: 0,
                heuristics: vec![HeuristicResult {
                    heuristic: "zero".into(),
                    cost: 3,
                    expanded,
                    generated: 0,
                    distinct: 0,
                    median_ns,
                }],
            }],
            engine: vec![EngineResult {
                id: "x".into(),
                model: "rbp".into(),
                r: 4,
                workers: 1,
                workers_used: 1,
                cost: 3,
                expanded: 1000,
                median_ns: 10_000_000,
                throughput: 1,
            }],
        }
    }

    #[test]
    fn identical_runs_have_no_regressions() {
        let b = tiny_baseline(1000, 10_000_000);
        assert!(regressions(&b, &b, 25, Some(100)).is_empty());
    }

    #[test]
    fn expanded_growth_is_flagged() {
        let b = tiny_baseline(1000, 10_000_000);
        let c = tiny_baseline(1300, 10_000_000);
        let regs = regressions(&b, &c, 25, Some(100));
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("expanded"));
        // Within tolerance passes.
        assert!(regressions(&b, &tiny_baseline(1200, 10_000_000), 25, Some(100)).is_empty());
    }

    #[test]
    fn sub_floor_times_are_not_gated() {
        let b = tiny_baseline(1000, 100_000);
        let c = tiny_baseline(1000, 900_000); // 9x slower but under the floor
        assert!(regressions(&b, &c, 25, Some(100)).is_empty());
        let b = tiny_baseline(1000, 10_000_000);
        let c = tiny_baseline(1000, 21_000_000); // > 2x above the floor
        assert_eq!(regressions(&b, &c, 25, Some(100)).len(), 1);
        assert!(regressions(&b, &tiny_baseline(1000, 19_000_000), 25, Some(100)).is_empty());
        // Disabled time gate (cross-machine checks) ignores any slowdown.
        assert!(regressions(&b, &tiny_baseline(1000, u64::MAX), 25, None).is_empty());
    }

    #[test]
    fn engine_rows_gate_cost_everywhere_and_expanded_sequentially() {
        let b = tiny_baseline(1000, 10_000_000);
        // Cost change on the engine row is a correctness regression.
        let mut c = b.clone();
        c.engine[0].cost = 4;
        let regs = regressions(&b, &c, 25, None);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("correctness"));
        // Sequential expansion growth beyond tolerance is flagged...
        let mut c = b.clone();
        c.engine[0].expanded = 1300;
        assert_eq!(regressions(&b, &c, 25, None).len(), 1);
        // ...but the same growth on a parallel row is telemetry only.
        let mut b2 = b.clone();
        b2.engine[0].workers = 4;
        let mut c = b2.clone();
        c.engine[0].expanded = 5000;
        assert!(regressions(&b2, &c, 25, None).is_empty());
        // A vanished engine row is flagged like a vanished instance.
        let mut c = b.clone();
        c.engine.clear();
        assert_eq!(regressions(&b, &c, 25, None).len(), 1);
        // Schema-1 baselines (no engine section) gate nothing extra.
        let mut b1 = b.clone();
        b1.engine.clear();
        assert!(regressions(&b1, &b, 25, None).is_empty());
    }

    #[test]
    fn measure_engine_agrees_with_the_sequential_reference() {
        let specs = corpus();
        let fig1 = specs
            .iter()
            .find(|s| s.id == "e01-fig1" && s.model == "prbp")
            .unwrap();
        let seq = measure_engine(fig1, 1, 1);
        let par = measure_engine(fig1, 1, 4);
        assert_eq!(seq.cost, 2);
        assert_eq!(par.cost, 2, "parallel engine must prove the same optimum");
        assert_eq!(seq.workers_used, 1);
        assert_eq!(par.workers_used, 4);
        assert!(seq.throughput > 0 && par.throughput > 0);
    }

    #[test]
    fn missing_instances_are_flagged() {
        let b = tiny_baseline(1000, 0);
        let mut c = b.clone();
        c.instances.clear();
        assert_eq!(regressions(&b, &c, 25, Some(100)).len(), 1);
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let b = tiny_baseline(42, 7);
        let s = serde_json::to_string(&b).unwrap();
        let back: SolverBaseline = serde_json::from_str(&s).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn measure_smallest_instance_agrees_across_heuristics() {
        let specs = corpus();
        let fig1_rbp = specs
            .iter()
            .find(|s| s.id == "e01-fig1" && s.model == "rbp")
            .unwrap();
        let result = measure(fig1_rbp, 1);
        assert_eq!(result.heuristics.len(), heuristic_names().len());
        assert!(result.heuristics.iter().all(|h| h.cost == 3));
        // The guided searches never expand more than blind Dijkstra.
        let zero = result.heuristics[0].expanded;
        assert!(result.heuristics.iter().all(|h| h.expanded <= zero));
    }
}

//! Binary schedule store: `read ∘ write = id` on random entries (in memory
//! and through the filesystem), plus rejection of every corruption mode the
//! format is designed to detect — flipped bytes, truncation, bad magic,
//! unknown version/opcode/model and trailing garbage.

use pebble_dag::NodeId;
use pebble_game::moves::{Model, PrbpMove};
use pebble_io::store::{decode, encode, read_file, write_file, StoreEntry, StoreError, MAGIC};
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prbp-store-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn move_strategy() -> impl Strategy<Value = PrbpMove> {
    (0u8..5, any::<u32>(), any::<u32>()).prop_map(|(op, a, b)| match op {
        0 => PrbpMove::Save(NodeId(a)),
        1 => PrbpMove::Load(NodeId(a)),
        2 => PrbpMove::PartialCompute {
            from: NodeId(a),
            to: NodeId(b),
        },
        3 => PrbpMove::Delete(NodeId(a)),
        _ => PrbpMove::Clear(NodeId(a)),
    })
}

fn entry_strategy() -> impl Strategy<Value = StoreEntry> {
    (
        proptest::collection::vec(any::<u64>(), 4usize..5),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(move_strategy(), 0usize..64),
        0usize..4,
    )
        .prop_map(|(key, r, cost, moves, bound_count)| StoreEntry {
            key: [key[0], key[1], key[2], key[3]],
            model: Model::Prbp,
            r,
            nodes: cost / 2,
            edges: cost / 3,
            cost,
            best_bound: cost / 2,
            scheduler: "anytime".into(),
            bounds: (0..bound_count)
                .map(|i| (format!("bound-{i}"), cost.wrapping_add(i as u64)))
                .collect(),
            moves,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_encode_is_identity(entry in entry_strategy()) {
        prop_assert_eq!(decode(&encode(&entry)).unwrap(), entry);
    }

    #[test]
    fn single_byte_corruption_is_always_detected(
        entry in entry_strategy(),
        pos_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = encode(&entry);
        let pos = (pos_pick % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(decode(&bad).is_err(), "flip at {} undetected", pos);
    }
}

#[test]
fn file_roundtrip_and_checksum_rejection() {
    let dir = scratch_dir("file");
    let entry = StoreEntry {
        key: [0xA, 0xB, 0xC, 0xD],
        model: Model::Prbp,
        r: 8,
        nodes: 3,
        edges: 2,
        cost: 4,
        best_bound: 2,
        scheduler: "compose".into(),
        bounds: vec![("load-count".into(), 2)],
        moves: vec![
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(2),
            },
            PrbpMove::Save(NodeId(2)),
        ],
    };
    let path = dir.join("entry.sched");
    write_file(&path, &entry).unwrap();
    // The atomic-write temp sibling must not linger.
    assert!(!path.with_extension("tmp").exists());
    assert_eq!(read_file(&path).unwrap(), entry);

    // Corrupt the stored checksum in place: the read must fail closed.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    match read_file(&path) {
        Err(StoreError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum mismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn structural_rejections() {
    let entry = StoreEntry {
        key: [1, 2, 3, 4],
        model: Model::Prbp,
        r: 4,
        nodes: 2,
        edges: 1,
        cost: 2,
        best_bound: 2,
        scheduler: "exact".into(),
        bounds: vec![],
        moves: vec![PrbpMove::Load(NodeId(1))],
    };
    let good = encode(&entry);

    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(decode(&bad), Err(StoreError::BadMagic)));

    // Unsupported version (re-stamp the checksum so only the version is bad).
    let mut bad = good.clone();
    bad[MAGIC.len()] = 99;
    restamp(&mut bad);
    assert!(matches!(
        decode(&bad),
        Err(StoreError::UnsupportedVersion(99))
    ));

    // Unknown model byte sits right after magic + version + key.
    let model_off = MAGIC.len() + 4 + 32;
    let mut bad = good.clone();
    bad[model_off] = 7;
    restamp(&mut bad);
    assert!(matches!(decode(&bad), Err(StoreError::BadModel(7))));

    // Unknown opcode: the single move's opcode is 9 bytes from the end
    // (checksum u64 + node u32 precede it... compute from layout instead).
    let opcode_off = good.len() - 8 - 4 - 1;
    let mut bad = good.clone();
    bad[opcode_off] = 200;
    restamp(&mut bad);
    assert!(matches!(decode(&bad), Err(StoreError::BadOpcode(200))));

    // Trailing garbage after a valid body.
    let mut bad = good[..good.len() - 8].to_vec();
    bad.push(0);
    restamp_append(&mut bad);
    assert!(matches!(decode(&bad), Err(StoreError::TrailingBytes)));

    // Truncation below the minimum header.
    assert!(matches!(decode(&good[..4]), Err(StoreError::Truncated)));
}

/// Recompute and overwrite the trailing checksum after a deliberate edit.
fn restamp(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let sum = fnv1a(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
}

/// Append a freshly-computed checksum over the current bytes.
fn restamp_append(bytes: &mut Vec<u8>) {
    let sum = fnv1a(bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

//! Golden-file snapshots of parse-error messages.
//!
//! Each case under `tests/golden/` is a pair `<name>.in` (malformed input)
//! and `<name>.err` (the exact `Display` rendering of the resulting
//! [`pebble_io::ParseError`]). The messages are part of the user-facing CLI
//! contract — a changed line/column or wording must be committed here
//! consciously.

use pebble_io::{parse, Format};
use std::path::Path;

/// `(case name, format)` — the case prefix names the format under test.
const CASES: &[(&str, Format)] = &[
    ("edgelist_bad_token", Format::EdgeList),
    ("edgelist_missing_endpoint", Format::EdgeList),
    ("edgelist_duplicate_edge", Format::EdgeList),
    ("edgelist_cycle", Format::EdgeList),
    ("dot_missing_arrow_target", Format::Dot),
    ("dot_unterminated_string", Format::Dot),
    ("dot_duplicate_edge", Format::Dot),
    ("dot_cycle", Format::Dot),
    ("json_missing_colon", Format::Json),
    ("json_edge_out_of_range", Format::Json),
    ("json_duplicate_edge", Format::Json),
    ("json_cycle", Format::Json),
];

#[test]
fn every_golden_case_produces_its_snapshotted_error() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for &(name, format) in CASES {
        let input = std::fs::read_to_string(dir.join(format!("{name}.in")))
            .unwrap_or_else(|e| panic!("{name}.in: {e}"));
        let expected = std::fs::read_to_string(dir.join(format!("{name}.err")))
            .unwrap_or_else(|e| panic!("{name}.err: {e}"));
        let err = parse(&input, format)
            .map(|dag| panic!("{name}: expected a parse error, got a {dag:?}"))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            expected.trim_end(),
            "{name}: error message diverged from the golden snapshot"
        );
    }
}

#[test]
fn golden_directory_has_no_orphan_cases() {
    // Every .in must be listed in CASES (so new snapshots cannot silently go
    // untested) and have a matching .err.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in std::fs::read_dir(&dir).expect("golden dir exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if let Some(stem) = name.strip_suffix(".in") {
            assert!(
                CASES.iter().any(|&(c, _)| c == stem),
                "{name} is not registered in CASES"
            );
            assert!(
                dir.join(format!("{stem}.err")).exists(),
                "{stem}.err is missing"
            );
        }
    }
}

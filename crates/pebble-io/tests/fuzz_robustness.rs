//! Fuzz-style robustness: deterministic ChaCha8-seeded mutations of valid
//! interchange documents must never panic the parsers and must always
//! produce either a successfully validated [`pebble_dag::Dag`] or a
//! position-carrying (or explicitly structural) [`ParseError`].
//!
//! The seed corpus under `tests/fuzz_corpus/` is committed output of the
//! crate's own writers (one small instance per format plus two larger
//! ones), so the mutations start from documents that exercise every
//! grammar production. Each corpus entry is hit with byte-level mutations
//! (flip, insert, delete, truncate), token-level mutations (duplicate /
//! swap / drop whole lines) and cross-format confusion (parsing one format
//! as another); pure byte soup rounds out the suite. Every failure this
//! suite can produce is a deterministic seed, so a regression reproduces
//! exactly.

use pebble_io::{parse, Format, ParseError, ParseErrorKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CORPUS: &[(&str, Format, &str)] = &[
    (
        "fig1.el",
        Format::EdgeList,
        include_str!("fuzz_corpus/fig1.el"),
    ),
    (
        "tree3.el",
        Format::EdgeList,
        include_str!("fuzz_corpus/tree3.el"),
    ),
    (
        "fig1.dot",
        Format::Dot,
        include_str!("fuzz_corpus/fig1.dot"),
    ),
    (
        "matmul2.dot",
        Format::Dot,
        include_str!("fuzz_corpus/matmul2.dot"),
    ),
    (
        "fig1.json",
        Format::Json,
        include_str!("fuzz_corpus/fig1.json"),
    ),
    (
        "fft4.json",
        Format::Json,
        include_str!("fuzz_corpus/fft4.json"),
    ),
];

/// Mutation count per (corpus entry, mutator). Debug builds stay quick; the
/// release CI pass turns the screws.
const ROUNDS: usize = if cfg!(debug_assertions) { 120 } else { 600 };

/// A parse outcome is acceptable iff it is `Ok` or an error whose position
/// is coherent with the input: 1-based line within the document (plus one
/// for end-of-input reports), 1-based column. Structural errors (cycle,
/// isolated node, empty graph) legitimately carry no position.
fn assert_outcome(name: &str, seed: u64, input: &str, result: Result<pebble_dag::Dag, ParseError>) {
    let Err(err) = result else { return };
    match (&err.location, &err.kind) {
        (Some(loc), _) => {
            let lines = input.lines().count().max(1);
            assert!(
                loc.line >= 1 && loc.line <= lines + 1,
                "{name} seed {seed}: line {} out of range 1..={} for error `{err}`",
                loc.line,
                lines + 1
            );
            assert!(
                loc.col >= 1,
                "{name} seed {seed}: column {} not 1-based for error `{err}`",
                loc.col
            );
        }
        (None, ParseErrorKind::Graph(_)) => {}
        (None, kind) => {
            panic!("{name} seed {seed}: non-structural error without a position: {kind:?} ({err})")
        }
    }
}

fn mutate_bytes(rng: &mut ChaCha8Rng, text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let edits = rng.gen_range(1usize..=4);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_range(0usize..4) {
            0 => {
                // Flip: replace a byte with printable noise or a control char.
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = [b'{', b'}', b'-', b'>', b'"', b'0', b'x', b'\n', b'\t', 0xFF]
                    [rng.gen_range(0usize..10)];
            }
            1 => {
                let i = rng.gen_range(0..=bytes.len());
                let b = [b' ', b'9', b'"', b',', b';', b'[', b']', 0xC3][rng.gen_range(0usize..8)];
                bytes.insert(i, b);
            }
            2 => {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
            _ => {
                let i = rng.gen_range(0..bytes.len());
                bytes.truncate(i);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn mutate_lines(rng: &mut ChaCha8Rng, text: &str) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return String::new();
    }
    match rng.gen_range(0usize..3) {
        0 => {
            let i = rng.gen_range(0..lines.len());
            let line = lines[i];
            lines.insert(i, line);
        }
        1 => {
            let i = rng.gen_range(0..lines.len());
            let j = rng.gen_range(0..lines.len());
            lines.swap(i, j);
        }
        _ => {
            let i = rng.gen_range(0..lines.len());
            lines.remove(i);
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[test]
fn byte_mutations_never_panic_and_report_positions() {
    for &(name, format, text) in CORPUS {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0001);
        for round in 0..ROUNDS {
            let mutated = mutate_bytes(&mut rng, text);
            assert_outcome(name, round as u64, &mutated, parse(&mutated, format));
        }
    }
}

#[test]
fn line_mutations_never_panic_and_report_positions() {
    for &(name, format, text) in CORPUS {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0002);
        for round in 0..ROUNDS {
            let mutated = mutate_lines(&mut rng, text);
            assert_outcome(name, round as u64, &mutated, parse(&mutated, format));
        }
    }
}

#[test]
fn stacked_mutations_never_panic() {
    for &(name, format, text) in CORPUS {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0003);
        for round in 0..ROUNDS {
            let once = mutate_lines(&mut rng, text);
            let twice = mutate_bytes(&mut rng, &once);
            assert_outcome(name, round as u64, &twice, parse(&twice, format));
        }
    }
}

#[test]
fn cross_format_confusion_never_panics() {
    // Feeding each corpus document to the *other* parsers must fail
    // gracefully too (this is exactly what a mis-sniffed file does).
    for &(name, _, text) in CORPUS {
        for format in [Format::EdgeList, Format::Dot, Format::Json] {
            assert_outcome(name, u64::MAX, text, parse(text, format));
        }
    }
}

#[test]
fn byte_soup_never_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0004);
    for round in 0..ROUNDS {
        let len = rng.gen_range(0usize..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let soup = String::from_utf8_lossy(&bytes).into_owned();
        for format in [Format::EdgeList, Format::Dot, Format::Json] {
            assert_outcome("soup", round as u64, &soup, parse(&soup, format));
        }
        // The sniffer must accept anything as well.
        let _ = Format::sniff(&soup);
    }
}

#[test]
fn corpus_documents_are_valid_seeds() {
    // The corpus itself must parse: mutations start from grammar-covering
    // valid documents, not from junk.
    for &(name, format, text) in CORPUS {
        let dag = parse(text, format).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(dag.node_count() > 0);
    }
}

//! Property-based round-trip coverage: for every interchange format,
//! `parse ∘ write` is the identity on random layered DAGs — node ids, edge
//! order and (where the format can carry them) labels included.

use pebble_dag::generators::{random_layered, RandomLayeredConfig};
use pebble_dag::{Dag, DagBuilder, NodeId};
use pebble_io::{dag_eq, dot, edgelist, json, parse, write, Format};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Rebuild `dag` with pseudo-random labels on some nodes, exercising the
/// characters the writers must escape (quotes, backslashes, newlines,
/// non-ASCII).
fn relabel(dag: &Dag, seed: u64) -> Dag {
    const POOL: &[&str] = &[
        "",
        "in",
        "matmul (tile 3)",
        "a\"quoted\"",
        "back\\slash",
        "two\nlines",
        "π·r²",
        "x_0.y",
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = DagBuilder::new();
    for _ in dag.nodes() {
        let label = POOL[rng.gen_range(0..POOL.len())];
        b.add_labeled_node(label);
    }
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        b.add_edge(u, v);
    }
    b.build().expect("same structure as a valid DAG")
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    (2usize..6, 1usize..6, 1usize..4, any::<u64>()).prop_map(|(layers, width, deg, seed)| {
        let dag = random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: deg,
            seed,
        });
        relabel(&dag, seed ^ 0x1abe1)
    })
}

/// Structure-only equality (labels ignored) — the edge-list contract.
fn structure_eq(a: &Dag, b: &Dag) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.edges()
            .all(|e| a.edge_endpoints(e) == b.edge_endpoints(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edge_list_roundtrips_structure(dag in dag_strategy()) {
        let text = edgelist::write(&dag);
        let back = edgelist::parse(&text).expect("writer output parses");
        prop_assert!(structure_eq(&dag, &back));
    }

    #[test]
    fn dot_roundtrips_structure_and_labels(dag in dag_strategy()) {
        let text = dot::write(&dag, "g");
        let back = dot::parse(&text).expect("writer output parses");
        prop_assert!(dag_eq(&dag, &back));
    }

    #[test]
    fn json_roundtrips_structure_and_labels(dag in dag_strategy()) {
        let text = json::write(&dag);
        let back = json::parse(&text).expect("writer output parses");
        prop_assert!(dag_eq(&dag, &back));
    }

    #[test]
    fn dispatch_layer_agrees_with_the_direct_parsers(dag in dag_strategy()) {
        for format in [Format::EdgeList, Format::Dot, Format::Json] {
            let text = write(&dag, format);
            // Sniffing the writer's own output must identify the format.
            prop_assert_eq!(Format::sniff(&text), format);
            let back = parse(&text, format).expect("writer output parses");
            prop_assert!(structure_eq(&dag, &back));
        }
    }

    #[test]
    fn export_to_dot_stays_parseable(dag in dag_strategy()) {
        // The diagnostic DOT writer of pebble-dag::export embeds node ids in
        // the labels; the structure must still round-trip through this
        // crate's parser.
        let text = pebble_dag::export::to_dot(&dag, "viz");
        let back = dot::parse(&text).expect("export output parses");
        prop_assert!(structure_eq(&dag, &back));
    }
}

#[test]
fn single_edge_dag_roundtrips_everywhere() {
    let mut b = DagBuilder::new();
    let n = b.add_nodes(2);
    b.add_edge(n[0], n[1]);
    let dag = b.build().unwrap();
    for format in [Format::EdgeList, Format::Dot, Format::Json] {
        let back = parse(&write(&dag, format), format).unwrap();
        assert_eq!(back.node_count(), 2);
        assert!(back.has_edge(NodeId(0), NodeId(1)));
    }
}

//! The JSON node/edge interchange document.
//!
//! Schema:
//!
//! ```json
//! {
//!   "name": "optional graph name (ignored)",
//!   "nodes": [
//!     {"id": 0, "label": "in"},
//!     {"id": 1}
//!   ],
//!   "edges": [
//!     [0, 1]
//!   ]
//! }
//! ```
//!
//! `nodes[k].id` must equal `k` (ids are dense and ordered — this is what
//! keeps the format an exact round-trip of [`pebble_dag::Dag`] node ids);
//! `label` is optional and defaults to empty. Edge endpoints are indices into
//! `nodes`; out-of-range endpoints, duplicate edges and self-loops are
//! rejected with the position of the offending token. Unknown object keys are
//! skipped, so documents carrying extra tooling metadata still parse.
//!
//! The parser is hand-rolled rather than serde-based for exactly one reason:
//! line/column-precise errors on malformed input.

use crate::error::{ParseError, ParseErrorKind};
use pebble_dag::{Dag, DagBuilder, NodeId};
use std::collections::HashSet;
use std::fmt::Write as _;

/// A JSON lexer over characters with 1-based line/col tracking.
struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

/// JSON values restricted to what the schema needs.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Str(String),
    /// Unsigned integer (the only number form the schema uses).
    Int(usize),
    /// `true` / `false` / `null` — valid JSON, never valid in the schema
    /// positions we read, but they must lex so `skip_value` can pass them.
    Word(String),
    /// A valid JSON number that is not an unsigned integer (float, negative,
    /// exponent). Never valid where the schema wants an id, but must lex so
    /// `skip_value` can pass over numeric tooling metadata.
    NonIntNumber,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Read the four hex digits of a `\uXXXX` escape.
    fn hex4(&mut self, esc_line: usize, esc_col: usize) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            match self.bump().and_then(|d| d.to_digit(16)) {
                Some(d) => code = code * 16 + d,
                None => {
                    return Err(ParseError::syntax(esc_line, esc_col, "invalid \\u escape"));
                }
            }
        }
        Ok(code)
    }

    fn tokenize(mut self) -> Result<Vec<(usize, usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.chars.peek() {
                None => return Ok(out),
                Some(&c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some(_) => {}
            }
            let (line, col) = (self.line, self.col);
            let c = self.bump().expect("peeked");
            let tok = match c {
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                '[' => Tok::LBracket,
                ']' => Tok::RBracket,
                ':' => Tok::Colon,
                ',' => Tok::Comma,
                '"' => {
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => {
                                return Err(ParseError::syntax(line, col, "unterminated string"))
                            }
                            Some('"') => break,
                            Some('\\') => {
                                let esc_line = self.line;
                                let esc_col = self.col - 1;
                                match self.bump() {
                                    Some('"') => s.push('"'),
                                    Some('\\') => s.push('\\'),
                                    Some('/') => s.push('/'),
                                    Some('n') => s.push('\n'),
                                    Some('t') => s.push('\t'),
                                    Some('r') => s.push('\r'),
                                    Some('b') => s.push('\u{8}'),
                                    Some('f') => s.push('\u{c}'),
                                    Some('u') => {
                                        let hi = self.hex4(esc_line, esc_col)?;
                                        let code = match hi {
                                            // High surrogate: a \uDC00-\uDFFF
                                            // escape must follow (the JSON way
                                            // of writing astral-plane chars).
                                            0xD800..=0xDBFF => {
                                                if self.bump() != Some('\\')
                                                    || self.bump() != Some('u')
                                                {
                                                    return Err(ParseError::syntax(
                                                        esc_line,
                                                        esc_col,
                                                        "unpaired surrogate in \\u escape",
                                                    ));
                                                }
                                                let lo = self.hex4(esc_line, esc_col)?;
                                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                                    return Err(ParseError::syntax(
                                                        esc_line,
                                                        esc_col,
                                                        "unpaired surrogate in \\u escape",
                                                    ));
                                                }
                                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                            }
                                            0xDC00..=0xDFFF => {
                                                return Err(ParseError::syntax(
                                                    esc_line,
                                                    esc_col,
                                                    "unpaired surrogate in \\u escape",
                                                ))
                                            }
                                            other => other,
                                        };
                                        match char::from_u32(code) {
                                            Some(ch) => s.push(ch),
                                            None => {
                                                return Err(ParseError::syntax(
                                                    esc_line,
                                                    esc_col,
                                                    "invalid \\u escape",
                                                ))
                                            }
                                        }
                                    }
                                    _ => {
                                        return Err(ParseError::syntax(
                                            esc_line,
                                            esc_col,
                                            "invalid escape sequence",
                                        ))
                                    }
                                }
                            }
                            Some(other) => s.push(other),
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit() || c == '-' => {
                    let negative = c == '-';
                    let mut s = String::new();
                    if !negative {
                        s.push(c);
                    }
                    let mut digits = !negative;
                    while let Some(&n) = self.chars.peek() {
                        if n.is_ascii_digit() {
                            s.push(n);
                            digits = true;
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if !digits {
                        return Err(ParseError::syntax(line, col, "expected a digit after `-`"));
                    }
                    // Fraction / exponent: still a valid JSON number (so it
                    // must lex for `skip_value` to pass over metadata), but
                    // never an id.
                    let mut non_int = negative;
                    for marker in ['.', 'e'] {
                        if matches!(self.chars.peek(), Some(&m) if m.to_ascii_lowercase() == marker)
                        {
                            non_int = true;
                            self.bump();
                            if marker == 'e' && matches!(self.chars.peek(), Some('+') | Some('-')) {
                                self.bump();
                            }
                            let mut part = false;
                            while matches!(self.chars.peek(), Some(d) if d.is_ascii_digit()) {
                                part = true;
                                self.bump();
                            }
                            if !part {
                                return Err(ParseError::syntax(line, col, "malformed number"));
                            }
                        }
                    }
                    if non_int {
                        Tok::NonIntNumber
                    } else {
                        match s.parse::<usize>() {
                            Ok(v) => Tok::Int(v),
                            Err(_) => {
                                return Err(ParseError::syntax(
                                    line,
                                    col,
                                    format!("number `{s}` is too large"),
                                ))
                            }
                        }
                    }
                }
                c if c.is_ascii_alphabetic() => {
                    let mut s = String::new();
                    s.push(c);
                    while let Some(&n) = self.chars.peek() {
                        if n.is_ascii_alphabetic() {
                            s.push(n);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if s == "true" || s == "false" || s == "null" {
                        Tok::Word(s)
                    } else {
                        return Err(ParseError::syntax(line, col, format!("unexpected `{s}`")));
                    }
                }
                other => {
                    return Err(ParseError::syntax(
                        line,
                        col,
                        format!("unexpected character `{other}`"),
                    ))
                }
            };
            out.push((line, col, tok));
        }
    }
}

struct Parser {
    toks: Vec<(usize, usize, Tok)>,
    pos: usize,
    eof: (usize, usize),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, _, t)| t)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .map(|&(l, c, _)| (l, c))
            .unwrap_or(self.eof)
    }

    fn next(&mut self) -> Option<(usize, usize, Tok)> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        let (line, col) = self.here();
        match self.next() {
            Some((_, _, t)) if t == *want => Ok(()),
            _ => Err(ParseError::syntax(line, col, format!("expected {what}"))),
        }
    }

    fn int(&mut self, what: &str) -> Result<(usize, usize, usize), ParseError> {
        let (line, col) = self.here();
        match self.next() {
            Some((l, c, Tok::Int(v))) => Ok((l, c, v)),
            _ => Err(ParseError::syntax(line, col, format!("expected {what}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, ParseError> {
        let (line, col) = self.here();
        match self.next() {
            Some((_, _, Tok::Str(s))) => Ok(s),
            _ => Err(ParseError::syntax(line, col, format!("expected {what}"))),
        }
    }

    /// Skip one complete JSON value (for unknown object keys).
    fn skip_value(&mut self) -> Result<(), ParseError> {
        let (line, col) = self.here();
        match self.next() {
            Some((_, _, Tok::Str(_) | Tok::Int(_) | Tok::Word(_) | Tok::NonIntNumber)) => Ok(()),
            Some((_, _, Tok::LBracket)) => {
                if self.peek() == Some(&Tok::RBracket) {
                    self.next();
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    match self.next() {
                        Some((_, _, Tok::Comma)) => continue,
                        Some((_, _, Tok::RBracket)) => return Ok(()),
                        _ => return Err(ParseError::syntax(line, col, "expected `,` or `]`")),
                    }
                }
            }
            Some((_, _, Tok::LBrace)) => {
                if self.peek() == Some(&Tok::RBrace) {
                    self.next();
                    return Ok(());
                }
                loop {
                    self.string("an object key")?;
                    self.expect(&Tok::Colon, "`:`")?;
                    self.skip_value()?;
                    match self.next() {
                        Some((_, _, Tok::Comma)) => continue,
                        Some((_, _, Tok::RBrace)) => return Ok(()),
                        _ => return Err(ParseError::syntax(line, col, "expected `,` or `}`")),
                    }
                }
            }
            _ => Err(ParseError::syntax(line, col, "expected a JSON value")),
        }
    }
}

/// Parse a JSON node/edge document into a [`Dag`].
pub fn parse(input: &str) -> Result<Dag, ParseError> {
    let toks = Lexer::new(input).tokenize()?;
    let eof = toks.last().map(|&(l, c, _)| (l, c + 1)).unwrap_or((1, 1));
    let mut p = Parser { toks, pos: 0, eof };

    let mut labels: Option<Vec<String>> = None;
    let mut edges: Option<Vec<(usize, usize, usize, usize)>> = None; // (line, col, u, v)

    p.expect(&Tok::LBrace, "`{` (a JSON object)")?;
    if p.peek() == Some(&Tok::RBrace) {
        p.next();
    } else {
        loop {
            let key = p.string("an object key")?;
            p.expect(&Tok::Colon, "`:` after object key")?;
            match key.as_str() {
                "nodes" => labels = Some(parse_nodes(&mut p)?),
                "edges" => edges = Some(parse_edges(&mut p)?),
                _ => p.skip_value()?, // "name" and any tooling metadata
            }
            match p.next() {
                Some((_, _, Tok::Comma)) => continue,
                Some((_, _, Tok::RBrace)) => break,
                _ => {
                    let (l, c) = p.eof;
                    return Err(ParseError::syntax(l, c, "expected `,` or `}`"));
                }
            }
        }
    }
    if p.peek().is_some() {
        let (l, c) = p.here();
        return Err(ParseError::syntax(
            l,
            c,
            "unexpected text after the document",
        ));
    }

    let labels = labels.ok_or_else(|| {
        ParseError::syntax(1, 1, "document is missing the required `nodes` array")
    })?;
    let edges = edges.ok_or_else(|| {
        ParseError::syntax(1, 1, "document is missing the required `edges` array")
    })?;

    let n = labels.len();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut b = DagBuilder::new();
    for label in labels {
        b.add_labeled_node(label);
    }
    for (line, col, u, v) in edges {
        if u >= n || v >= n {
            let bad = if u >= n { u } else { v };
            return Err(ParseError::at(
                line,
                col,
                ParseErrorKind::UnknownNode {
                    name: bad.to_string(),
                },
            ));
        }
        if u == v {
            return Err(ParseError::at(
                line,
                col,
                ParseErrorKind::SelfLoop {
                    node: u.to_string(),
                },
            ));
        }
        if !seen.insert((u, v)) {
            return Err(ParseError::at(
                line,
                col,
                ParseErrorKind::DuplicateEdge {
                    from: u.to_string(),
                    to: v.to_string(),
                },
            ));
        }
        b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
    }
    b.build().map_err(ParseError::graph)
}

/// Parse the `nodes` array; returns the labels in id order.
fn parse_nodes(p: &mut Parser) -> Result<Vec<String>, ParseError> {
    p.expect(&Tok::LBracket, "`[` (the nodes array)")?;
    let mut labels = Vec::new();
    if p.peek() == Some(&Tok::RBracket) {
        p.next();
        return Ok(labels);
    }
    loop {
        p.expect(&Tok::LBrace, "`{` (a node object)")?;
        let mut id: Option<(usize, usize, usize)> = None;
        let mut label = String::new();
        if p.peek() == Some(&Tok::RBrace) {
            p.next();
        } else {
            loop {
                let key = p.string("a node object key")?;
                p.expect(&Tok::Colon, "`:` after object key")?;
                match key.as_str() {
                    "id" => id = Some(p.int("an integer node id")?),
                    "label" => label = p.string("a string label")?,
                    _ => p.skip_value()?,
                }
                match p.next() {
                    Some((_, _, Tok::Comma)) => continue,
                    Some((_, _, Tok::RBrace)) => break,
                    _ => {
                        let (l, c) = p.eof;
                        return Err(ParseError::syntax(l, c, "expected `,` or `}`"));
                    }
                }
            }
        }
        let (iline, icol, id) = id.ok_or_else(|| {
            let (l, c) = p.here();
            ParseError::syntax(l, c, "node object is missing its `id`")
        })?;
        if id != labels.len() {
            return Err(ParseError::syntax(
                iline,
                icol,
                format!(
                    "node ids must be dense and ordered: expected {}, found {id}",
                    labels.len()
                ),
            ));
        }
        labels.push(label);
        match p.next() {
            Some((_, _, Tok::Comma)) => continue,
            Some((_, _, Tok::RBracket)) => return Ok(labels),
            _ => {
                let (l, c) = p.eof;
                return Err(ParseError::syntax(l, c, "expected `,` or `]`"));
            }
        }
    }
}

/// Parse the `edges` array of `[u, v]` pairs, with token positions.
fn parse_edges(p: &mut Parser) -> Result<Vec<(usize, usize, usize, usize)>, ParseError> {
    p.expect(&Tok::LBracket, "`[` (the edges array)")?;
    let mut edges = Vec::new();
    if p.peek() == Some(&Tok::RBracket) {
        p.next();
        return Ok(edges);
    }
    loop {
        let (eline, ecol) = p.here();
        p.expect(&Tok::LBracket, "`[` (an edge pair)")?;
        let (_, _, u) = p.int("an integer edge source")?;
        p.expect(&Tok::Comma, "`,` between edge endpoints")?;
        let (_, _, v) = p.int("an integer edge target")?;
        p.expect(&Tok::RBracket, "`]` after the edge pair")?;
        edges.push((eline, ecol, u, v));
        match p.next() {
            Some((_, _, Tok::Comma)) => continue,
            Some((_, _, Tok::RBracket)) => return Ok(edges),
            _ => {
                let (l, c) = p.eof;
                return Err(ParseError::syntax(l, c, "expected `,` or `]`"));
            }
        }
    }
}

/// Escape a string for embedding in a double-quoted JSON string literal.
/// (Note that `str::escape_default` is *not* JSON: it emits `\'` and
/// `\u{..}`, which JSON parsers reject.) Public so every JSON emitter in the
/// workspace — this writer, the `prbp` CLI's report documents — escapes
/// identically.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

/// Render `dag` as a JSON node/edge document (pretty-printed, deterministic).
/// Parsing the output reproduces `dag` exactly — ids, labels and edge order
/// included.
pub fn write(dag: &Dag) -> String {
    let mut out = String::from("{\n  \"nodes\": [\n");
    for v in dag.nodes() {
        let label = dag.label(v);
        let sep = if v.index() + 1 == dag.node_count() {
            ""
        } else {
            ","
        };
        if label.is_empty() {
            let _ = writeln!(out, "    {{\"id\": {}}}{sep}", v.0);
        } else {
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"label\": \"{}\"}}{sep}",
                v.0,
                escape(label)
            );
        }
    }
    out.push_str("  ],\n  \"edges\": [\n");
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        let sep = if e.index() + 1 == dag.edge_count() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "    [{}, {}]{sep}", u.0, v.0);
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("in\nquote\"");
        let c = b.add_node();
        let d = b.add_labeled_node("out");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn writer_output_roundtrips_exactly() {
        let g = sample();
        let back = parse(&write(&g)).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.label(v), g.label(v));
        }
        for e in g.edges() {
            assert_eq!(back.edge_endpoints(e), g.edge_endpoints(e));
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // What ensure_ascii serialisers emit for astral-plane characters.
        let g = parse(
            r#"{"nodes": [{"id": 0, "label": "\ud83d\ude00"}, {"id": 1}], "edges": [[0, 1]]}"#,
        )
        .unwrap();
        assert_eq!(g.label(NodeId(0)), "\u{1F600}");
        for bad in [
            r#"{"nodes": [{"id": 0, "label": "\ud83d"}], "edges": []}"#,
            r#"{"nodes": [{"id": 0, "label": "\ude00"}], "edges": []}"#,
            r#"{"nodes": [{"id": 0, "label": "\ud83dA"}], "edges": []}"#,
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.to_string().contains("unpaired surrogate"), "{err}");
        }
    }

    #[test]
    fn unknown_keys_are_skipped() {
        // Metadata may contain any valid JSON value, including floats,
        // negatives, exponents and keywords the schema itself never uses.
        let text = r#"{"name": "g", "meta": {"tool": [1, 2, {"x": null}],
                "version": 1.5, "offset": -3, "scale": 2e-4, "ok": true},
            "nodes": [{"id": 0, "weight": 3}, {"id": 1}],
            "edges": [[0, 1]]}"#;
        let g = parse(text).unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn non_integer_ids_are_rejected_with_position() {
        let err = parse(r#"{"nodes": [{"id": 1.5}], "edges": []}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 1, col 19: expected an integer node id"
        );
        let err = parse(r#"{"nodes": [{"id": 0}], "edges": [[-1, 0]]}"#).unwrap_err();
        assert!(err.to_string().contains("expected an integer edge source"));
    }

    #[test]
    fn out_of_order_ids_are_rejected_with_position() {
        let err = parse(r#"{"nodes": [{"id": 1}], "edges": []}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 1, col 19: node ids must be dense and ordered: expected 0, found 1"
        );
    }

    #[test]
    fn out_of_range_edges_are_located() {
        let err = parse("{\"nodes\": [{\"id\": 0}, {\"id\": 1}],\n \"edges\": [[0, 1], [0, 7]]}")
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2, col 20: edge references unknown node 7"
        );
    }

    #[test]
    fn duplicate_and_self_loop_edges_are_located() {
        let err = parse("{\"nodes\": [{\"id\": 0}, {\"id\": 1}],\n \"edges\": [[0, 1], [0, 1]]}")
            .unwrap_err();
        assert_eq!(err.to_string(), "line 2, col 20: duplicate edge 0 -> 1");
        let err =
            parse("{\"nodes\": [{\"id\": 0}, {\"id\": 1}],\n \"edges\": [[0, 0]]}").unwrap_err();
        assert_eq!(err.to_string(), "line 2, col 12: self-loop on node 0");
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse("{\n  \"nodes\": [{\"id\" 0}],\n  \"edges\": []\n}").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2, col 19: expected `:` after object key"
        );
        let err = parse("{\"nodes\": 3, \"edges\": []}").unwrap_err();
        assert!(err.to_string().contains("expected `[` (the nodes array)"));
    }

    #[test]
    fn missing_sections_are_reported() {
        let err = parse(r#"{"edges": []}"#).unwrap_err();
        assert!(err.to_string().contains("missing the required `nodes`"));
        let err = parse(r#"{"nodes": []}"#).unwrap_err();
        assert!(err.to_string().contains("missing the required `edges`"));
    }

    #[test]
    fn cycles_are_structural_errors() {
        let err =
            parse(r#"{"nodes": [{"id": 0}, {"id": 1}], "edges": [[0, 1], [1, 0]]}"#).unwrap_err();
        assert_eq!(err.location, None);
        assert_eq!(err.to_string(), "edge set contains a directed cycle");
    }
}

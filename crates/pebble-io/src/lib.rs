//! # pebble-io
//!
//! DAG interchange: parse and write computational DAGs in three formats so
//! workloads the repository did *not* generate can be scheduled and
//! certified.
//!
//! * [`edgelist`] — whitespace edge-list (`u v` per line, `#` comments);
//! * [`dot`] — a Graphviz DOT digraph subset (node labels honoured);
//! * [`json`] — a JSON node/edge document (node labels honoured).
//!
//! Beyond interchange, [`store`] is the versioned, checksummed binary format
//! for *certified schedules*: the on-disk representation behind the
//! content-addressed schedule cache of `pebble-serve`.
//!
//! All three parsers report **line/column-precise errors**
//! ([`ParseError`]), reject duplicate edges and self-loops at the offending
//! token, and reject cycles / isolated nodes / empty graphs after parsing
//! (the structural invariants of [`pebble_dag::Dag`]). All three writers are
//! exact round-trips: `parse(write(dag))` reproduces node ids, edge order
//! and — for DOT and JSON — labels. The edge-list writer is
//! [`pebble_dag::export::to_edge_list`]; the DOT parser also accepts the
//! diagnostic output of [`pebble_dag::export::to_dot`].

#![deny(missing_docs)]

pub mod dot;
pub mod edgelist;
pub mod error;
pub mod json;
pub mod store;

pub use error::{Location, ParseError, ParseErrorKind};

use pebble_dag::Dag;

/// The supported interchange formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Whitespace edge-list (`.el`, `.edges`, `.edgelist`, `.txt`).
    EdgeList,
    /// DOT digraph subset (`.dot`, `.gv`).
    Dot,
    /// JSON node/edge document (`.json`).
    Json,
}

impl Format {
    /// Stable lowercase name (`edge-list`, `dot`, `json`).
    pub fn name(self) -> &'static str {
        match self {
            Format::EdgeList => "edge-list",
            Format::Dot => "dot",
            Format::Json => "json",
        }
    }

    /// Guess the format from a file path's extension.
    pub fn from_path(path: &str) -> Option<Format> {
        let ext = path.rsplit('.').next()?.to_ascii_lowercase();
        match ext.as_str() {
            "el" | "edges" | "edgelist" | "txt" => Some(Format::EdgeList),
            "dot" | "gv" => Some(Format::Dot),
            "json" => Some(Format::Json),
            _ => None,
        }
    }

    /// Guess the format from the document text itself: `{` opens JSON,
    /// `digraph` / `graph` / `strict` (or a comment introducing them) opens
    /// DOT, anything else is treated as an edge-list.
    pub fn sniff(input: &str) -> Format {
        for line in input.lines() {
            let t = line.trim_start();
            if t.is_empty() || t.starts_with('#') || t.starts_with("//") {
                continue;
            }
            if t.starts_with('{') {
                return Format::Json;
            }
            if t.starts_with("digraph")
                || t.starts_with("strict")
                || t.starts_with("graph")
                || t.starts_with("/*")
            {
                return Format::Dot;
            }
            return Format::EdgeList;
        }
        Format::EdgeList
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "edgelist" | "edge-list" | "el" => Ok(Format::EdgeList),
            "dot" | "gv" => Ok(Format::Dot),
            "json" => Ok(Format::Json),
            other => Err(format!(
                "unknown format `{other}` (expected edgelist, dot or json)"
            )),
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parse `input` as `format`.
pub fn parse(input: &str, format: Format) -> Result<Dag, ParseError> {
    match format {
        Format::EdgeList => edgelist::parse(input),
        Format::Dot => dot::parse(input),
        Format::Json => json::parse(input),
    }
}

/// Render `dag` as `format`. DOT output uses the graph name `g`.
pub fn write(dag: &Dag, format: Format) -> String {
    match format {
        Format::EdgeList => edgelist::write(dag),
        Format::Dot => dot::write(dag, "g"),
        Format::Json => json::write(dag),
    }
}

/// Structural equality of two DAGs: same node count, labels, and edge
/// sequence (endpoints in [`pebble_dag::EdgeId`] order). This is the
/// round-trip contract of the writers.
pub fn dag_eq(a: &Dag, b: &Dag) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes().all(|v| a.label(v) == b.label(v))
        && a.edges()
            .all(|e| a.edge_endpoints(e) == b.edge_endpoints(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn extension_detection() {
        assert_eq!(Format::from_path("a/b/c.el"), Some(Format::EdgeList));
        assert_eq!(Format::from_path("x.edges"), Some(Format::EdgeList));
        assert_eq!(Format::from_path("x.DOT"), Some(Format::Dot));
        assert_eq!(Format::from_path("x.gv"), Some(Format::Dot));
        assert_eq!(Format::from_path("x.json"), Some(Format::Json));
        assert_eq!(Format::from_path("x.bin"), None);
    }

    #[test]
    fn content_sniffing() {
        assert_eq!(Format::sniff("# c\n0 1\n"), Format::EdgeList);
        assert_eq!(Format::sniff("// c\ndigraph g {}\n"), Format::Dot);
        assert_eq!(Format::sniff("strict digraph {}\n"), Format::Dot);
        assert_eq!(Format::sniff("  {\"nodes\": []}"), Format::Json);
        assert_eq!(Format::sniff(""), Format::EdgeList);
    }

    #[test]
    fn dispatch_roundtrips_every_format() {
        let g = sample();
        for f in [Format::EdgeList, Format::Dot, Format::Json] {
            let text = write(&g, f);
            let back = parse(&text, f).unwrap_or_else(|e| panic!("{f}: {e}"));
            assert!(dag_eq(&g, &back), "{f} round-trip changed the DAG");
        }
    }

    #[test]
    fn format_names_parse_back() {
        for f in [Format::EdgeList, Format::Dot, Format::Json] {
            assert_eq!(f.name().parse::<Format>().unwrap(), f);
        }
        assert!("yaml".parse::<Format>().is_err());
    }
}

//! Parse errors with line/column precision.
//!
//! Every parser in this crate reports *where* an input is malformed: syntax
//! errors, duplicate edges and self-loops carry the 1-based line and column
//! of the offending token. Structural errors that have no single position
//! (a directed cycle, an isolated node, an empty graph) are reported without
//! a location.

use pebble_dag::DagError;
use std::fmt;

/// A 1-based position in the source text. Columns count characters, not
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (characters).
    pub col: usize,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// What went wrong while parsing a DAG interchange document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The text does not conform to the format grammar.
    Syntax(String),
    /// The same directed edge appears twice (reported at its second
    /// occurrence).
    DuplicateEdge {
        /// Source node, as written in the input.
        from: String,
        /// Target node, as written in the input.
        to: String,
    },
    /// An edge from a node to itself.
    SelfLoop {
        /// The node, as written in the input.
        node: String,
    },
    /// An edge references a node the document never defines (JSON: an
    /// endpoint index out of range).
    UnknownNode {
        /// The node reference, as written in the input.
        name: String,
    },
    /// The parsed edge set is not a valid computational DAG (cycle, isolated
    /// node, empty graph). These have no single source position.
    Graph(DagError),
}

/// A parse error, optionally anchored to a position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Position of the offending token, when the error has one.
    pub location: Option<Location>,
    /// The error itself.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// A syntax error at `line`/`col`.
    pub fn syntax(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            location: Some(Location { line, col }),
            kind: ParseErrorKind::Syntax(message.into()),
        }
    }

    /// A located error of arbitrary kind.
    pub fn at(line: usize, col: usize, kind: ParseErrorKind) -> Self {
        ParseError {
            location: Some(Location { line, col }),
            kind,
        }
    }

    /// A structural error without a source position.
    pub fn graph(error: DagError) -> Self {
        ParseError {
            location: None,
            kind: ParseErrorKind::Graph(error),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(loc) = self.location {
            write!(f, "{loc}: ")?;
        }
        match &self.kind {
            ParseErrorKind::Syntax(msg) => write!(f, "{msg}"),
            ParseErrorKind::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            ParseErrorKind::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            ParseErrorKind::UnknownNode { name } => {
                write!(f, "edge references unknown node {name}")
            }
            ParseErrorKind::Graph(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ParseError {}

//! Compact binary store format for certified schedules — the on-disk half
//! of the content-addressed schedule cache.
//!
//! A [`StoreEntry`] bundles everything a serving layer needs to answer a
//! scheduling request from disk: the canonical DAG key it was certified
//! for, the game parameters, the move sequence (in *canonical* node
//! numbering — see `pebble_dag::canon`), the certified cost, and the full
//! admissible bound ladder. The format is versioned and checksummed so a
//! torn write or bit rot is detected at read time, never served.
//!
//! ## Format v1 (all integers little-endian)
//!
//! ```text
//! magic      8 bytes   "PRBPSCH\x01"
//! version    u32       1
//! key        4 × u64   canonical DAG fingerprint
//! model      u8        1 = PRBP (the only model stored by v1)
//! r          u64       fast-memory size
//! nodes      u64       node count of the certified DAG
//! edges      u64       edge count of the certified DAG
//! cost       u64       certified I/O cost
//! best_bound u64       best admissible lower bound
//! scheduler  u32 len + utf8 bytes
//! bounds     u32 count, then per bound: u32 len + utf8 name, u64 value
//! moves      u64 count, then per move:
//!              opcode u8: 0 save, 1 load, 2 partial-compute, 3 delete,
//!                         4 clear
//!              node   u32 (opcode 2: from u32 + to u32)
//! checksum   u64       FNV-1a-64 over every preceding byte
//! ```
//!
//! Writers go through [`write_file`], which writes to a temporary sibling
//! and renames into place, so concurrent readers only ever observe complete
//! entries.

use pebble_dag::NodeId;
use pebble_game::moves::{Model, PrbpMove};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Leading magic of every store entry (includes a format-generation byte).
pub const MAGIC: [u8; 8] = *b"PRBPSCH\x01";
/// Current format version.
pub const VERSION: u32 = 1;

/// A certified schedule as stored on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// Canonical fingerprint of the DAG this schedule was certified for.
    pub key: [u64; 4],
    /// Pebble game model (v1 stores PRBP only).
    pub model: Model,
    /// Fast-memory size `r`.
    pub r: u64,
    /// Node count of the certified DAG.
    pub nodes: u64,
    /// Edge count of the certified DAG.
    pub edges: u64,
    /// Certified I/O cost of the move sequence.
    pub cost: u64,
    /// Best admissible lower bound at certification time.
    pub best_bound: u64,
    /// Name of the scheduler that produced the moves.
    pub scheduler: String,
    /// The full bound ladder: `(name, value)` pairs.
    pub bounds: Vec<(String, u64)>,
    /// The move sequence, in canonical node numbering.
    pub moves: Vec<PrbpMove>,
}

/// Everything that can go wrong reading a store entry.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The entry does not start with [`MAGIC`].
    BadMagic,
    /// The entry's version is not [`VERSION`].
    UnsupportedVersion(u32),
    /// The entry ends before its structure does.
    Truncated,
    /// The stored checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum recorded in the entry.
        stored: u64,
        /// Checksum of the bytes actually read.
        computed: u64,
    },
    /// Unknown move opcode.
    BadOpcode(u8),
    /// Unknown model byte.
    BadModel(u8),
    /// A stored string is not valid UTF-8.
    BadUtf8,
    /// Bytes remain after the checksum.
    TrailingBytes,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a PRBP schedule store entry (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Truncated => write!(f, "store entry is truncated"),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            StoreError::BadOpcode(op) => write!(f, "unknown move opcode {op}"),
            StoreError::BadModel(m) => write!(f, "unknown model byte {m}"),
            StoreError::BadUtf8 => write!(f, "stored string is not valid UTF-8"),
            StoreError::TrailingBytes => write!(f, "trailing bytes after checksum"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn model_byte(model: Model) -> u8 {
    match model {
        Model::Rbp => 0,
        Model::Prbp => 1,
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Serialize an entry to its byte representation (checksum included).
pub fn encode(entry: &StoreEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + 9 * entry.moves.len());
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, VERSION);
    for w in entry.key {
        push_u64(&mut out, w);
    }
    out.push(model_byte(entry.model));
    push_u64(&mut out, entry.r);
    push_u64(&mut out, entry.nodes);
    push_u64(&mut out, entry.edges);
    push_u64(&mut out, entry.cost);
    push_u64(&mut out, entry.best_bound);
    push_str(&mut out, &entry.scheduler);
    push_u32(&mut out, entry.bounds.len() as u32);
    for (name, value) in &entry.bounds {
        push_str(&mut out, name);
        push_u64(&mut out, *value);
    }
    push_u64(&mut out, entry.moves.len() as u64);
    for mv in &entry.moves {
        match *mv {
            PrbpMove::Save(v) => {
                out.push(0);
                push_u32(&mut out, v.0);
            }
            PrbpMove::Load(v) => {
                out.push(1);
                push_u32(&mut out, v.0);
            }
            PrbpMove::PartialCompute { from, to } => {
                out.push(2);
                push_u32(&mut out, from.0);
                push_u32(&mut out, to.0);
            }
            PrbpMove::Delete(v) => {
                out.push(3);
                push_u32(&mut out, v.0);
            }
            PrbpMove::Clear(v) => {
                out.push(4);
                push_u32(&mut out, v.0);
            }
        }
    }
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(StoreError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::BadUtf8)
    }
}

/// Deserialize an entry, verifying magic, version and checksum.
pub fn decode(bytes: &[u8]) -> Result<StoreEntry, StoreError> {
    if bytes.len() < MAGIC.len() + 12 {
        return Err(StoreError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    // Checksum covers everything but the trailing checksum itself; verify it
    // first so every later decode error means "malformed writer", not rot.
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
    let computed = fnv1a(&bytes[..body_len]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let mut c = Cursor {
        bytes: &bytes[..body_len],
        pos: MAGIC.len(),
    };
    let version = c.u32()?;
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut key = [0u64; 4];
    for w in key.iter_mut() {
        *w = c.u64()?;
    }
    let model = match c.u8()? {
        0 => Model::Rbp,
        1 => Model::Prbp,
        other => return Err(StoreError::BadModel(other)),
    };
    let r = c.u64()?;
    let nodes = c.u64()?;
    let edges = c.u64()?;
    let cost = c.u64()?;
    let best_bound = c.u64()?;
    let scheduler = c.string()?;
    let bound_count = c.u32()? as usize;
    let mut bounds = Vec::with_capacity(bound_count.min(1024));
    for _ in 0..bound_count {
        let name = c.string()?;
        let value = c.u64()?;
        bounds.push((name, value));
    }
    let move_count = c.u64()? as usize;
    let mut moves = Vec::with_capacity(move_count.min(1 << 20));
    for _ in 0..move_count {
        let mv = match c.u8()? {
            0 => PrbpMove::Save(NodeId(c.u32()?)),
            1 => PrbpMove::Load(NodeId(c.u32()?)),
            2 => PrbpMove::PartialCompute {
                from: NodeId(c.u32()?),
                to: NodeId(c.u32()?),
            },
            3 => PrbpMove::Delete(NodeId(c.u32()?)),
            4 => PrbpMove::Clear(NodeId(c.u32()?)),
            other => return Err(StoreError::BadOpcode(other)),
        };
        moves.push(mv);
    }
    if c.pos != body_len {
        return Err(StoreError::TrailingBytes);
    }
    Ok(StoreEntry {
        key,
        model,
        r,
        nodes,
        edges,
        cost,
        best_bound,
        scheduler,
        bounds,
        moves,
    })
}

/// Write an entry atomically: serialize to `<path>.tmp` and rename into
/// place, so a concurrent reader never sees a torn entry.
pub fn write_file(path: &Path, entry: &StoreEntry) -> Result<(), StoreError> {
    let bytes = encode(entry);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and verify an entry from disk.
pub fn read_file(path: &Path) -> Result<StoreEntry, StoreError> {
    decode(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreEntry {
        StoreEntry {
            key: [1, 2, 3, u64::MAX],
            model: Model::Prbp,
            r: 16,
            nodes: 5,
            edges: 6,
            cost: 7,
            best_bound: 4,
            scheduler: "compose".into(),
            bounds: vec![("load-count".into(), 3), ("s-dominator".into(), 4)],
            moves: vec![
                PrbpMove::Load(NodeId(0)),
                PrbpMove::PartialCompute {
                    from: NodeId(0),
                    to: NodeId(1),
                },
                PrbpMove::Save(NodeId(1)),
                PrbpMove::Delete(NodeId(0)),
                PrbpMove::Clear(NodeId(2)),
            ],
        }
    }

    #[test]
    fn encode_decode_is_identity() {
        let entry = sample();
        assert_eq!(decode(&encode(&entry)).unwrap(), entry);
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} was not detected");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "truncation at {len}");
        }
    }
}

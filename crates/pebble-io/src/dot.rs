//! A Graphviz DOT digraph subset.
//!
//! Supported grammar (a practical subset of the DOT language):
//!
//! ```text
//! graph     := 'strict'? 'digraph' name? '{' stmt* '}'
//! stmt      := attr_stmt | default | node_stmt | edge_stmt | ';'
//! attr_stmt := name '=' value ';'?                  (graph attribute, ignored)
//! default   := ('graph'|'node'|'edge') attrs ';'?   (default attributes, ignored)
//! node_stmt := name attrs? ';'?
//! edge_stmt := name ('->' name)+ attrs? ';'?
//! attrs     := '[' (name '=' value (',' | ';')?)* ']'
//! name      := identifier | number | "quoted string"
//! ```
//!
//! Comments (`//…`, `/* … */`, `#…`) are skipped. Undirected graphs
//! (`graph`/`--`), subgraphs and ports are *not* supported and produce a
//! located error.
//!
//! Node ids are assigned by order of first appearance; the only attribute
//! honoured is `label` on node statements (everything else — shapes, colors,
//! rankdir — is accepted and ignored, so the output of
//! [`pebble_dag::export::to_dot`] parses). [`write()`] declares every node in
//! id order before any edge, which is what makes `parse ∘ write` the
//! identity, labels included.

use crate::error::{ParseError, ParseErrorKind};
use pebble_dag::{Dag, DagBuilder, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One lexical token with its 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier, number or quoted string (unescaped).
    Name(String),
    Arrow,
    Undirected,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Equals,
    Semi,
    Comma,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Produce the full token stream with positions.
    fn tokenize(mut self) -> Result<Vec<(usize, usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and the three comment forms.
            match self.chars.peek() {
                None => return Ok(out),
                Some(&c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some('#') => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                Some('/') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    match self.chars.peek() {
                        Some('/') => {
                            while let Some(&c) = self.chars.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                            continue;
                        }
                        Some('*') => {
                            self.bump();
                            let mut prev = '\0';
                            loop {
                                match self.bump() {
                                    None => {
                                        return Err(ParseError::syntax(
                                            line,
                                            col,
                                            "unterminated block comment",
                                        ))
                                    }
                                    Some('/') if prev == '*' => break,
                                    Some(c) => prev = c,
                                }
                            }
                            continue;
                        }
                        _ => return Err(ParseError::syntax(line, col, "unexpected character `/`")),
                    }
                }
                Some(_) => {}
            }
            let (line, col) = (self.line, self.col);
            let c = self.bump().expect("peeked");
            let tok = match c {
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                '[' => Tok::LBracket,
                ']' => Tok::RBracket,
                '=' => Tok::Equals,
                ';' => Tok::Semi,
                ',' => Tok::Comma,
                '-' => match self.chars.peek() {
                    Some('>') => {
                        self.bump();
                        Tok::Arrow
                    }
                    Some('-') => {
                        self.bump();
                        Tok::Undirected
                    }
                    _ => {
                        return Err(ParseError::syntax(
                            line,
                            col,
                            "expected `->` (or `--`) after `-`",
                        ))
                    }
                },
                '"' => {
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => {
                                return Err(ParseError::syntax(line, col, "unterminated string"))
                            }
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some(other) => {
                                    // DOT keeps unknown escapes verbatim.
                                    s.push('\\');
                                    s.push(other);
                                }
                                None => {
                                    return Err(ParseError::syntax(
                                        line,
                                        col,
                                        "unterminated string",
                                    ))
                                }
                            },
                            Some(other) => s.push(other),
                        }
                    }
                    Tok::Name(s)
                }
                c if c.is_alphanumeric() || c == '_' || c == '.' => {
                    let mut s = String::new();
                    s.push(c);
                    while let Some(&n) = self.chars.peek() {
                        if n.is_alphanumeric() || n == '_' || n == '.' {
                            s.push(n);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Name(s)
                }
                other => {
                    return Err(ParseError::syntax(
                        line,
                        col,
                        format!("unexpected character `{other}`"),
                    ))
                }
            };
            out.push((line, col, tok));
        }
    }
}

/// Token cursor for the recursive-descent parser.
struct Parser {
    toks: Vec<(usize, usize, Tok)>,
    pos: usize,
    /// Position just past the last token, for end-of-input errors.
    eof: (usize, usize),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, _, t)| t)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .map(|&(l, c, _)| (l, c))
            .unwrap_or(self.eof)
    }

    fn next(&mut self) -> Option<(usize, usize, Tok)> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        let (line, col) = self.here();
        match self.next() {
            Some((_, _, t)) if t == *want => Ok(()),
            _ => Err(ParseError::syntax(line, col, format!("expected {what}"))),
        }
    }

    /// Consume a name token (identifier / number / quoted string).
    fn name(&mut self, what: &str) -> Result<(usize, usize, String), ParseError> {
        let (line, col) = self.here();
        match self.next() {
            Some((l, c, Tok::Name(s))) => Ok((l, c, s)),
            _ => Err(ParseError::syntax(line, col, format!("expected {what}"))),
        }
    }

    /// Parse an `[ … ]` attribute list, returning the last `label` value.
    fn attrs(&mut self) -> Result<Option<String>, ParseError> {
        let mut label = None;
        while self.peek() == Some(&Tok::LBracket) {
            self.next();
            loop {
                match self.peek() {
                    Some(Tok::RBracket) => {
                        self.next();
                        break;
                    }
                    Some(Tok::Comma) | Some(Tok::Semi) => {
                        self.next();
                    }
                    _ => {
                        let (_, _, key) = self.name("an attribute name or `]`")?;
                        self.expect(&Tok::Equals, "`=` after attribute name")?;
                        let (_, _, value) = self.name("an attribute value")?;
                        if key == "label" {
                            label = Some(value);
                        }
                    }
                }
            }
        }
        Ok(label)
    }
}

/// Incrementally built graph: interns node names in order of first
/// appearance and checks edges as they arrive.
#[derive(Default)]
struct GraphAcc {
    ids: HashMap<String, usize>,
    labels: Vec<String>,
    edges: Vec<(usize, usize)>,
    seen: std::collections::HashSet<(usize, usize)>,
}

impl GraphAcc {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.labels.len();
        self.ids.insert(name.to_string(), id);
        self.labels.push(String::new());
        id
    }

    fn add_edge(
        &mut self,
        line: usize,
        col: usize,
        from: &str,
        to: &str,
    ) -> Result<(), ParseError> {
        let u = self.intern(from);
        let v = self.intern(to);
        if u == v {
            return Err(ParseError::at(
                line,
                col,
                ParseErrorKind::SelfLoop {
                    node: from.to_string(),
                },
            ));
        }
        if !self.seen.insert((u, v)) {
            return Err(ParseError::at(
                line,
                col,
                ParseErrorKind::DuplicateEdge {
                    from: from.to_string(),
                    to: to.to_string(),
                },
            ));
        }
        self.edges.push((u, v));
        Ok(())
    }

    fn build(self) -> Result<Dag, ParseError> {
        let mut b = DagBuilder::new();
        for label in self.labels {
            b.add_labeled_node(label);
        }
        for (u, v) in self.edges {
            b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
        }
        b.build().map_err(ParseError::graph)
    }
}

/// Parse a DOT digraph document into a [`Dag`].
pub fn parse(input: &str) -> Result<Dag, ParseError> {
    let toks = Lexer::new(input).tokenize()?;
    let eof = toks.last().map(|&(l, c, _)| (l, c + 1)).unwrap_or((1, 1));
    let mut p = Parser { toks, pos: 0, eof };

    // Header: ['strict'] 'digraph' [name] '{'
    let (line, col, head) = p.name("`digraph`")?;
    let head = if head == "strict" {
        let (_, _, h) = p.name("`digraph`")?;
        h
    } else {
        head
    };
    if head == "graph" {
        return Err(ParseError::syntax(
            line,
            col,
            "undirected `graph` is not supported; use `digraph`",
        ));
    }
    if head != "digraph" {
        return Err(ParseError::syntax(
            line,
            col,
            format!("expected `digraph`, found `{head}`"),
        ));
    }
    if matches!(p.peek(), Some(Tok::Name(_))) {
        p.next(); // graph name, ignored
    }
    p.expect(&Tok::LBrace, "`{`")?;

    let mut acc = GraphAcc::default();
    loop {
        match p.peek() {
            None => {
                let (l, c) = p.eof;
                return Err(ParseError::syntax(l, c, "expected `}`"));
            }
            Some(Tok::RBrace) => {
                p.next();
                break;
            }
            Some(Tok::Semi) => {
                p.next();
            }
            Some(Tok::Name(_)) => {
                let (_, _, name) = p.name("a node name")?;
                match p.peek() {
                    // Graph attribute: name = value
                    Some(Tok::Equals) => {
                        p.next();
                        p.name("an attribute value")?;
                    }
                    // Edge chain: name (-> name)+
                    Some(Tok::Arrow) => {
                        let mut prev = name;
                        while p.peek() == Some(&Tok::Arrow) {
                            p.next();
                            let (eline, ecol, next) = p.name("a node name after `->`")?;
                            acc.add_edge(eline, ecol, &prev, &next)?;
                            prev = next;
                        }
                        p.attrs()?; // edge attributes, ignored
                    }
                    Some(Tok::Undirected) => {
                        let (l, c) = p.here();
                        return Err(ParseError::syntax(
                            l,
                            c,
                            "undirected edge `--` is not supported; use `->`",
                        ));
                    }
                    // Node statement (possibly a default-attribute statement).
                    _ => {
                        let label = p.attrs()?;
                        match name.as_str() {
                            // Default attribute statements: targets, not nodes.
                            "graph" | "node" | "edge" => {}
                            _ => {
                                let id = acc.intern(&name);
                                if let Some(label) = label {
                                    acc.labels[id] = label;
                                }
                            }
                        }
                    }
                }
            }
            Some(_) => {
                let (l, c) = p.here();
                return Err(ParseError::syntax(l, c, "expected a statement or `}`"));
            }
        }
    }
    if let Some(_t) = p.peek() {
        let (l, c) = p.here();
        return Err(ParseError::syntax(l, c, "unexpected text after `}`"));
    }
    acc.build()
}

use pebble_dag::export::dot_escape as escape;

/// Render `dag` in the DOT subset this module parses: every node is declared
/// (in id order, with its label when non-empty) before the edges, so parsing
/// the output reproduces `dag` exactly — ids, labels and edge order included.
pub fn write(dag: &Dag, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    for v in dag.nodes() {
        let label = dag.label(v);
        if label.is_empty() {
            let _ = writeln!(out, "  n{};", v.0);
        } else {
            let _ = writeln!(out, "  n{} [label=\"{}\"];", v.0, escape(label));
        }
    }
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        let _ = writeln!(out, "  n{} -> n{};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::export;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("in \"x\"");
        let c = b.add_node();
        let d = b.add_labeled_node("out");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(a, d);
        b.build().unwrap()
    }

    #[test]
    fn writer_output_roundtrips_exactly() {
        let g = sample();
        let text = write(&g, "sample");
        let back = parse(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.label(v), g.label(v));
        }
        for e in g.edges() {
            assert_eq!(back.edge_endpoints(e), g.edge_endpoints(e));
        }
    }

    #[test]
    fn parses_export_to_dot_output_structurally() {
        let g = sample();
        let back = parse(&export::to_dot(&g, "viz")).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        for e in g.edges() {
            assert_eq!(back.edge_endpoints(e), g.edge_endpoints(e));
        }
    }

    #[test]
    fn accepts_chains_comments_and_defaults() {
        let text = "// chain\nstrict digraph g {\n  graph [rankdir=LR];\n  node [shape=box];\n  a -> b -> c [color=red];\n  /* d is labelled */\n  d [label=\"last\"];\n  c -> d\n}\n";
        let g = parse(text).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label(NodeId(3)), "last");
    }

    #[test]
    fn missing_target_reports_position() {
        let err = parse("digraph g {\n  a -> ;\n}\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2, col 8: expected a node name after `->`"
        );
    }

    #[test]
    fn undirected_is_rejected() {
        let err = parse("graph g { a -- b }").unwrap_err();
        assert!(err.to_string().contains("use `digraph`"));
        let err = parse("digraph g { a -- b }").unwrap_err();
        assert!(err.to_string().contains("use `->`"));
    }

    #[test]
    fn unterminated_string_is_located() {
        let err = parse("digraph g {\n  a [label=\"oops];\n}\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2, col 12: unterminated string");
    }

    #[test]
    fn duplicate_edges_and_cycles_are_rejected() {
        let err = parse("digraph g { a -> b; a -> b; }").unwrap_err();
        assert_eq!(err.to_string(), "line 1, col 26: duplicate edge a -> b");
        let err = parse("digraph g { a -> b; b -> a; }").unwrap_err();
        assert_eq!(err.to_string(), "edge set contains a directed cycle");
    }

    #[test]
    fn quoted_names_with_escapes_work() {
        let g = parse("digraph g { \"a b\" -> \"c\\\"d\"; }").unwrap();
        assert_eq!(g.node_count(), 2);
    }
}

//! The whitespace edge-list format.
//!
//! Grammar (one record per line):
//!
//! ```text
//! line    := ws* (edge ws*)? comment?
//! edge    := id ws+ id
//! id      := decimal integer in 0 ..= 99_999_999
//! comment := '#' anything-to-end-of-line
//! ```
//!
//! Node ids must be dense: the graph has nodes `0 ..= max id`, and since a
//! computational DAG has no isolated nodes, every id in that range must
//! appear in some edge. Labels are not representable. Duplicate edges and
//! self-loops are rejected at their source line; cycles are rejected after
//! parsing.

use crate::error::{ParseError, ParseErrorKind};
use pebble_dag::export;
use pebble_dag::{Dag, DagBuilder, NodeId};
use std::collections::HashSet;

/// The largest node id the parsers accept. Guards against a single malformed
/// line (`0 99999999999999`) allocating an absurd node table.
pub const MAX_NODE_ID: usize = 99_999_999;

/// Split a line into `(1-based char column, token)` pairs, stopping at an
/// unquoted `#` comment.
fn tokens(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<(usize, usize)> = None; // (col, byte offset)
    for (col0, (bytes, c)) in line.char_indices().enumerate() {
        if c == '#' {
            if let Some((col, b)) = start.take() {
                out.push((col + 1, &line[b..bytes]));
            }
            return out;
        }
        if c.is_whitespace() {
            if let Some((col, b)) = start.take() {
                out.push((col + 1, &line[b..bytes]));
            }
        } else if start.is_none() {
            start = Some((col0, bytes));
        }
    }
    if let Some((col, b)) = start.take() {
        out.push((col + 1, &line[b..]));
    }
    out
}

/// Parse a node id token, with a precise error on anything else.
pub(crate) fn parse_id(line: usize, col: usize, tok: &str) -> Result<usize, ParseError> {
    match tok.parse::<usize>() {
        Ok(id) if id <= MAX_NODE_ID => Ok(id),
        Ok(id) => Err(ParseError::syntax(
            line,
            col,
            format!("node id {id} exceeds the supported maximum {MAX_NODE_ID}"),
        )),
        Err(_) => Err(ParseError::syntax(
            line,
            col,
            format!("expected a node id, found `{tok}`"),
        )),
    }
}

/// Parse a whitespace edge-list document into a [`Dag`].
pub fn parse(input: &str) -> Result<Dag, ParseError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut max_id = 0usize;
    let mut any = false;
    for (lno0, line) in input.lines().enumerate() {
        let lno = lno0 + 1;
        let toks = tokens(line);
        match toks.as_slice() {
            [] => continue,
            [(ucol, utok), (vcol, vtok)] => {
                let u = parse_id(lno, *ucol, utok)?;
                let v = parse_id(lno, *vcol, vtok)?;
                if u == v {
                    return Err(ParseError::at(
                        lno,
                        *ucol,
                        ParseErrorKind::SelfLoop {
                            node: u.to_string(),
                        },
                    ));
                }
                if !seen.insert((u, v)) {
                    return Err(ParseError::at(
                        lno,
                        *ucol,
                        ParseErrorKind::DuplicateEdge {
                            from: u.to_string(),
                            to: v.to_string(),
                        },
                    ));
                }
                max_id = max_id.max(u).max(v);
                any = true;
                edges.push((u, v));
            }
            [(_, _)] => {
                let end = line.chars().count() + 1;
                return Err(ParseError::syntax(
                    lno,
                    end,
                    "edge line needs two node ids, found one",
                ));
            }
            [_, _, (col, tok), ..] => {
                return Err(ParseError::syntax(
                    lno,
                    *col,
                    format!("unexpected token `{tok}` after edge"),
                ));
            }
        }
    }
    if !any {
        return Err(ParseError::graph(pebble_dag::DagError::Empty));
    }
    let mut b = DagBuilder::new();
    b.add_nodes(max_id + 1);
    for (u, v) in edges {
        b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
    }
    b.build().map_err(ParseError::graph)
}

/// Render `dag` as a whitespace edge-list (delegates to
/// [`pebble_dag::export::to_edge_list`], which this parser round-trips).
pub fn write(dag: &Dag) -> String {
    export::to_edge_list(dag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blank_lines_and_edges() {
        let g = parse("# a chain\n\n0 1   # inline comment\n  1   2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn roundtrips_the_export_writer() {
        let g = parse("0 2\n2 1\n0 1\n").unwrap();
        let again = parse(&write(&g)).unwrap();
        assert_eq!(again.node_count(), g.node_count());
        for e in g.edges() {
            assert_eq!(again.edge_endpoints(e), g.edge_endpoints(e));
        }
    }

    #[test]
    fn bad_token_reports_line_and_col() {
        let err = parse("0 1\n1 x2\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2, col 3: expected a node id, found `x2`"
        );
    }

    #[test]
    fn missing_endpoint_reports_line_end() {
        let err = parse("0 1\n3\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2, col 2: edge line needs two node ids, found one"
        );
    }

    #[test]
    fn extra_token_is_rejected() {
        let err = parse("0 1 2\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 1, col 5: unexpected token `2` after edge"
        );
    }

    #[test]
    fn duplicate_edge_and_self_loop_are_located() {
        let err = parse("0 1\n0 1\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2, col 1: duplicate edge 0 -> 1");
        let err = parse("0 1\n2 2\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2, col 1: self-loop on node 2");
    }

    #[test]
    fn cycle_and_empty_are_structural() {
        let err = parse("0 1\n1 0\n").unwrap_err();
        assert_eq!(err.location, None);
        assert_eq!(err.to_string(), "edge set contains a directed cycle");
        assert!(parse("# nothing\n").is_err());
    }

    #[test]
    fn sparse_ids_fail_as_isolated_nodes() {
        let err = parse("0 2\n").unwrap_err();
        assert!(err.to_string().contains("isolated"));
    }

    #[test]
    fn oversized_ids_are_rejected() {
        let err = parse("0 999999999999\n").unwrap_err();
        assert!(err.to_string().contains("exceeds the supported maximum"));
    }
}

//! A compact, fixed-capacity bit set over `u64` words.
//!
//! The pebbling engines and the exact solvers keep many node/edge sets per
//! search state; a word-packed bit set keeps those states small, cheap to
//! clone, cheap to hash and cheap to compare — all of which the uniform-cost
//! search over pebbling configurations relies on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Fixed-capacity bit set. Capacity is set at construction and never grows.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    /// Number of addressable bits.
    len: usize,
    /// Packed words; bits beyond `len` are always zero.
    words: Vec<u64>,
}

impl BitSet {
    /// Create an empty bit set with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Create a bit set of capacity `len` with every bit set.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Number of addressable bits (the capacity, not the number of set bits).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set bit `i`. Returns `true` if the bit was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let was_clear = self.words[w] & mask == 0;
        self.words[w] |= mask;
        was_clear
    }

    /// Clear bit `i`. Returns `true` if the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let was_set = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was_set
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Remove all bits.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union with `other`. Both sets must have identical capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other`. Both sets must have identical capacity.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference (`self \ other`). Both sets must have identical capacity.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Returns `true` if `self` and `other` share no set bit.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collect the indices of set bits into a `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Construct from an iterator of set-bit indices and a capacity.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut s = Self::new(len);
        for i in indices {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = BitSet::from_indices(100, [5, 99, 63, 64, 0]);
        assert_eq!(s.to_vec(), vec![0, 5, 63, 64, 99]);
    }

    #[test]
    fn full_has_all_bits() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!((0..70).all(|i| s.contains(i)));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, [1, 2, 3]);
        let b = BitSet::from_indices(10, [3, 4]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 2]);

        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_indices(20, [1, 19]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn equality_and_hash_depend_only_on_bits() {
        use std::collections::HashSet;
        let a = BitSet::from_indices(65, [0, 64]);
        let b = BitSet::from_indices(65, [64, 0]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_indices(mut indices in proptest::collection::vec(0usize..256, 0..64)) {
            let s = BitSet::from_indices(256, indices.clone());
            indices.sort_unstable();
            indices.dedup();
            prop_assert_eq!(s.to_vec(), indices.clone());
            prop_assert_eq!(s.count(), indices.len());
        }

        #[test]
        fn prop_union_is_superset(
            a in proptest::collection::vec(0usize..128, 0..32),
            b in proptest::collection::vec(0usize..128, 0..32),
        ) {
            let sa = BitSet::from_indices(128, a);
            let sb = BitSet::from_indices(128, b);
            let mut u = sa.clone();
            u.union_with(&sb);
            prop_assert!(sa.is_subset(&u));
            prop_assert!(sb.is_subset(&u));
            prop_assert_eq!(u.count(), {
                let mut c = sa.to_vec();
                c.extend(sb.to_vec());
                c.sort_unstable();
                c.dedup();
                c.len()
            });
        }

        #[test]
        fn prop_difference_disjoint_from_subtrahend(
            a in proptest::collection::vec(0usize..128, 0..32),
            b in proptest::collection::vec(0usize..128, 0..32),
        ) {
            let sa = BitSet::from_indices(128, a);
            let sb = BitSet::from_indices(128, b);
            let mut d = sa.clone();
            d.difference_with(&sb);
            prop_assert!(d.is_disjoint(&sb));
            prop_assert!(d.is_subset(&sa));
        }
    }
}

//! Structure detection and DAG decomposition.
//!
//! The paper's near-optimal strategies (blocked FFT, tiled matmul, streaming
//! attention) all exploit the same fact: large computational DAGs decompose
//! into components that can be scheduled (almost) independently, paying I/O
//! only for the values that cross component boundaries. This module detects
//! and extracts that structure *generically*, from the graph alone:
//!
//! * [`Strategy::Wcc`] — weakly connected components: fully independent
//!   sub-DAGs with no boundary at all.
//! * [`Strategy::LevelBands`] — cut the level structure into bands of
//!   consecutive levels and split each band into its weakly connected
//!   pieces. On the FFT butterfly, bands of `h` levels shatter into
//!   independent `2^h`-wide sub-butterflies — exactly the paper's blocked
//!   strategy.
//! * [`Strategy::SinkCones`] — when every internal (non-source, non-sink)
//!   node has out-degree 1, every non-source node belongs to the *cone* of a
//!   unique sink; cones are pairwise edge-disjoint and interact only through
//!   shared sources. Merging cones that share many sources yields the tiles
//!   of the paper's tiled matmul / streaming attention strategies.
//! * [`Strategy::Whole`] — the trivial single-component decomposition.
//!
//! Every decomposition is a *partition* of (a subset of) the nodes into
//! [`Component`]s listed in a topological order of the component quotient,
//! with explicit boundary sets (`inputs` / `outputs`) and the [`cut
//! edges`](Decomposition::cut_edges) crossing between parts. Global sources
//! that serve several components (the shared matrices of a tiling) may stay
//! unassigned ([`Decomposition::shared_sources`]); they need no schedule of
//! their own — each consumer loads them on demand.
//!
//! [`classify`] names the shape of a sub-DAG (chain, in-/out-tree,
//! two-terminal series-parallel via the standard reduction recognition,
//! …), and [`extract_component`] materialises a component plus its boundary
//! inputs as a standalone [`Dag`] for scheduling.

use crate::bitset::BitSet;
use crate::graph::{Dag, DagBuilder};
use crate::ids::{EdgeId, NodeId};
use crate::topo;
use std::collections::HashMap;

/// The recognised shape of a component's node-induced sub-DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A simple directed path.
    Chain,
    /// Every node has in-degree ≤ 1 (a rooted forest fanning out).
    OutTree,
    /// Every node has out-degree ≤ 1 (a reduction forest fanning in).
    InTree,
    /// A two-terminal series-parallel DAG (single source, single sink,
    /// reducible to one edge by series/parallel reductions).
    SeriesParallel,
    /// A union of sink cones glued by shared inputs (a tile).
    Cone,
    /// A weakly connected slice of a level band.
    Band,
    /// No special structure detected.
    General,
}

impl ComponentKind {
    /// Stable lowercase name for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            ComponentKind::Chain => "chain",
            ComponentKind::OutTree => "out-tree",
            ComponentKind::InTree => "in-tree",
            ComponentKind::SeriesParallel => "series-parallel",
            ComponentKind::Cone => "cone",
            ComponentKind::Band => "band",
            ComponentKind::General => "general",
        }
    }
}

/// One part of a [`Decomposition`]: a set of member nodes plus its boundary.
#[derive(Debug, Clone)]
pub struct Component {
    /// Member nodes, ascending.
    pub nodes: Vec<NodeId>,
    /// Shape of the member-induced sub-DAG.
    pub kind: ComponentKind,
    /// Boundary inputs: non-member nodes with an edge into a member,
    /// ascending. When the component is scheduled on its own these become
    /// sources of the extracted sub-DAG.
    pub inputs: Vec<NodeId>,
    /// Boundary outputs: member nodes with an edge leaving the component,
    /// ascending. Their values must survive (be saved) past the component's
    /// schedule.
    pub outputs: Vec<NodeId>,
}

/// How to split the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One component containing every node.
    Whole,
    /// Weakly connected components.
    Wcc,
    /// Bands of consecutive levels, split into pieces connected either
    /// directly or through a shared boundary input (so every value crossing
    /// the cut is loaded by exactly one piece); bands grow level by level
    /// while every piece (including its boundary inputs) stays within
    /// `max_nodes`.
    LevelBands {
        /// Size cap per component (members + boundary inputs).
        max_nodes: usize,
    },
    /// Sink cones merged into tiles by shared-input affinity. Only
    /// applicable when every internal node has out-degree 1.
    SinkCones {
        /// Size cap per tile (members + boundary inputs).
        max_nodes: usize,
        /// Cap on sinks per tile: every unsaved sink of a tile is a live
        /// accumulator during its schedule, so this bounds the working set
        /// a cache of size `r` must hold (callers typically pass `~3r/4`).
        max_sinks: usize,
    },
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Strategy::Whole => write!(f, "whole"),
            Strategy::Wcc => write!(f, "wcc"),
            Strategy::LevelBands { max_nodes } => write!(f, "bands:{max_nodes}"),
            Strategy::SinkCones {
                max_nodes,
                max_sinks,
            } => write!(f, "cones:{max_nodes}:{max_sinks}"),
        }
    }
}

/// The recursive structure of a decomposition: which split produced which
/// leaf components.
#[derive(Debug, Clone)]
pub enum DecompTree {
    /// A leaf: index into [`Decomposition::components`].
    Leaf(usize),
    /// An internal split node.
    Split {
        /// What kind of split this node performed.
        kind: SplitKind,
        /// The parts, in the same order as the components they contain.
        parts: Vec<DecompTree>,
    },
}

/// The kind of split performed by a [`DecompTree::Split`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Split into weakly connected components.
    Connectivity,
    /// Split into bands of consecutive levels.
    Bands,
    /// Split into tiles of merged sink cones.
    Tiles,
}

/// A decomposition of the DAG into independently schedulable components.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The strategy that produced this decomposition.
    pub strategy: Strategy,
    /// The components, in a topological order of the component quotient:
    /// every cut edge goes from an earlier component (or a shared source) to
    /// a later one, so the components can be scheduled in listed order.
    pub components: Vec<Component>,
    /// Edges whose endpoints do not belong to the same component (including
    /// edges out of [`Decomposition::shared_sources`]), ascending.
    pub cut_edges: Vec<EdgeId>,
    /// Source nodes assigned to no component (inputs shared between several
    /// components, e.g. the matrices of a tiling). Always global sources.
    pub shared_sources: Vec<NodeId>,
    /// The split structure that produced the components.
    pub tree: DecompTree,
}

impl Decomposition {
    /// Total number of member nodes across all components.
    pub fn assigned_nodes(&self) -> usize {
        self.components.iter().map(|c| c.nodes.len()).sum()
    }

    /// Size of the largest component (members + boundary inputs).
    pub fn max_component_size(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.nodes.len() + c.inputs.len())
            .max()
            .unwrap_or(0)
    }
}

/// Decompose `dag` with `strategy`. Returns `None` when the strategy does
/// not apply ([`Strategy::SinkCones`] on a DAG with an internal node of
/// out-degree ≥ 2).
pub fn decompose(dag: &Dag, strategy: Strategy) -> Option<Decomposition> {
    match strategy {
        Strategy::Whole => Some(whole(dag)),
        Strategy::Wcc => Some(wcc(dag)),
        Strategy::LevelBands { max_nodes } => Some(level_bands(dag, max_nodes)),
        Strategy::SinkCones {
            max_nodes,
            max_sinks,
        } => sink_cones(dag, max_nodes, max_sinks),
    }
}

/// Classify the shape of the sub-DAG induced by `members` (which must be
/// sorted ascending). Degree tests (chain / trees) are exact; the
/// series-parallel reduction is attempted on connected single-source,
/// single-sink shapes up to a few thousand nodes.
pub fn classify(dag: &Dag, members: &[NodeId]) -> ComponentKind {
    let mut in_set = dag.node_set();
    for &v in members {
        in_set.insert(v.index());
    }
    let ind = |v: NodeId| {
        dag.predecessors(v)
            .filter(|u| in_set.contains(u.index()))
            .count()
    };
    let outd = |v: NodeId| {
        dag.successors(v)
            .filter(|w| in_set.contains(w.index()))
            .count()
    };
    let max_in = members.iter().map(|&v| ind(v)).max().unwrap_or(0);
    let max_out = members.iter().map(|&v| outd(v)).max().unwrap_or(0);
    if max_in <= 1 && max_out <= 1 {
        return ComponentKind::Chain;
    }
    if max_in <= 1 {
        return ComponentKind::OutTree;
    }
    if max_out <= 1 {
        return ComponentKind::InTree;
    }
    let srcs = members.iter().filter(|&&v| ind(v) == 0).count();
    let sinks = members.iter().filter(|&&v| outd(v) == 0).count();
    if srcs == 1 && sinks == 1 && members.len() <= 4096 {
        // Build the induced sub-DAG and run the reduction recognition.
        let local: HashMap<NodeId, usize> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut edges = Vec::new();
        for &v in members {
            for w in dag.successors(v) {
                if let Some(&wl) = local.get(&w) {
                    edges.push((local[&v], wl));
                }
            }
        }
        if is_series_parallel_edges(members.len(), &edges) {
            return ComponentKind::SeriesParallel;
        }
    }
    ComponentKind::General
}

/// Returns `true` if `dag` is a two-terminal series-parallel DAG: a single
/// source, a single sink, and reducible to one edge by exhaustively applying
/// *series* reductions (bypass a vertex with exactly one in- and one
/// out-neighbour) and *parallel* reductions (merge parallel edges). The
/// reduction system is confluent, so one exhaustive pass decides membership.
pub fn is_series_parallel(dag: &Dag) -> bool {
    if dag.sources().len() != 1 || dag.sinks().len() != 1 {
        return false;
    }
    let edges: Vec<(usize, usize)> = dag
        .edges()
        .map(|e| {
            let (u, v) = dag.edge_endpoints(e);
            (u.index(), v.index())
        })
        .collect();
    is_series_parallel_edges(dag.node_count(), &edges)
}

/// Reduction recognition over an explicit edge list on nodes `0..n`.
/// Parallel edges produced by series reductions merge immediately (set
/// adjacency), so a vertex is series-reducible exactly when it has one
/// distinct in-neighbour and one distinct out-neighbour.
fn is_series_parallel_edges(n: usize, edges: &[(usize, usize)]) -> bool {
    if n == 1 {
        return edges.is_empty();
    }
    let mut out: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    let mut inn: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for &(u, v) in edges {
        out[u].insert(v);
        inn[v].insert(u);
    }
    let mut alive = n;
    let mut queue: Vec<usize> = (0..n)
        .filter(|&v| inn[v].len() == 1 && out[v].len() == 1)
        .collect();
    let mut queued = vec![false; n];
    for &v in &queue {
        queued[v] = true;
    }
    let mut removed = vec![false; n];
    while let Some(v) = queue.pop() {
        queued[v] = false;
        if removed[v] || inn[v].len() != 1 || out[v].len() != 1 {
            continue;
        }
        let u = *inn[v].iter().next().expect("one in-neighbour");
        let w = *out[v].iter().next().expect("one out-neighbour");
        // u -> v -> w becomes u -> w; a pre-existing u -> w edge absorbs it
        // (parallel reduction).
        removed[v] = true;
        alive -= 1;
        out[u].remove(&v);
        inn[w].remove(&v);
        out[u].insert(w);
        inn[w].insert(u);
        for x in [u, w] {
            if !removed[x] && inn[x].len() == 1 && out[x].len() == 1 && !queued[x] {
                queued[x] = true;
                queue.push(x);
            }
        }
    }
    if alive != 2 {
        return false;
    }
    let survivors: Vec<usize> = (0..n).filter(|&v| !removed[v]).collect();
    let (s, t) = (survivors[0], survivors[1]);
    // Exactly the edge s -> t (or t -> s) must remain.
    (out[s].len() == 1 && out[s].contains(&t) && inn[s].is_empty() && out[t].is_empty())
        || (out[t].len() == 1 && out[t].contains(&s) && inn[t].is_empty() && out[s].is_empty())
}

/// Assemble a `Decomposition` from a member partition: computes boundaries,
/// cut edges and per-component kinds. `parts` must be disjoint, each sorted
/// ascending, and listed in quotient-topological order. `kind_hint`
/// overrides classification for non-tree shapes (bands stay "band", tiles
/// stay "cone") while genuinely recognised shapes keep their name.
fn assemble(
    dag: &Dag,
    strategy: Strategy,
    parts: Vec<Vec<NodeId>>,
    kind_hint: Option<ComponentKind>,
    tree: impl FnOnce(&[Component]) -> DecompTree,
) -> Decomposition {
    let n = dag.node_count();
    let mut owner: Vec<u32> = vec![u32::MAX; n];
    for (i, part) in parts.iter().enumerate() {
        for &v in part {
            owner[v.index()] = i as u32;
        }
    }
    let mut components = Vec::with_capacity(parts.len());
    for part in &parts {
        let idx = owner[part[0].index()];
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut seen_inputs = BitSet::new(n);
        for &v in part {
            for u in dag.predecessors(v) {
                if owner[u.index()] != idx && !seen_inputs.contains(u.index()) {
                    seen_inputs.insert(u.index());
                    inputs.push(u);
                }
            }
            if dag.successors(v).any(|w| owner[w.index()] != idx) {
                outputs.push(v);
            }
        }
        inputs.sort();
        let kind = match kind_hint {
            Some(hint) => {
                let detected = classify(dag, part);
                if detected == ComponentKind::General {
                    hint
                } else {
                    detected
                }
            }
            None => classify(dag, part),
        };
        components.push(Component {
            nodes: part.clone(),
            kind,
            inputs,
            outputs,
        });
    }
    let cut_edges: Vec<EdgeId> = dag
        .edges()
        .filter(|&e| {
            let (u, v) = dag.edge_endpoints(e);
            owner[u.index()] == u32::MAX || owner[u.index()] != owner[v.index()]
        })
        .collect();
    let shared_sources: Vec<NodeId> = dag
        .nodes()
        .filter(|&v| owner[v.index()] == u32::MAX)
        .collect();
    debug_assert!(shared_sources.iter().all(|&v| dag.is_source(v)));
    let tree = tree(&components);
    Decomposition {
        strategy,
        components,
        cut_edges,
        shared_sources,
        tree,
    }
}

fn whole(dag: &Dag) -> Decomposition {
    let all: Vec<NodeId> = dag.nodes().collect();
    assemble(dag, Strategy::Whole, vec![all], None, |_| {
        DecompTree::Leaf(0)
    })
}

/// Weakly connected components via union-find, listed by smallest member id.
fn wcc(dag: &Dag) -> Decomposition {
    let n = dag.node_count();
    let mut uf = UnionFind::new(n);
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        uf.union(u.index(), v.index());
    }
    let parts = uf.groups(dag.nodes());
    assemble(dag, Strategy::Wcc, parts, None, |comps| DecompTree::Split {
        kind: SplitKind::Connectivity,
        parts: (0..comps.len()).map(DecompTree::Leaf).collect(),
    })
}

/// Band the level structure: grow each band level by level while every
/// weakly connected piece of the band (counting the band's boundary inputs)
/// stays within `max_nodes`; a band always contains at least one level.
/// Sources (level 0) join the band of their earliest consumer, so every
/// component's extracted sub-DAG has at least one edge per member.
fn level_bands(dag: &Dag, max_nodes: usize) -> Decomposition {
    let levels = topo::levels(dag);
    let depth = levels.iter().copied().max().unwrap_or(0);
    let n = dag.node_count();
    // Nodes by level, sources remapped to their earliest consumer's level.
    let mut effective = vec![0usize; n];
    for v in dag.nodes() {
        effective[v.index()] = if dag.is_source(v) {
            dag.successors(v)
                .map(|w| levels[w.index()])
                .min()
                .expect("no isolated nodes")
        } else {
            levels[v.index()]
        };
    }
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); depth + 1];
    for v in dag.nodes() {
        by_level[effective[v.index()]].push(v);
    }

    // Greedy band growth. Piece sizes are re-derived per tentative
    // extension; boundary inputs (predecessors in earlier bands) count
    // toward the cap because they are part of the extracted sub-DAG a
    // scheduler must handle.
    let mut bands: Vec<Vec<NodeId>> = Vec::new();
    let mut start = 1usize.min(depth); // level 0 holds only remapped sources
    while start <= depth {
        let mut end = start; // inclusive
        loop {
            if end + 1 > depth {
                break;
            }
            if max_piece_size(dag, &by_level, start, end + 1) > max_nodes {
                break;
            }
            end += 1;
        }
        let mut band: Vec<NodeId> = Vec::new();
        for level in &by_level[(if start == 1 { 0 } else { start })..=end] {
            band.extend(level.iter().copied());
        }
        band.sort();
        bands.push(band);
        start = end + 1;
    }
    if bands.is_empty() {
        // depth == 0 is impossible for a valid Dag (it has at least one
        // edge), but stay total.
        return whole(dag);
    }

    // Split each band into pieces, gluing through shared boundary inputs:
    // two band nodes consuming the same earlier-band value belong together,
    // so every crossing value is loaded by exactly one piece. (On the FFT
    // this is what re-aligns each band's blocks with the stage crossing the
    // cut — the structure the paper's blocked strategy exploits.)
    let mut parts: Vec<Vec<NodeId>> = Vec::new();
    let mut band_part_counts = Vec::with_capacity(bands.len());
    for band in &bands {
        let groups = band_pieces(dag, band).0;
        band_part_counts.push(groups.len());
        parts.extend(groups);
    }
    let strategy = Strategy::LevelBands { max_nodes };
    assemble(dag, strategy, parts, Some(ComponentKind::Band), |_| {
        let mut next = 0usize;
        let band_parts: Vec<DecompTree> = band_part_counts
            .iter()
            .map(|&count| {
                let leaves: Vec<DecompTree> = (next..next + count).map(DecompTree::Leaf).collect();
                next += count;
                DecompTree::Split {
                    kind: SplitKind::Connectivity,
                    parts: leaves,
                }
            })
            .collect();
        DecompTree::Split {
            kind: SplitKind::Bands,
            parts: band_parts,
        }
    })
}

/// The pieces of one band: groups of band nodes connected directly or
/// through a shared boundary input, together with the piece sizes counting
/// members plus *distinct* boundary inputs.
fn band_pieces(dag: &Dag, band: &[NodeId]) -> (Vec<Vec<NodeId>>, Vec<usize>) {
    let local: HashMap<NodeId, usize> = band.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Boundary inputs get union-find slots after the band members.
    let mut input_slot: HashMap<NodeId, usize> = HashMap::new();
    let mut slots = band.len();
    for &v in band {
        for u in dag.predecessors(v) {
            if !local.contains_key(&u) && !input_slot.contains_key(&u) {
                input_slot.insert(u, slots);
                slots += 1;
            }
        }
    }
    let mut uf = UnionFind::new(slots);
    for (i, &v) in band.iter().enumerate() {
        for u in dag.predecessors(v) {
            let us = local.get(&u).copied().unwrap_or_else(|| input_slot[&u]);
            uf.union(i, us);
        }
    }
    let mut groups: HashMap<usize, (Vec<NodeId>, usize)> = HashMap::new();
    for (i, &v) in band.iter().enumerate() {
        let root = uf.find(i);
        let entry = groups.entry(root).or_default();
        entry.0.push(v);
        entry.1 += 1;
    }
    for &slot in input_slot.values() {
        let root = uf.find(slot);
        // Inputs whose consumers all left the band cannot occur (slots are
        // created from band members' predecessors), so the root is present.
        if let Some(entry) = groups.get_mut(&root) {
            entry.1 += 1;
        }
    }
    let mut list: Vec<(Vec<NodeId>, usize)> = groups.into_values().collect();
    for (g, _) in &mut list {
        g.sort();
    }
    list.sort_by_key(|(g, _)| g[0]);
    list.into_iter().unzip()
}

/// Largest piece (members + distinct boundary inputs) of the band covering
/// `levels[start..=end]`, with level-0 sources pulled in.
fn max_piece_size(dag: &Dag, by_level: &[Vec<NodeId>], start: usize, end: usize) -> usize {
    let mut band: Vec<NodeId> = Vec::new();
    for level in &by_level[(if start == 1 { 0 } else { start })..=end] {
        band.extend(level.iter().copied());
    }
    band.sort();
    let (_, sizes) = band_pieces(dag, &band);
    sizes.into_iter().max().unwrap_or(0)
}

/// Sink-cone tiling. Applicable only when every non-source, non-sink node
/// has out-degree exactly 1: then every non-source node lies on a unique
/// out-path to a sink (its cone), cones are vertex-disjoint, and all
/// interaction happens through shared sources. Cones are merged into tiles
/// in pairwise rounds, each cone/tile joining the partner with the largest
/// shared-input set (ties: smaller merged input set, then smaller id), while
/// members + distinct inputs stay within `max_nodes` and the tile keeps at
/// most `max_sinks` sinks (live accumulators during its schedule).
fn sink_cones(dag: &Dag, max_nodes: usize, max_sinks: usize) -> Option<Decomposition> {
    for v in dag.nodes() {
        if !dag.is_source(v) && !dag.is_sink(v) && dag.out_degree(v) != 1 {
            return None;
        }
    }
    let n = dag.node_count();
    // Cone id per node: follow the unique out-edge to the sink (memoised).
    let mut cone: Vec<u32> = vec![u32::MAX; n];
    let sinks = dag.sinks();
    let sink_index: HashMap<NodeId, u32> = sinks
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    for v in dag.nodes() {
        if dag.is_source(v) {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = v;
        while cone[cur.index()] == u32::MAX {
            if let Some(&si) = sink_index.get(&cur) {
                cone[cur.index()] = si;
                break;
            }
            path.push(cur);
            cur = dag
                .successors(cur)
                .next()
                .expect("internal nodes have out-degree 1");
        }
        let id = cone[cur.index()];
        for p in path {
            cone[p.index()] = id;
        }
    }

    // Tiles start as single cones, with their distinct source inputs.
    struct Tile {
        cones: Vec<u32>,
        nodes: usize,
        inputs: Vec<u32>, // sorted source ids
    }
    let mut tiles: Vec<Tile> = sinks
        .iter()
        .enumerate()
        .map(|(i, _)| Tile {
            cones: vec![i as u32],
            nodes: 0,
            inputs: Vec::new(),
        })
        .collect();
    for v in dag.nodes() {
        if dag.is_source(v) {
            continue;
        }
        let t = &mut tiles[cone[v.index()] as usize];
        t.nodes += 1;
        for u in dag.predecessors(v) {
            if dag.is_source(u) {
                t.inputs.push(u.index() as u32);
            }
        }
    }
    for t in &mut tiles {
        t.inputs.sort_unstable();
        t.inputs.dedup();
    }

    // Pairwise merge rounds. Alternating row/column merges emerge naturally
    // on product-structured input sets (matmul, attention): after the first
    // (tie-broken) round, the orthogonal direction shares strictly more
    // inputs, so tiles stay near-square.
    loop {
        let k = tiles.len();
        if k <= 1 {
            break;
        }
        // Inverted index: input -> tiles using it.
        let mut users: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, t) in tiles.iter().enumerate() {
            for &inp in &t.inputs {
                users.entry(inp).or_default().push(i);
            }
        }
        let mut merged_into: Vec<Option<usize>> = vec![None; k];
        let mut taken = vec![false; k];
        let mut shared = vec![0usize; k];
        let mut touched: Vec<usize> = Vec::new();
        let mut any = false;
        for i in 0..k {
            if taken[i] {
                continue;
            }
            for &inp in &tiles[i].inputs {
                for &j in &users[&inp] {
                    if j != i && !taken[j] {
                        if shared[j] == 0 {
                            touched.push(j);
                        }
                        shared[j] += 1;
                    }
                }
            }
            // Best partner: most shared inputs, then smallest merged input
            // set, then smallest index.
            let mut best: Option<(usize, usize, usize)> = None; // (j, shared, union)
            touched.sort_unstable();
            for &j in &touched {
                let sh = shared[j];
                let union = tiles[i].inputs.len() + tiles[j].inputs.len() - sh;
                let total = tiles[i].nodes + tiles[j].nodes + union;
                if total > max_nodes || tiles[i].cones.len() + tiles[j].cones.len() > max_sinks {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bs, bu)) => sh > bs || (sh == bs && union < bu),
                };
                if better {
                    best = Some((j, sh, union));
                }
            }
            for &j in &touched {
                shared[j] = 0;
            }
            touched.clear();
            if let Some((j, _, _)) = best {
                taken[i] = true;
                taken[j] = true;
                merged_into[j] = Some(i);
                any = true;
            }
        }
        if !any {
            break;
        }
        let mut next: Vec<Tile> = Vec::new();
        let mut moved: Vec<Option<usize>> = vec![None; k];
        for i in 0..k {
            if merged_into[i].is_some() {
                continue;
            }
            moved[i] = Some(next.len());
            next.push(Tile {
                cones: std::mem::take(&mut tiles[i].cones),
                nodes: tiles[i].nodes,
                inputs: std::mem::take(&mut tiles[i].inputs),
            });
        }
        for j in 0..k {
            if let Some(i) = merged_into[j] {
                let slot = moved[i].expect("merge target survives");
                let t = &mut next[slot];
                t.cones.extend(tiles[j].cones.iter().copied());
                t.nodes += tiles[j].nodes;
                let mut inputs = std::mem::take(&mut t.inputs);
                inputs.extend(tiles[j].inputs.iter().copied());
                inputs.sort_unstable();
                inputs.dedup();
                t.inputs = inputs;
            }
        }
        tiles = next;
    }

    // Materialise member lists.
    let mut tile_of_cone: Vec<u32> = vec![0; sinks.len()];
    for (ti, t) in tiles.iter().enumerate() {
        for &c in &t.cones {
            tile_of_cone[c as usize] = ti as u32;
        }
    }
    let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); tiles.len()];
    for v in dag.nodes() {
        if !dag.is_source(v) {
            parts[tile_of_cone[cone[v.index()] as usize] as usize].push(v);
        }
    }
    parts.retain(|p| !p.is_empty());
    let strategy = Strategy::SinkCones {
        max_nodes,
        max_sinks,
    };
    Some(assemble(
        dag,
        strategy,
        parts,
        Some(ComponentKind::Cone),
        |comps| DecompTree::Split {
            kind: SplitKind::Tiles,
            parts: (0..comps.len()).map(DecompTree::Leaf).collect(),
        },
    ))
}

/// A component materialised as a standalone [`Dag`]: the members plus their
/// boundary inputs (which become sources), with every in-edge of every
/// member preserved.
#[derive(Debug, Clone)]
pub struct ExtractedComponent {
    /// The extracted sub-DAG; local node ids are dense.
    pub dag: Dag,
    /// Global id of each local node, ascending (local order preserves global
    /// order).
    pub to_global: Vec<NodeId>,
    /// `true` at local positions that are boundary inputs (sub-DAG sources
    /// that the surrounding schedule must have saved).
    pub is_input: Vec<bool>,
}

/// Extract `component` (members + boundary inputs) from `dag`.
///
/// The sub-DAG contains every in-edge of every member — internal edges and
/// cross edges from boundary inputs alike — so a valid pebbling of the
/// sub-DAG marks exactly the member in-edges of the original DAG. Edges are
/// inserted grouped by target member in ascending order (deterministic).
pub fn extract_component(dag: &Dag, component: &Component) -> ExtractedComponent {
    let mut to_global: Vec<NodeId> = component
        .inputs
        .iter()
        .chain(component.nodes.iter())
        .copied()
        .collect();
    to_global.sort();
    let local: HashMap<NodeId, usize> =
        to_global.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut member = vec![false; to_global.len()];
    for &v in &component.nodes {
        member[local[&v]] = true;
    }
    let mut b = DagBuilder::new();
    for &g in &to_global {
        b.add_labeled_node(dag.label(g));
    }
    for &v in &component.nodes {
        for &(u, _) in dag.in_edges(v) {
            b.add_edge(NodeId::from_index(local[&u]), NodeId::from_index(local[&v]));
        }
    }
    let sub = b.build().expect("component extraction preserves validity");
    let is_input = member.iter().map(|&m| !m).collect();
    ExtractedComponent {
        dag: sub,
        to_global,
        is_input,
    }
}

/// The member-induced *internal* sub-DAG of a component: members only,
/// edges with both endpoints inside, nodes left isolated by the restriction
/// dropped. Returns `None` when no internal edge survives. Used by the
/// composable lower bounds of `pebble-bounds`.
#[derive(Debug, Clone)]
pub struct InternalSubDag {
    /// The internal sub-DAG.
    pub dag: Dag,
    /// Global id of each local node, ascending.
    pub to_global: Vec<NodeId>,
    /// Members kept that have no internal in-edge but at least one global
    /// in-edge ("fake sources": really computed from values outside the
    /// component).
    pub fake_sources: usize,
    /// Members kept that have no internal out-edge but at least one global
    /// out-edge ("fake sinks": their value crosses the boundary and the
    /// surrounding schedule need not save it).
    pub fake_sinks: usize,
}

/// Build the internal sub-DAG of `members` (sorted ascending).
pub fn extract_internal(dag: &Dag, members: &[NodeId]) -> Option<InternalSubDag> {
    let mut in_set = dag.node_set();
    for &v in members {
        in_set.insert(v.index());
    }
    let keep: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|&v| {
            dag.predecessors(v).any(|u| in_set.contains(u.index()))
                || dag.successors(v).any(|w| in_set.contains(w.index()))
        })
        .collect();
    if keep.is_empty() {
        return None;
    }
    let local: HashMap<NodeId, usize> = keep.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut b = DagBuilder::new();
    for &g in &keep {
        b.add_labeled_node(dag.label(g));
    }
    let mut fake_sources = 0;
    let mut fake_sinks = 0;
    for &v in &keep {
        let mut internal_in = 0;
        for &(u, _) in dag.in_edges(v) {
            if in_set.contains(u.index()) {
                b.add_edge(NodeId::from_index(local[&u]), NodeId::from_index(local[&v]));
                internal_in += 1;
            }
        }
        if internal_in == 0 && dag.in_degree(v) > 0 {
            fake_sources += 1;
        }
        let internal_out = dag
            .successors(v)
            .filter(|w| in_set.contains(w.index()))
            .count();
        if internal_out == 0 && dag.out_degree(v) > 0 {
            fake_sinks += 1;
        }
    }
    let sub = b.build().expect("internal extraction preserves validity");
    Some(InternalSubDag {
        dag: sub,
        to_global: keep,
        fake_sources,
        fake_sinks,
    })
}

/// Union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] as usize != v {
            self.parent[v] = self.parent[self.parent[v] as usize];
            v = self.parent[v] as usize;
        }
        v
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
    }

    /// Groups over dense ids `0..n` named by the given node iterator, listed
    /// by smallest member, each sorted ascending.
    fn groups(&mut self, nodes: impl Iterator<Item = NodeId>) -> Vec<Vec<NodeId>> {
        let all: Vec<NodeId> = nodes.collect();
        self.groups_mapped(&all)
    }

    /// Groups where dense id `i` stands for `names[i]`.
    fn groups_mapped(&mut self, names: &[NodeId]) -> Vec<Vec<NodeId>> {
        let mut by_root: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for (i, &v) in names.iter().enumerate() {
            by_root.entry(self.find(i)).or_default().push(v);
        }
        let mut groups: Vec<Vec<NodeId>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort();
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{binary_tree, fft, matmul};

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new();
        let nodes = b.add_nodes(n);
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[3]);
        b.add_edge(n[2], n[3]);
        b.build().unwrap()
    }

    fn two_chains() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.add_edge(n[3], n[4]);
        b.add_edge(n[4], n[5]);
        b.build().unwrap()
    }

    #[test]
    fn classification_recognises_shapes() {
        let c = chain(5);
        assert_eq!(
            classify(&c, &c.nodes().collect::<Vec<_>>()),
            ComponentKind::Chain
        );
        let t = binary_tree(3);
        assert_eq!(
            classify(&t, &t.nodes().collect::<Vec<_>>()),
            ComponentKind::InTree
        );
        let d = diamond();
        assert_eq!(
            classify(&d, &d.nodes().collect::<Vec<_>>()),
            ComponentKind::SeriesParallel
        );
        let f = fft(8).dag;
        assert_eq!(
            classify(&f, &f.nodes().collect::<Vec<_>>()),
            ComponentKind::General
        );
    }

    #[test]
    fn series_parallel_recognition() {
        assert!(is_series_parallel(&chain(4)));
        assert!(is_series_parallel(&diamond()));
        // Nested: diamond with one arm itself a diamond-in-series.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[5]);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[2], n[3]);
        b.add_edge(n[2], n[4]);
        b.add_edge(n[3], n[5]);
        b.add_edge(n[4], n[5]);
        assert!(is_series_parallel(&b.build().unwrap()));
        // The FFT butterfly is the canonical non-SP DAG (the W shape).
        assert!(!is_series_parallel(&fft(4).dag));
        // Two sources: not two-terminal.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        assert!(!is_series_parallel(&b.build().unwrap()));
    }

    #[test]
    fn wcc_splits_disconnected_dags() {
        let d = wcc(&two_chains());
        assert_eq!(d.components.len(), 2);
        assert!(d.cut_edges.is_empty());
        assert!(d.shared_sources.is_empty());
        assert_eq!(d.components[0].kind, ComponentKind::Chain);
        assert!(d.components.iter().all(|c| c.inputs.is_empty()));
        assert_eq!(d.assigned_nodes(), 6);
    }

    #[test]
    fn level_bands_shatter_the_fft_into_blocks() {
        let f = fft(16).dag; // 5 levels of 16 nodes
        let d = decompose(&f, Strategy::LevelBands { max_nodes: 24 }).unwrap();
        // Bands of 2 compute levels split into 4-wide sub-butterflies.
        assert!(d.components.len() > 1);
        assert!(d.max_component_size() <= 24);
        assert_eq!(d.assigned_nodes(), f.node_count());
        // Every cut edge goes from an earlier component to a later one.
        let mut owner = vec![usize::MAX; f.node_count()];
        for (i, c) in d.components.iter().enumerate() {
            for &v in &c.nodes {
                owner[v.index()] = i;
            }
        }
        for &e in &d.cut_edges {
            let (u, v) = f.edge_endpoints(e);
            assert!(owner[u.index()] < owner[v.index()]);
        }
        // Boundary sets are consistent.
        for c in &d.components {
            for &inp in &c.inputs {
                assert!(c.nodes.binary_search(&inp).is_err());
            }
            for &out in &c.outputs {
                assert!(c.nodes.binary_search(&out).is_ok());
            }
        }
    }

    #[test]
    fn sink_cones_tile_matmul() {
        let mm = matmul(4, 4, 4).dag;
        let d = decompose(
            &mm,
            Strategy::SinkCones {
                max_nodes: 60,
                max_sinks: 4,
            },
        )
        .unwrap();
        // Every non-source node is assigned; sources stay shared.
        assert_eq!(d.assigned_nodes() + d.shared_sources.len(), mm.node_count());
        assert!(d.shared_sources.iter().all(|&v| mm.is_source(v)));
        assert!(d.components.len() > 1);
        assert!(d.max_component_size() <= 60);
        // Tiles only interact through shared sources: no member outputs.
        for c in &d.components {
            assert!(c.outputs.is_empty());
            assert!(c.inputs.iter().all(|&u| mm.is_source(u)));
        }
        // Merging shares inputs: a merged tile has fewer inputs than the sum
        // of its cones' inputs would be.
        let merged = d.components.iter().find(|c| c.nodes.len() > 5).unwrap();
        let sinks_in = merged.nodes.iter().filter(|&&v| mm.is_sink(v)).count();
        assert!(merged.inputs.len() < sinks_in * 8);
    }

    #[test]
    fn sink_cones_reject_shared_internal_nodes() {
        // FFT internal nodes have out-degree 2.
        assert!(decompose(
            &fft(8).dag,
            Strategy::SinkCones {
                max_nodes: 100,
                max_sinks: 16,
            }
        )
        .is_none());
    }

    #[test]
    fn sink_cap_bounds_live_accumulators() {
        let mm = matmul(4, 4, 4).dag;
        for max_sinks in [1usize, 2, 4, 8] {
            let d = decompose(
                &mm,
                Strategy::SinkCones {
                    max_nodes: 10_000,
                    max_sinks,
                },
            )
            .unwrap();
            for c in &d.components {
                let sinks = c.nodes.iter().filter(|&&v| mm.is_sink(v)).count();
                assert!(sinks <= max_sinks, "{sinks} > {max_sinks}");
            }
        }
    }

    #[test]
    fn extraction_roundtrips_structure() {
        let f = fft(16).dag;
        let d = decompose(&f, Strategy::LevelBands { max_nodes: 24 }).unwrap();
        let mut member_edges = 0;
        for c in &d.components {
            let ex = extract_component(&f, c);
            assert_eq!(ex.dag.node_count(), c.nodes.len() + c.inputs.len());
            // Every member in-edge is preserved.
            let in_edges: usize = c.nodes.iter().map(|&v| f.in_degree(v)).sum();
            assert_eq!(ex.dag.edge_count(), in_edges);
            member_edges += in_edges;
            // Boundary inputs are sub-sources.
            for (i, &inp) in ex.is_input.iter().enumerate() {
                if inp {
                    assert!(ex.dag.is_source(NodeId::from_index(i)));
                }
            }
            // Local order preserves global order.
            assert!(ex.to_global.windows(2).all(|w| w[0] < w[1]));
        }
        // Sources have no in-edges, so member in-edges cover every edge.
        assert_eq!(member_edges, f.edge_count());
    }

    #[test]
    fn internal_extraction_counts_fakes() {
        let f = fft(16).dag;
        let d = decompose(&f, Strategy::LevelBands { max_nodes: 24 }).unwrap();
        // A non-first band's pieces are computed from boundary values: every
        // kept node with no internal in-edge is a fake source.
        let later = d
            .components
            .iter()
            .find(|c| !c.inputs.is_empty())
            .expect("fft bands have boundaries");
        let internal = extract_internal(&f, &later.nodes).unwrap();
        assert!(internal.fake_sources > 0);
        assert!(internal.dag.node_count() <= later.nodes.len());
    }

    #[test]
    fn whole_is_total() {
        let f = fft(8).dag;
        let d = decompose(&f, Strategy::Whole).unwrap();
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.assigned_nodes(), f.node_count());
        assert!(d.cut_edges.is_empty());
        assert!(matches!(d.tree, DecompTree::Leaf(0)));
    }

    #[test]
    fn strategy_display_names() {
        assert_eq!(Strategy::Whole.to_string(), "whole");
        assert_eq!(Strategy::Wcc.to_string(), "wcc");
        assert_eq!(
            Strategy::LevelBands { max_nodes: 64 }.to_string(),
            "bands:64"
        );
        assert_eq!(
            Strategy::SinkCones {
                max_nodes: 640,
                max_sinks: 48
            }
            .to_string(),
            "cones:640:48"
        );
    }
}

//! Strongly-typed node and edge identifiers.
//!
//! Both identifiers are thin `u32` newtypes: DAGs in this workspace are
//! immutable after construction, so indices are stable and can be used as
//! direct offsets into CSR arrays without bounds surprises.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::Dag`]. Nodes are numbered `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`crate::Dag`]. Edges are numbered `0..m` in the
/// order they were added to the [`crate::DagBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index. Panics if the index does not fit `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl EdgeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index. Panics if the index does not fit `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e, EdgeId(7));
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }
}

//! DOT / JSON / edge-list export of DAGs for inspection, debugging and
//! interchange.
//!
//! [`to_json`] uses the serde representation of [`Dag`] (an internal schema);
//! the *interchange* formats meant for DAGs produced by other tools —
//! whitespace edge-list, a DOT digraph subset, and a JSON node/edge document
//! — live in the `pebble-io` crate, whose parsers are guaranteed to
//! round-trip [`to_edge_list`] and (structurally) [`to_dot`] output.

use crate::graph::Dag;

/// Escape a string for a double-quoted DOT attribute value. Shared with the
/// `pebble-io` DOT writer, so the two emitters can never diverge on what the
/// round-tripping parser has to undo.
pub fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render the DAG in Graphviz DOT format. Node labels (when non-empty) are
/// shown next to the node id; sources are drawn as boxes, sinks as double
/// circles.
pub fn to_dot(dag: &Dag, graph_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {graph_name} {{\n"));
    out.push_str("  rankdir=TB;\n");
    for v in dag.nodes() {
        let label = dag.label(v);
        let display = if label.is_empty() {
            format!("{}", v.0)
        } else {
            format!("{} ({})", v.0, dot_escape(label))
        };
        let shape = if dag.is_source(v) {
            "box"
        } else if dag.is_sink(v) {
            "doublecircle"
        } else {
            "ellipse"
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            v.0, display, shape
        ));
    }
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        out.push_str(&format!("  n{} -> n{};\n", u.0, v.0));
    }
    out.push_str("}\n");
    out
}

/// Render the DAG as a whitespace edge-list: one `u v` line per edge, in
/// [`crate::EdgeId`] order. Node labels are not representable in this format.
/// Because a [`Dag`] has no isolated nodes, the node count is recoverable as
/// `max id + 1`, so parsing the output reproduces the graph exactly.
pub fn to_edge_list(dag: &Dag) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

/// Serialise the DAG to a JSON string (via serde).
pub fn to_json(dag: &Dag) -> String {
    serde_json::to_string(dag).expect("Dag serialisation cannot fail")
}

/// Deserialise a DAG from the JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<Dag, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("in");
        let c = b.add_node();
        let d = b.add_labeled_node("out");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, "sample");
        assert!(dot.starts_with("digraph sample {"));
        assert!(dot.contains("n0 [label=\"0 (in)\", shape=box]"));
        assert!(dot.contains("n2 [label=\"2 (out)\", shape=doublecircle]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn edge_list_lists_edges_in_id_order() {
        let g = sample();
        assert_eq!(to_edge_list(&g), "0 1\n1 2\n");
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = sample();
        let json = to_json(&g);
        let back = from_json(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label(crate::NodeId(0)), "in");
        for e in g.edges() {
            assert_eq!(back.edge_endpoints(e), g.edge_endpoints(e));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(from_json("{not json").is_err());
    }
}

//! DOT / JSON export of DAGs for inspection and debugging.

use crate::graph::Dag;

/// Render the DAG in Graphviz DOT format. Node labels (when non-empty) are
/// shown next to the node id; sources are drawn as boxes, sinks as double
/// circles.
pub fn to_dot(dag: &Dag, graph_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {graph_name} {{\n"));
    out.push_str("  rankdir=TB;\n");
    for v in dag.nodes() {
        let label = dag.label(v);
        let display = if label.is_empty() {
            format!("{}", v.0)
        } else {
            format!("{} ({})", v.0, label)
        };
        let shape = if dag.is_source(v) {
            "box"
        } else if dag.is_sink(v) {
            "doublecircle"
        } else {
            "ellipse"
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            v.0, display, shape
        ));
    }
    for e in dag.edges() {
        let (u, v) = dag.edge_endpoints(e);
        out.push_str(&format!("  n{} -> n{};\n", u.0, v.0));
    }
    out.push_str("}\n");
    out
}

/// Serialise the DAG to a JSON string (via serde).
pub fn to_json(dag: &Dag) -> String {
    serde_json::to_string(dag).expect("Dag serialisation cannot fail")
}

/// Deserialise a DAG from the JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<Dag, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn sample() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("in");
        let c = b.add_node();
        let d = b.add_labeled_node("out");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, "sample");
        assert!(dot.starts_with("digraph sample {"));
        assert!(dot.contains("n0 [label=\"0 (in)\", shape=box]"));
        assert!(dot.contains("n2 [label=\"2 (out)\", shape=doublecircle]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = sample();
        let json = to_json(&g);
        let back = from_json(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label(crate::NodeId(0)), "in");
        for e in g.edges() {
            assert_eq!(back.edge_endpoints(e), g.edge_endpoints(e));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(from_json("{not json").is_err());
    }
}

//! Reachability and path queries.

use crate::bitset::BitSet;
use crate::graph::Dag;
use crate::ids::NodeId;

/// All nodes reachable from `start` (including `start`) following edge
/// directions.
pub fn reachable_from(dag: &Dag, start: NodeId) -> BitSet {
    let mut seen = dag.node_set();
    let mut stack = vec![start];
    seen.insert(start.index());
    while let Some(v) = stack.pop() {
        for &(w, _) in dag.out_edges(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    seen
}

/// All nodes that can reach `target` (including `target`).
pub fn reaching(dag: &Dag, target: NodeId) -> BitSet {
    let mut seen = dag.node_set();
    let mut stack = vec![target];
    seen.insert(target.index());
    while let Some(v) = stack.pop() {
        for &(u, _) in dag.in_edges(v) {
            if seen.insert(u.index()) {
                stack.push(u);
            }
        }
    }
    seen
}

/// Returns `true` if there is a directed path from `u` to `v` (including the
/// trivial path when `u == v`).
pub fn has_path(dag: &Dag, u: NodeId, v: NodeId) -> bool {
    reachable_from(dag, u).contains(v.index())
}

/// Find one directed path from `u` to `v`, if any, returned as the node
/// sequence `u, ..., v`.
pub fn find_path(dag: &Dag, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    if u == v {
        return Some(vec![u]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; dag.node_count()];
    let mut seen = dag.node_set();
    let mut stack = vec![u];
    seen.insert(u.index());
    while let Some(x) = stack.pop() {
        for &(w, _) in dag.out_edges(x) {
            if seen.insert(w.index()) {
                parent[w.index()] = Some(x);
                if w == v {
                    let mut path = vec![v];
                    let mut cur = v;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                stack.push(w);
            }
        }
    }
    None
}

/// Count the number of distinct directed paths from sources to `v`.
/// Counts saturate at `u64::MAX`.
pub fn path_count_from_sources(dag: &Dag, v: NodeId) -> u64 {
    let order = crate::topo::topological_order(dag);
    let mut count = vec![0u64; dag.node_count()];
    for &x in &order {
        if dag.is_source(x) {
            count[x.index()] = 1;
        }
        for &(w, _) in dag.out_edges(x) {
            count[w.index()] = count[w.index()].saturating_add(count[x.index()]);
        }
    }
    count[v.index()]
}

/// Number of distinct source→sink paths in the whole DAG (saturating).
pub fn total_path_count(dag: &Dag) -> u64 {
    dag.sinks()
        .into_iter()
        .map(|s| path_count_from_sources(dag, s))
        .fold(0u64, |a, b| a.saturating_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        b.build().unwrap()
    }

    #[test]
    fn reachability_diamond() {
        let g = diamond();
        assert_eq!(reachable_from(&g, NodeId(0)).count(), 4);
        assert_eq!(reachable_from(&g, NodeId(1)).to_vec(), vec![1, 3]);
        assert_eq!(reaching(&g, NodeId(3)).count(), 4);
        assert_eq!(reaching(&g, NodeId(2)).to_vec(), vec![0, 2]);
        assert!(has_path(&g, NodeId(0), NodeId(3)));
        assert!(!has_path(&g, NodeId(1), NodeId(2)));
        assert!(has_path(&g, NodeId(2), NodeId(2)));
    }

    #[test]
    fn find_path_returns_valid_path() {
        let g = diamond();
        let p = find_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(3)));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(find_path(&g, NodeId(1), NodeId(2)).is_none());
        assert_eq!(
            find_path(&g, NodeId(2), NodeId(2)).unwrap(),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn path_counting() {
        let g = diamond();
        assert_eq!(path_count_from_sources(&g, NodeId(3)), 2);
        assert_eq!(path_count_from_sources(&g, NodeId(1)), 1);
        assert_eq!(total_path_count(&g), 2);
    }
}

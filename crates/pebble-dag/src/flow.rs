//! Dinic max-flow on small auxiliary networks.
//!
//! Used by [`crate::dominators`] to compute minimum-size dominator sets
//! (minimum vertex cuts between the DAG sources and a target node set) via the
//! classic node-splitting reduction. Capacities are `u32` with a large value
//! standing in for infinity; the networks built here are tiny compared to the
//! DAGs (2n + 2 nodes), so a straightforward Dinic is more than fast enough.

/// Capacity value treated as "unbounded" in the auxiliary networks.
pub const INF_CAPACITY: u32 = u32::MAX / 4;

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: u32,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A max-flow network solved with Dinic's algorithm.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<FlowEdge>>,
}

impl FlowNetwork {
    /// Create a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.graph.len()
    }

    /// Add a directed edge `from -> to` with capacity `cap`.
    /// Returns a handle `(from, index)` that can be used with [`Self::edge_flow`].
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u32) -> (usize, usize) {
        let fwd_idx = self.graph[from].len();
        let rev_idx = self.graph[to].len();
        self.graph[from].push(FlowEdge {
            to,
            cap,
            rev: rev_idx,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0,
            rev: fwd_idx,
        });
        (from, fwd_idx)
    }

    /// Flow currently pushed through the edge identified by `handle`
    /// (only meaningful after [`Self::max_flow`]).
    pub fn edge_flow(&self, handle: (usize, usize), original_cap: u32) -> u32 {
        original_cap - self.graph[handle.0][handle.1].cap
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > 0 && level[e.to] < 0 {
                    level[e.to] = level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        if level[t] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_augment(
        &mut self,
        v: usize,
        t: usize,
        pushed: u32,
        level: &[i32],
        iter: &mut [usize],
    ) -> u32 {
        if v == t {
            return pushed;
        }
        while iter[v] < self.graph[v].len() {
            let (to, cap, rev) = {
                let e = &self.graph[v][iter[v]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[v] < level[to] {
                let d = self.dfs_augment(to, t, pushed.min(cap), level, iter);
                if d > 0 {
                    self.graph[v][iter[v]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// Compute the maximum flow from `s` to `t`. Mutates residual capacities.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        let mut flow = 0u64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let f = self.dfs_augment(s, t, u32::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                flow += f as u64;
            }
        }
        flow
    }

    /// After running [`Self::max_flow`], the set of nodes reachable from `s`
    /// in the residual network (the `s`-side of a minimum cut).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.graph.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for e in &self.graph[v] {
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_flow() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 7);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(0, 2, 3);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style example with cross edges.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 3, 12);
        net.add_edge(2, 1, 4);
        net.add_edge(2, 4, 14);
        net.add_edge(3, 2, 9);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 3, 7);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn min_cut_side_contains_source() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 5);
        net.max_flow(0, 2);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[1]);
        assert!(!side[2]);
    }
}

//! Rooted in-trees: binary and k-ary reduction trees (Section 4.2.2,
//! Appendix A.2). Leaves are sources, the root is the unique sink and every
//! internal node has exactly `k` distinct in-neighbours.

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;

/// A depth-`d` k-ary reduction tree with `k^d` leaves and all edges pointing
/// towards the root.
#[derive(Debug, Clone)]
pub struct KaryTree {
    /// The tree DAG.
    pub dag: Dag,
    /// Arity `k`.
    pub k: usize,
    /// Depth `d` (number of edge levels from leaf to root).
    pub depth: usize,
    /// Nodes by level: `levels[0]` is the root, `levels[d]` are the `k^d` leaves.
    pub levels: Vec<Vec<NodeId>>,
    /// The root node (unique sink).
    pub root: NodeId,
}

impl KaryTree {
    /// The leaves (sources) of the tree.
    pub fn leaves(&self) -> &[NodeId] {
        &self.levels[self.depth]
    }

    /// The `j`-th child (in-neighbour) of the `i`-th node on level `level`
    /// lives at level `level + 1`, position `i * k + j`.
    pub fn child(&self, level: usize, i: usize, j: usize) -> NodeId {
        self.levels[level + 1][i * self.k + j]
    }
}

/// Build a k-ary reduction tree of depth `d ≥ 1` with arity `k ≥ 2`.
pub fn kary_tree(k: usize, depth: usize) -> KaryTree {
    assert!(k >= 2, "arity must be at least 2");
    assert!(depth >= 1, "depth must be at least 1");
    let mut b = DagBuilder::new();
    // Create nodes level by level from the root downwards so the leaves get
    // the largest ids; edges point child -> parent.
    let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(depth + 1);
    for level in 0..=depth {
        let count = k.pow(level as u32);
        let row: Vec<NodeId> = (0..count)
            .map(|i| b.add_labeled_node(format!("t{level}_{i}")))
            .collect();
        levels.push(row);
    }
    for level in 0..depth {
        for i in 0..levels[level].len() {
            for j in 0..k {
                b.add_edge(levels[level + 1][i * k + j], levels[level][i]);
            }
        }
    }
    let root = levels[0][0];
    let dag = b.build().expect("k-ary tree is a valid DAG");
    KaryTree {
        dag,
        k,
        depth,
        levels,
        root,
    }
}

/// Build a binary reduction tree of depth `d ≥ 1` ( `2^d` leaves).
pub fn binary_tree(depth: usize) -> crate::graph::Dag {
    kary_tree(2, depth).dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn binary_tree_counts() {
        for d in 1..=5usize {
            let t = kary_tree(2, d);
            let expected_nodes = (2usize.pow(d as u32 + 1)) - 1;
            assert_eq!(t.dag.node_count(), expected_nodes);
            assert_eq!(t.dag.edge_count(), expected_nodes - 1);
            assert_eq!(t.dag.sources().len(), 2usize.pow(d as u32));
            assert_eq!(t.dag.sinks(), vec![t.root]);
            assert_eq!(t.dag.max_in_degree(), 2);
            assert_eq!(t.dag.max_out_degree(), 1);
            assert_eq!(topo::depth(&t.dag), d);
        }
    }

    #[test]
    fn ternary_tree_counts() {
        let t = kary_tree(3, 3);
        assert_eq!(t.dag.sources().len(), 27);
        assert_eq!(t.dag.node_count(), 1 + 3 + 9 + 27);
        assert_eq!(t.dag.max_in_degree(), 3);
        assert_eq!(t.leaves().len(), 27);
    }

    #[test]
    fn child_accessor_matches_edges() {
        let t = kary_tree(2, 3);
        for level in 0..t.depth {
            for (i, &parent) in t.levels[level].iter().enumerate() {
                for j in 0..t.k {
                    let child = t.child(level, i, j);
                    assert!(t.dag.has_edge(child, parent));
                }
            }
        }
    }

    #[test]
    fn binary_tree_helper_matches_kary() {
        let d = binary_tree(4);
        let t = kary_tree(2, 4);
        assert_eq!(d.node_count(), t.dag.node_count());
        assert_eq!(d.edge_count(), t.dag.edge_count());
    }

    #[test]
    #[should_panic]
    fn rejects_arity_one() {
        kary_tree(1, 3);
    }
}

//! Linear-algebra DAGs: matrix–vector multiplication (Proposition 4.3) and
//! standard matrix–matrix multiplication (Theorem 6.10).

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;

/// The computational DAG of `y = A·x` for an `m×m` matrix: `m² + m` sources
/// (matrix and vector entries), `m²` product nodes of in-degree 2, and `m`
/// sink nodes of in-degree `m`.
#[derive(Debug, Clone)]
pub struct MatVecDag {
    /// The DAG.
    pub dag: Dag,
    /// Dimension `m`.
    pub m: usize,
    /// `a[j][i]` is the source node for the matrix entry `A_{j,i}` (row j, column i).
    pub a: Vec<Vec<NodeId>>,
    /// `x[i]` is the source node for the vector entry `x_i`.
    pub x: Vec<NodeId>,
    /// `prod[j][i]` is the product node `A_{j,i}·x_i`.
    pub prod: Vec<Vec<NodeId>>,
    /// `y[j]` is the sink node for the output entry `y_j`.
    pub y: Vec<NodeId>,
}

/// Build the matrix–vector multiplication DAG for dimension `m ≥ 1`.
pub fn matvec(m: usize) -> MatVecDag {
    assert!(m >= 1);
    let mut b = DagBuilder::new();
    let a: Vec<Vec<NodeId>> = (0..m)
        .map(|j| {
            (0..m)
                .map(|i| b.add_labeled_node(format!("A{j}_{i}")))
                .collect()
        })
        .collect();
    let x: Vec<NodeId> = (0..m)
        .map(|i| b.add_labeled_node(format!("x{i}")))
        .collect();
    let prod: Vec<Vec<NodeId>> = (0..m)
        .map(|j| {
            (0..m)
                .map(|i| b.add_labeled_node(format!("p{j}_{i}")))
                .collect()
        })
        .collect();
    let y: Vec<NodeId> = (0..m)
        .map(|j| b.add_labeled_node(format!("y{j}")))
        .collect();
    for j in 0..m {
        for i in 0..m {
            b.add_edge(a[j][i], prod[j][i]);
            b.add_edge(x[i], prod[j][i]);
            b.add_edge(prod[j][i], y[j]);
        }
    }
    let dag = b.build().expect("matvec DAG is valid");
    MatVecDag {
        dag,
        m,
        a,
        x,
        prod,
        y,
    }
}

impl MatVecDag {
    /// The trivial I/O cost `m² + 2m` (all sources loaded + all sinks saved).
    pub fn trivial_cost(&self) -> usize {
        self.m * self.m + 2 * self.m
    }

    /// The RBP lower bound `m² + 3m − 1` of Proposition 4.3
    /// (valid for `m ≥ 3` and `m + 3 ≤ r ≤ 2m`).
    pub fn rbp_lower_bound(&self) -> usize {
        self.m * self.m + 3 * self.m - 1
    }
}

/// The computational DAG of standard (classical) matrix multiplication
/// `C = A·B` with `A ∈ m1×m2`, `B ∈ m2×m3`: `m1·m2 + m2·m3` sources,
/// `m1·m2·m3` product nodes of in-degree 2 and out-degree 1, and `m1·m3`
/// sink nodes of in-degree `m2`.
#[derive(Debug, Clone)]
pub struct MatMulDag {
    /// The DAG.
    pub dag: Dag,
    /// Dimensions (m1, m2, m3).
    pub dims: (usize, usize, usize),
    /// `a[i][k]` is the source for `A_{i,k}`.
    pub a: Vec<Vec<NodeId>>,
    /// `b[k][j]` is the source for `B_{k,j}`.
    pub b: Vec<Vec<NodeId>>,
    /// `prod[i][j][k]` is the product node `A_{i,k}·B_{k,j}`.
    pub prod: Vec<Vec<Vec<NodeId>>>,
    /// `c[i][j]` is the sink for `C_{i,j}`.
    pub c: Vec<Vec<NodeId>>,
}

/// Build the standard matrix-multiplication DAG for `A ∈ m1×m2`, `B ∈ m2×m3`.
pub fn matmul(m1: usize, m2: usize, m3: usize) -> MatMulDag {
    assert!(m1 >= 1 && m2 >= 1 && m3 >= 1);
    let mut bld = DagBuilder::new();
    let a: Vec<Vec<NodeId>> = (0..m1)
        .map(|i| {
            (0..m2)
                .map(|k| bld.add_labeled_node(format!("A{i}_{k}")))
                .collect()
        })
        .collect();
    let b: Vec<Vec<NodeId>> = (0..m2)
        .map(|k| {
            (0..m3)
                .map(|j| bld.add_labeled_node(format!("B{k}_{j}")))
                .collect()
        })
        .collect();
    let prod: Vec<Vec<Vec<NodeId>>> = (0..m1)
        .map(|i| {
            (0..m3)
                .map(|j| {
                    (0..m2)
                        .map(|k| bld.add_labeled_node(format!("p{i}_{j}_{k}")))
                        .collect()
                })
                .collect()
        })
        .collect();
    let c: Vec<Vec<NodeId>> = (0..m1)
        .map(|i| {
            (0..m3)
                .map(|j| bld.add_labeled_node(format!("C{i}_{j}")))
                .collect()
        })
        .collect();
    for i in 0..m1 {
        for j in 0..m3 {
            for k in 0..m2 {
                bld.add_edge(a[i][k], prod[i][j][k]);
                bld.add_edge(b[k][j], prod[i][j][k]);
                bld.add_edge(prod[i][j][k], c[i][j]);
            }
        }
    }
    let dag = bld.build().expect("matmul DAG is valid");
    MatMulDag {
        dag,
        dims: (m1, m2, m3),
        a,
        b,
        prod,
        c,
    }
}

impl MatMulDag {
    /// Number of elementary multiplications `m1·m2·m3`.
    pub fn multiplications(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// The trivial I/O cost: `m1·m2 + m2·m3` source loads plus `m1·m3` sink saves.
    pub fn trivial_cost(&self) -> usize {
        let (m1, m2, m3) = self.dims;
        m1 * m2 + m2 * m3 + m1 * m3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_shape() {
        let m = 4;
        let g = matvec(m);
        assert_eq!(g.dag.node_count(), m * m + m + m * m + m);
        assert_eq!(g.dag.edge_count(), 3 * m * m);
        assert_eq!(g.dag.sources().len(), m * m + m);
        assert_eq!(g.dag.sinks().len(), m);
        assert_eq!(g.dag.max_in_degree(), m);
        assert_eq!(g.dag.trivial_cost(), g.trivial_cost());
        assert_eq!(g.trivial_cost(), m * m + 2 * m);
        assert_eq!(g.rbp_lower_bound(), m * m + 3 * m - 1);
    }

    #[test]
    fn matvec_wiring() {
        let g = matvec(3);
        for j in 0..3 {
            for i in 0..3 {
                assert!(g.dag.has_edge(g.a[j][i], g.prod[j][i]));
                assert!(g.dag.has_edge(g.x[i], g.prod[j][i]));
                assert!(g.dag.has_edge(g.prod[j][i], g.y[j]));
                assert!(!g.dag.has_edge(g.x[i], g.y[j]));
            }
        }
        assert_eq!(g.dag.in_degree(g.y[0]), 3);
        assert_eq!(g.dag.in_degree(g.prod[1][2]), 2);
        assert_eq!(g.dag.out_degree(g.x[0]), 3);
    }

    #[test]
    fn matmul_shape() {
        let (m1, m2, m3) = (2, 3, 4);
        let g = matmul(m1, m2, m3);
        assert_eq!(
            g.dag.node_count(),
            m1 * m2 + m2 * m3 + m1 * m2 * m3 + m1 * m3
        );
        assert_eq!(g.dag.edge_count(), 3 * m1 * m2 * m3);
        assert_eq!(g.dag.sources().len(), m1 * m2 + m2 * m3);
        assert_eq!(g.dag.sinks().len(), m1 * m3);
        assert_eq!(g.dag.max_in_degree(), m2);
        assert_eq!(g.multiplications(), 24);
        assert_eq!(g.trivial_cost(), m1 * m2 + m2 * m3 + m1 * m3);
    }

    #[test]
    fn matmul_product_nodes_have_out_degree_one() {
        let g = matmul(2, 2, 2);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    assert_eq!(g.dag.out_degree(g.prod[i][j][k]), 1);
                    assert_eq!(g.dag.in_degree(g.prod[i][j][k]), 2);
                    assert!(g.dag.has_edge(g.prod[i][j][k], g.c[i][j]));
                }
            }
        }
    }

    #[test]
    fn square_matmul_matches_matvec_when_m3_is_one() {
        // Matrix-vector multiplication is the m3 = 1 special case (paper, end of §6.3.2).
        let mm = matmul(3, 3, 1);
        let mv = matvec(3);
        assert_eq!(mm.dag.node_count(), mv.dag.node_count());
        assert_eq!(mm.dag.edge_count(), mv.dag.edge_count());
        assert_eq!(mm.dag.sources().len(), mv.dag.sources().len());
        assert_eq!(mm.dag.sinks().len(), mv.dag.sinks().len());
    }
}

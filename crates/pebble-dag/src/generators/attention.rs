//! Attention DAGs (Section 6.3.3, Theorem 6.11).
//!
//! [`attention_qk`] builds exactly the part of the attention DAG that the
//! lower-bound proof argues about: the `Q·Kᵀ` matrix-multiplication with
//! `2·m·d` sources, `m²·d` internal product nodes, `m²` *root* nodes (the
//! entries of `Q·Kᵀ`) and one exponentiation successor per root so that the
//! roots are **not** sinks.
//!
//! [`attention_full`] extends this to a complete (unnormalised) attention
//! forward pass `softmax-numerator(Q·Kᵀ)·V`, used by the richer examples.

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;

/// The `Q·Kᵀ` part of the attention DAG, as described in Theorem 6.11.
#[derive(Debug, Clone)]
pub struct AttentionDag {
    /// The DAG.
    pub dag: Dag,
    /// Sequence length `m`.
    pub m: usize,
    /// Head dimension `d`.
    pub d: usize,
    /// `q[i][k]` is the source for `Q_{i,k}`.
    pub q: Vec<Vec<NodeId>>,
    /// `k[j][kk]` is the source for `K_{j,kk}` (row `j` of `K`, i.e. column `j` of `Kᵀ`).
    pub k: Vec<Vec<NodeId>>,
    /// `prod[i][j][kk]` is the internal node `Q_{i,kk}·K_{j,kk}`.
    pub prod: Vec<Vec<Vec<NodeId>>>,
    /// `root[i][j]` is the root node for the entry `(Q·Kᵀ)_{i,j}`.
    pub root: Vec<Vec<NodeId>>,
    /// `expv[i][j]` is the exponentiation successor of `root[i][j]` (a sink here).
    pub expv: Vec<Vec<NodeId>>,
}

/// Build the `Q·Kᵀ` attention DAG for sequence length `m ≥ 1` and head
/// dimension `d ≥ 1`.
pub fn attention_qk(m: usize, d: usize) -> AttentionDag {
    assert!(m >= 1 && d >= 1);
    let mut b = DagBuilder::new();
    let q: Vec<Vec<NodeId>> = (0..m)
        .map(|i| {
            (0..d)
                .map(|kk| b.add_labeled_node(format!("Q{i}_{kk}")))
                .collect()
        })
        .collect();
    let k: Vec<Vec<NodeId>> = (0..m)
        .map(|j| {
            (0..d)
                .map(|kk| b.add_labeled_node(format!("K{j}_{kk}")))
                .collect()
        })
        .collect();
    let mut prod = vec![vec![Vec::with_capacity(d); m]; m];
    let mut root = vec![Vec::with_capacity(m); m];
    let mut expv = vec![Vec::with_capacity(m); m];
    for i in 0..m {
        for j in 0..m {
            for kk in 0..d {
                let p = b.add_labeled_node(format!("p{i}_{j}_{kk}"));
                b.add_edge(q[i][kk], p);
                b.add_edge(k[j][kk], p);
                prod[i][j].push(p);
            }
            let s = b.add_labeled_node(format!("S{i}_{j}"));
            for &pnode in &prod[i][j] {
                b.add_edge(pnode, s);
            }
            let e = b.add_labeled_node(format!("E{i}_{j}"));
            b.add_edge(s, e);
            root[i].push(s);
            expv[i].push(e);
        }
    }
    let dag = b.build().expect("attention QK DAG is valid");
    AttentionDag {
        dag,
        m,
        d,
        q,
        k,
        prod,
        root,
        expv,
    }
}

/// A complete (unnormalised) attention forward pass
/// `O = exp(Q·Kᵀ)·V`: the [`attention_qk`] DAG extended with the value matrix
/// `V` and the second matrix multiplication.
#[derive(Debug, Clone)]
pub struct AttentionFullDag {
    /// The DAG.
    pub dag: Dag,
    /// Sequence length `m`.
    pub m: usize,
    /// Head dimension `d`.
    pub d: usize,
    /// Q sources.
    pub q: Vec<Vec<NodeId>>,
    /// K sources.
    pub k: Vec<Vec<NodeId>>,
    /// V sources: `v[j][kk]` is `V_{j,kk}`.
    pub v: Vec<Vec<NodeId>>,
    /// Score roots `S_{i,j}`.
    pub root: Vec<Vec<NodeId>>,
    /// Exponentiated scores `E_{i,j}`.
    pub expv: Vec<Vec<NodeId>>,
    /// Output sinks `O_{i,kk}` with in-degree `m`.
    pub out: Vec<Vec<NodeId>>,
}

/// Build the full attention DAG for sequence length `m ≥ 1` and head
/// dimension `d ≥ 1`.
pub fn attention_full(m: usize, d: usize) -> AttentionFullDag {
    assert!(m >= 1 && d >= 1);
    let mut b = DagBuilder::new();
    let q: Vec<Vec<NodeId>> = (0..m)
        .map(|i| {
            (0..d)
                .map(|kk| b.add_labeled_node(format!("Q{i}_{kk}")))
                .collect()
        })
        .collect();
    let k: Vec<Vec<NodeId>> = (0..m)
        .map(|j| {
            (0..d)
                .map(|kk| b.add_labeled_node(format!("K{j}_{kk}")))
                .collect()
        })
        .collect();
    let v: Vec<Vec<NodeId>> = (0..m)
        .map(|j| {
            (0..d)
                .map(|kk| b.add_labeled_node(format!("V{j}_{kk}")))
                .collect()
        })
        .collect();
    let mut root = vec![Vec::with_capacity(m); m];
    let mut expv = vec![Vec::with_capacity(m); m];
    for i in 0..m {
        #[allow(clippy::needless_range_loop)] // node-id order must follow j
        for j in 0..m {
            let s = b.add_labeled_node(format!("S{i}_{j}"));
            for kk in 0..d {
                let p = b.add_labeled_node(format!("p{i}_{j}_{kk}"));
                b.add_edge(q[i][kk], p);
                b.add_edge(k[j][kk], p);
                b.add_edge(p, s);
            }
            let e = b.add_labeled_node(format!("E{i}_{j}"));
            b.add_edge(s, e);
            root[i].push(s);
            expv[i].push(e);
        }
    }
    let mut out = vec![Vec::with_capacity(d); m];
    for i in 0..m {
        #[allow(clippy::needless_range_loop)] // node-id order must follow kk
        for kk in 0..d {
            let o = b.add_labeled_node(format!("O{i}_{kk}"));
            for j in 0..m {
                let pv = b.add_labeled_node(format!("pv{i}_{j}_{kk}"));
                b.add_edge(expv[i][j], pv);
                b.add_edge(v[j][kk], pv);
                b.add_edge(pv, o);
            }
            out[i].push(o);
        }
    }
    let dag = b.build().expect("full attention DAG is valid");
    AttentionFullDag {
        dag,
        m,
        d,
        q,
        k,
        v,
        root,
        expv,
        out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qk_shape() {
        let (m, d) = (3, 2);
        let g = attention_qk(m, d);
        // Sources: 2md. Internal: m²d. Roots: m². Exp: m².
        assert_eq!(g.dag.node_count(), 2 * m * d + m * m * d + 2 * m * m);
        // Edges: 2 per internal node + d per root + 1 per exp node.
        assert_eq!(g.dag.edge_count(), 2 * m * m * d + m * m * d + m * m);
        assert_eq!(g.dag.sources().len(), 2 * m * d);
        assert_eq!(g.dag.sinks().len(), m * m);
        assert_eq!(g.dag.max_in_degree(), d);
    }

    #[test]
    fn qk_roots_are_not_sinks() {
        let g = attention_qk(2, 3);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(g.dag.out_degree(g.root[i][j]), 1);
                assert_eq!(g.dag.in_degree(g.root[i][j]), 3);
                assert!(g.dag.has_edge(g.root[i][j], g.expv[i][j]));
                assert!(g.dag.is_sink(g.expv[i][j]));
            }
        }
    }

    #[test]
    fn qk_internal_trees_are_disjoint() {
        // Internal nodes of different (i, j) trees never coincide and never
        // share edges to a different root.
        let g = attention_qk(3, 2);
        for i in 0..3 {
            for j in 0..3 {
                for kk in 0..2 {
                    let p = g.prod[i][j][kk];
                    assert_eq!(g.dag.out_degree(p), 1);
                    assert!(g.dag.has_edge(p, g.root[i][j]));
                }
            }
        }
    }

    #[test]
    fn full_attention_shape() {
        let (m, d) = (2, 2);
        let g = attention_full(m, d);
        // Sources 3md, score products m²d, scores m², exp m², out products m·d·m, outputs m·d.
        assert_eq!(
            g.dag.node_count(),
            3 * m * d + m * m * d + 2 * m * m + m * d * m + m * d
        );
        assert_eq!(g.dag.sources().len(), 3 * m * d);
        assert_eq!(g.dag.sinks().len(), m * d);
        // Output node O_{i,k} aggregates over j = m values.
        assert_eq!(g.dag.in_degree(g.out[0][0]), m);
    }

    #[test]
    fn full_attention_exp_feeds_all_output_columns() {
        let (m, d) = (3, 2);
        let g = attention_full(m, d);
        for i in 0..m {
            for j in 0..m {
                // E_{i,j} participates in d output products.
                assert_eq!(g.dag.out_degree(g.expv[i][j]), d);
            }
        }
    }
}

//! The m-point FFT (butterfly) DAG of Section 6.3.1 / Figure 4.
//!
//! The graph has `log2(m) + 1` layers of `m` nodes each. Layer 0 holds the
//! sources; node `j` of layer `l+1` has incoming edges from nodes `j` and
//! `j XOR 2^l` of layer `l`. This is the standard iterative butterfly and is
//! isomorphic to the recursive construction in the paper (two copies of the
//! m/2-point FFT followed by a combining layer with `i ≡ j (mod m/2)` edges).

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;

/// The m-point FFT DAG.
#[derive(Debug, Clone)]
pub struct FftDag {
    /// The butterfly DAG.
    pub dag: Dag,
    /// Number of points `m` (a power of two).
    pub m: usize,
    /// Number of butterfly stages `log2 m`.
    pub stages: usize,
    /// `layers[l][j]` is node `j` of layer `l`; layer 0 are sources, layer
    /// `stages` are sinks.
    pub layers: Vec<Vec<NodeId>>,
}

/// Build the m-point FFT DAG. `m` must be a power of two and at least 2.
pub fn fft(m: usize) -> FftDag {
    assert!(
        m >= 2 && m.is_power_of_two(),
        "m must be a power of two ≥ 2"
    );
    let stages = m.trailing_zeros() as usize;
    let mut b = DagBuilder::new();
    let layers: Vec<Vec<NodeId>> = (0..=stages)
        .map(|l| {
            (0..m)
                .map(|j| b.add_labeled_node(format!("f{l}_{j}")))
                .collect()
        })
        .collect();
    for l in 0..stages {
        for j in 0..m {
            let partner = j ^ (1usize << l);
            b.add_edge(layers[l][j], layers[l + 1][j]);
            b.add_edge(layers[l][partner], layers[l + 1][j]);
        }
    }
    let dag = b.build().expect("FFT DAG is valid");
    FftDag {
        dag,
        m,
        stages,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;
    use crate::traversal;

    #[test]
    fn fft8_shape_matches_figure4() {
        let g = fft(8);
        assert_eq!(g.stages, 3);
        assert_eq!(g.dag.node_count(), 8 * 4);
        assert_eq!(g.dag.edge_count(), 2 * 8 * 3);
        assert_eq!(g.dag.sources().len(), 8);
        assert_eq!(g.dag.sinks().len(), 8);
        assert_eq!(g.dag.max_in_degree(), 2);
        assert_eq!(g.dag.max_out_degree(), 2);
        assert_eq!(topo::depth(&g.dag), 3);
    }

    #[test]
    fn every_output_depends_on_every_input() {
        // The defining property of the butterfly: each sink is reachable from
        // every source.
        let g = fft(16);
        for &src in &g.layers[0] {
            let reach = traversal::reachable_from(&g.dag, src);
            for &sink in &g.layers[g.stages] {
                assert!(reach.contains(sink.index()));
            }
        }
    }

    #[test]
    fn internal_nodes_have_in_and_out_degree_two() {
        let g = fft(8);
        for l in 1..g.stages {
            for &v in &g.layers[l] {
                assert_eq!(g.dag.in_degree(v), 2);
                assert_eq!(g.dag.out_degree(v), 2);
            }
        }
    }

    #[test]
    fn smallest_fft_is_a_single_butterfly() {
        let g = fft(2);
        assert_eq!(g.dag.node_count(), 4);
        assert_eq!(g.dag.edge_count(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        fft(12);
    }
}

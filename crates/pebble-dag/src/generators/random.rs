//! Seeded random layered DAGs, used for property-based testing and the
//! scaling benchmarks. All randomness is driven by a caller-provided seed so
//! every workload is reproducible.

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`random_layered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomLayeredConfig {
    /// Number of layers (≥ 2).
    pub layers: usize,
    /// Nodes per layer (≥ 1).
    pub width: usize,
    /// Maximum in-degree of a non-source node (≥ 1); actual in-degree is
    /// sampled uniformly from `1..=max_in_degree`, capped by the width of the
    /// previous layer.
    pub max_in_degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomLayeredConfig {
    fn default() -> Self {
        RandomLayeredConfig {
            layers: 4,
            width: 8,
            max_in_degree: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a random layered DAG: `layers × width` nodes; every node in layer
/// `l > 0` draws between 1 and `max_in_degree` distinct predecessors from
/// layer `l − 1`. Every non-final-layer node is guaranteed at least one
/// successor, so the DAG has no isolated or dead-end intermediate nodes.
pub fn random_layered(cfg: RandomLayeredConfig) -> Dag {
    assert!(cfg.layers >= 2 && cfg.width >= 1 && cfg.max_in_degree >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = DagBuilder::new();
    let layers: Vec<Vec<NodeId>> = (0..cfg.layers)
        .map(|l| {
            (0..cfg.width)
                .map(|i| b.add_labeled_node(format!("r{l}_{i}")))
                .collect()
        })
        .collect();
    for l in 1..cfg.layers {
        let prev = &layers[l - 1];
        let mut used_prev = vec![false; prev.len()];
        for &v in &layers[l] {
            let deg = rng.gen_range(1..=cfg.max_in_degree.min(prev.len()));
            let mut parents: Vec<usize> = (0..prev.len()).collect();
            parents.shuffle(&mut rng);
            for &p in parents.iter().take(deg) {
                b.add_edge(prev[p], v);
                used_prev[p] = true;
            }
        }
        // Ensure every node of the previous layer has at least one successor.
        for (p, used) in used_prev.iter().enumerate() {
            if !used {
                let target = layers[l][rng.gen_range(0..cfg.width)];
                b.add_edge(prev[p], target);
            }
        }
    }
    b.build().expect("random layered DAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomLayeredConfig::default();
        let a = random_layered(cfg);
        let b = random_layered(cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for e in a.edges() {
            assert_eq!(a.edge_endpoints(e), b.edge_endpoints(e));
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = random_layered(RandomLayeredConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_layered(RandomLayeredConfig {
            seed: 2,
            ..Default::default()
        });
        let edges_a: Vec<_> = a.edges().map(|e| a.edge_endpoints(e)).collect();
        let edges_b: Vec<_> = b.edges().map(|e| b.edge_endpoints(e)).collect();
        assert_ne!(edges_a, edges_b);
    }

    #[test]
    fn respects_configuration() {
        let cfg = RandomLayeredConfig {
            layers: 5,
            width: 6,
            max_in_degree: 2,
            seed: 42,
        };
        let g = random_layered(cfg);
        assert_eq!(g.node_count(), 30);
        assert!(g.max_in_degree() <= 2);
        assert_eq!(topo::depth(&g), 4);
        // Sources are exactly layer 0.
        assert_eq!(g.sources().len(), 6);
        // No intermediate node is a sink: sinks live only in the last layer.
        assert!(g.sinks().iter().all(|s| s.index() >= 4 * 6));
    }

    #[test]
    fn first_layer_nodes_all_have_successors() {
        for seed in 0..10 {
            let g = random_layered(RandomLayeredConfig {
                seed,
                ..Default::default()
            });
            for v in g.sources() {
                assert!(g.out_degree(v) >= 1);
            }
        }
    }
}

//! The Lemma 5.4 counterexample DAG (Figure 3): the DAG on which the classic
//! Hong–Kung S-partition bound fails for PRBP.
//!
//! Seven source nodes `u1..u7`, seven groups `H1..H7` of `group_size` nodes
//! each, and a single sink `v`. Node `u_i` has an edge to every node of `H_i`,
//! and every node of `H_i` has an edge to `v`. With `r = 3`, PRBP pebbles the
//! whole DAG at the trivial cost of 8, yet every 6-partition needs Θ(n)
//! classes.

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;

/// Number of source nodes / groups in the construction (fixed to 7 as in the
/// paper, which makes a size-6 = 2r dominator for the sink class impossible
/// with r = 3).
pub const GROUP_COUNT: usize = 7;

/// The Figure 3 counterexample DAG.
#[derive(Debug, Clone)]
pub struct CounterexampleDag {
    /// The DAG.
    pub dag: Dag,
    /// The 7 source nodes `u1..u7`.
    pub sources: Vec<NodeId>,
    /// The 7 groups; `groups[i]` has `group_size` nodes fed by `sources[i]`.
    pub groups: Vec<Vec<NodeId>>,
    /// The single sink `v`.
    pub sink: NodeId,
    /// Number of nodes per group.
    pub group_size: usize,
}

/// Build the counterexample DAG with `group_size ≥ 1` nodes in each of the 7
/// groups.
pub fn spartition_counterexample(group_size: usize) -> CounterexampleDag {
    assert!(group_size >= 1);
    let mut b = DagBuilder::new();
    let sources: Vec<NodeId> = (0..GROUP_COUNT)
        .map(|i| b.add_labeled_node(format!("u{}", i + 1)))
        .collect();
    let sink = b.add_labeled_node("v");
    let groups: Vec<Vec<NodeId>> = (0..GROUP_COUNT)
        .map(|i| {
            (0..group_size)
                .map(|j| b.add_labeled_node(format!("h{}_{j}", i + 1)))
                .collect()
        })
        .collect();
    for (i, group) in groups.iter().enumerate() {
        for &h in group {
            b.add_edge(sources[i], h);
            b.add_edge(h, sink);
        }
    }
    let dag = b.build().expect("counterexample DAG is valid");
    CounterexampleDag {
        dag,
        sources,
        groups,
        sink,
        group_size,
    }
}

impl CounterexampleDag {
    /// The trivial cost of the DAG: 7 source loads + 1 sink save = 8.
    pub fn trivial_cost(&self) -> usize {
        GROUP_COUNT + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = spartition_counterexample(5);
        assert_eq!(g.dag.node_count(), 7 + 1 + 7 * 5);
        assert_eq!(g.dag.edge_count(), 2 * 7 * 5);
        assert_eq!(g.dag.sources().len(), 7);
        assert_eq!(g.dag.sinks(), vec![g.sink]);
        assert_eq!(g.dag.in_degree(g.sink), 35);
        assert_eq!(g.trivial_cost(), 8);
        assert_eq!(g.dag.trivial_cost(), 8);
    }

    #[test]
    fn group_members_have_single_source_parent() {
        let g = spartition_counterexample(3);
        for (i, group) in g.groups.iter().enumerate() {
            for &h in group {
                assert_eq!(g.dag.in_degree(h), 1);
                assert_eq!(g.dag.out_degree(h), 1);
                assert!(g.dag.has_edge(g.sources[i], h));
                assert!(g.dag.has_edge(h, g.sink));
            }
        }
    }

    #[test]
    fn max_in_degree_exceeds_small_cache() {
        // The paper notes Δ_in > r for this DAG (r = 3): RBP cannot even
        // pebble it, PRBP can.
        let g = spartition_counterexample(2);
        assert!(g.dag.max_in_degree() > 3);
    }
}

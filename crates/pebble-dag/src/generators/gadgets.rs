//! Proof gadgets: the Figure 1 gadget and its chained version, the zipper
//! gadget, the pebble-collection gadget and the pyramid gadget.

use crate::graph::{Dag, DagBuilder};
use crate::ids::NodeId;

/// The inner 8-node gadget of Figure 1 (without `u0`, `v0` and the dashed
/// edges), as used by Proposition 4.7.
///
/// Structure: `u1, u2` are the entry nodes, `v1, v2` the exit nodes, and
/// `w1..w4` the internal nodes, with edges
/// `u1→w1, u1→w2, w1→w3, w2→w3, u1→w4, w3→w4, w4→v1, w4→v2, u2→v1, u2→v2`.
#[derive(Debug, Clone)]
pub struct Fig1Gadget {
    /// The gadget graph (only meaningful for the standalone gadget).
    pub dag: Dag,
    /// Entry node u1.
    pub u1: NodeId,
    /// Entry node u2.
    pub u2: NodeId,
    /// Internal nodes w1..w4.
    pub w: [NodeId; 4],
    /// Exit node v1.
    pub v1: NodeId,
    /// Exit node v2.
    pub v2: NodeId,
}

/// Add the 8 gadget nodes and 10 gadget edges to `b`, reusing `entry` nodes
/// for (u1, u2) when provided (used when chaining gadgets).
fn add_fig1_gadget(
    b: &mut DagBuilder,
    entry: Option<(NodeId, NodeId)>,
    tag: &str,
) -> ([NodeId; 8], [NodeId; 2]) {
    let (u1, u2) = match entry {
        Some(pair) => pair,
        None => (
            b.add_labeled_node(format!("{tag}u1")),
            b.add_labeled_node(format!("{tag}u2")),
        ),
    };
    let w1 = b.add_labeled_node(format!("{tag}w1"));
    let w2 = b.add_labeled_node(format!("{tag}w2"));
    let w3 = b.add_labeled_node(format!("{tag}w3"));
    let w4 = b.add_labeled_node(format!("{tag}w4"));
    let v1 = b.add_labeled_node(format!("{tag}v1"));
    let v2 = b.add_labeled_node(format!("{tag}v2"));
    b.add_edge(u1, w1);
    b.add_edge(u1, w2);
    b.add_edge(w1, w3);
    b.add_edge(w2, w3);
    b.add_edge(u1, w4);
    b.add_edge(w3, w4);
    b.add_edge(w4, v1);
    b.add_edge(u2, v1);
    b.add_edge(w4, v2);
    b.add_edge(u2, v2);
    ([u1, u2, w1, w2, w3, w4, v1, v2], [v1, v2])
}

/// The standalone inner gadget of Figure 1 (8 nodes, 10 edges). `u1`, `u2`
/// are sources and `v1`, `v2` are sinks.
pub fn fig1_gadget() -> Fig1Gadget {
    let mut b = DagBuilder::new();
    let (nodes, _) = add_fig1_gadget(&mut b, None, "");
    let dag = b.build().expect("fig1 gadget is a valid DAG");
    Fig1Gadget {
        dag,
        u1: nodes[0],
        u2: nodes[1],
        w: [nodes[2], nodes[3], nodes[4], nodes[5]],
        v1: nodes[6],
        v2: nodes[7],
    }
}

/// The full Figure 1 DAG of Proposition 4.2: the inner gadget plus the source
/// `u0` (with edges to `u1`, `u2`) and the sink `v0` (with edges from `v1`,
/// `v2`). With `r = 4`: `OPT_RBP = 3` but `OPT_PRBP = 2`.
#[derive(Debug, Clone)]
pub struct Fig1Dag {
    /// The 10-node DAG.
    pub dag: Dag,
    /// The unique source node u0.
    pub u0: NodeId,
    /// Entry node u1.
    pub u1: NodeId,
    /// Entry node u2.
    pub u2: NodeId,
    /// Internal nodes w1..w4.
    pub w: [NodeId; 4],
    /// Exit node v1.
    pub v1: NodeId,
    /// Exit node v2.
    pub v2: NodeId,
    /// The unique sink node v0.
    pub v0: NodeId,
}

/// Build the full Figure 1 DAG (Proposition 4.2).
pub fn fig1_full() -> Fig1Dag {
    let mut b = DagBuilder::new();
    let u0 = b.add_labeled_node("u0");
    let (nodes, _) = add_fig1_gadget(&mut b, None, "");
    let v0 = b.add_labeled_node("v0");
    b.add_edge(u0, nodes[0]);
    b.add_edge(u0, nodes[1]);
    b.add_edge(nodes[6], v0);
    b.add_edge(nodes[7], v0);
    let dag = b.build().expect("fig1 full DAG is valid");
    Fig1Dag {
        dag,
        u0,
        u1: nodes[0],
        u2: nodes[1],
        w: [nodes[2], nodes[3], nodes[4], nodes[5]],
        v1: nodes[6],
        v2: nodes[7],
        v0,
    }
}

/// The Proposition 4.7 construction: `copies` serially concatenated Figure 1
/// gadgets plus the outer source `u0` and sink `v0`. With `r = 4`:
/// `OPT_PRBP = 2` but `OPT_RBP ≥ copies + 2`.
#[derive(Debug, Clone)]
pub struct ChainedGadgets {
    /// The resulting DAG (6·copies + 4 nodes).
    pub dag: Dag,
    /// The unique source node u0.
    pub u0: NodeId,
    /// The unique sink node v0.
    pub v0: NodeId,
    /// Per-copy node arrays `[u1, u2, w1, w2, w3, w4, v1, v2]`; copy `i+1`
    /// shares its `u1, u2` with copy `i`'s `v1, v2`.
    pub gadgets: Vec<[NodeId; 8]>,
}

/// Build the Proposition 4.7 chained-gadget DAG with `copies ≥ 1` gadgets.
pub fn chained_gadgets(copies: usize) -> ChainedGadgets {
    assert!(copies >= 1, "need at least one gadget copy");
    let mut b = DagBuilder::new();
    let u0 = b.add_labeled_node("u0");
    let mut gadgets = Vec::with_capacity(copies);
    let mut entry: Option<(NodeId, NodeId)> = None;
    let mut first_entry = None;
    let mut last_exit = (NodeId(0), NodeId(0));
    for i in 0..copies {
        let (nodes, exit) = add_fig1_gadget(&mut b, entry, &format!("g{i}."));
        if first_entry.is_none() {
            first_entry = Some((nodes[0], nodes[1]));
        }
        last_exit = (exit[0], exit[1]);
        entry = Some((exit[0], exit[1]));
        gadgets.push(nodes);
    }
    let v0 = b.add_labeled_node("v0");
    let (fu1, fu2) = first_entry.unwrap();
    b.add_edge(u0, fu1);
    b.add_edge(u0, fu2);
    b.add_edge(last_exit.0, v0);
    b.add_edge(last_exit.1, v0);
    let dag = b.build().expect("chained gadget DAG is valid");
    ChainedGadgets {
        dag,
        u0,
        v0,
        gadgets,
    }
}

/// The zipper gadget of Section 4.2.1 (Figure 2, left): two groups of `d`
/// source nodes and a chain of `chain_len` nodes, where chain node `i` has
/// incoming edges from the previous chain node and from *all* nodes of one of
/// the two groups, alternating between the groups.
#[derive(Debug, Clone)]
pub struct Zipper {
    /// The zipper DAG.
    pub dag: Dag,
    /// First source group (used by chain nodes 1, 3, 5, ... counting from 1).
    pub group_a: Vec<NodeId>,
    /// Second source group (used by chain nodes 2, 4, 6, ...).
    pub group_b: Vec<NodeId>,
    /// The chain nodes in order.
    pub chain: Vec<NodeId>,
}

/// Build a zipper gadget with group size `d ≥ 1` and `chain_len ≥ 1` chain
/// nodes.
pub fn zipper(d: usize, chain_len: usize) -> Zipper {
    assert!(d >= 1 && chain_len >= 1);
    let mut b = DagBuilder::new();
    let group_a: Vec<NodeId> = (0..d)
        .map(|i| b.add_labeled_node(format!("a{i}")))
        .collect();
    let group_b: Vec<NodeId> = (0..d)
        .map(|i| b.add_labeled_node(format!("b{i}")))
        .collect();
    let chain: Vec<NodeId> = (0..chain_len)
        .map(|i| b.add_labeled_node(format!("c{i}")))
        .collect();
    for (i, &c) in chain.iter().enumerate() {
        if i > 0 {
            b.add_edge(chain[i - 1], c);
        }
        let group = if i % 2 == 0 { &group_a } else { &group_b };
        for &g in group {
            b.add_edge(g, c);
        }
    }
    let dag = b.build().expect("zipper DAG is valid");
    Zipper {
        dag,
        group_a,
        group_b,
        chain,
    }
}

/// The pebble-collection gadget of Section 4.2.3 (Figure 2, right): `d` source
/// nodes and a chain of `chain_len` nodes, where the `i`-th chain node
/// (from 1) has incoming edges from the previous chain node and from source
/// `(i-1) mod d`.
#[derive(Debug, Clone)]
pub struct PebbleCollection {
    /// The gadget DAG.
    pub dag: Dag,
    /// The `d` source nodes.
    pub sources: Vec<NodeId>,
    /// The chain nodes in order.
    pub chain: Vec<NodeId>,
}

/// Build a pebble-collection gadget with `d ≥ 1` sources and `chain_len ≥ 1`
/// chain nodes.
pub fn pebble_collection(d: usize, chain_len: usize) -> PebbleCollection {
    assert!(d >= 1 && chain_len >= 1);
    let mut b = DagBuilder::new();
    let sources: Vec<NodeId> = (0..d)
        .map(|i| b.add_labeled_node(format!("u{i}")))
        .collect();
    let chain: Vec<NodeId> = (0..chain_len)
        .map(|i| b.add_labeled_node(format!("v{i}")))
        .collect();
    for (i, &c) in chain.iter().enumerate() {
        if i > 0 {
            b.add_edge(chain[i - 1], c);
        }
        b.add_edge(sources[i % d], c);
    }
    let dag = b.build().expect("pebble collection DAG is valid");
    PebbleCollection {
        dag,
        sources,
        chain,
    }
}

/// The pyramid gadget: `base` source nodes at the bottom; every higher row is
/// one node narrower and each node has two in-neighbours (the two nodes below
/// it); the apex is the unique sink.
#[derive(Debug, Clone)]
pub struct Pyramid {
    /// The pyramid DAG.
    pub dag: Dag,
    /// Rows bottom-up: `rows[0]` are the `base` sources, `rows.last()` is the apex.
    pub rows: Vec<Vec<NodeId>>,
}

/// Build a pyramid with `base ≥ 1` source nodes (so `base` rows in total).
pub fn pyramid(base: usize) -> Pyramid {
    assert!(base >= 1);
    let mut b = DagBuilder::new();
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(base);
    let bottom: Vec<NodeId> = (0..base)
        .map(|i| b.add_labeled_node(format!("p0_{i}")))
        .collect();
    rows.push(bottom);
    for row_idx in 1..base {
        let width = base - row_idx;
        let prev = rows.last().unwrap().clone();
        let row: Vec<NodeId> = (0..width)
            .map(|i| b.add_labeled_node(format!("p{row_idx}_{i}")))
            .collect();
        for (i, &v) in row.iter().enumerate() {
            b.add_edge(prev[i], v);
            b.add_edge(prev[i + 1], v);
        }
        rows.push(row);
    }
    if base == 1 {
        // A single node would be isolated; give the degenerate pyramid one edge.
        let apex = b.add_labeled_node("p1_0");
        b.add_edge(rows[0][0], apex);
        rows.push(vec![apex]);
    }
    let dag = b.build().expect("pyramid DAG is valid");
    Pyramid { dag, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_gadget_shape() {
        let g = fig1_gadget();
        assert_eq!(g.dag.node_count(), 8);
        assert_eq!(g.dag.edge_count(), 10);
        assert_eq!(g.dag.sources(), vec![g.u1, g.u2]);
        assert_eq!(g.dag.sinks(), vec![g.v1, g.v2]);
        assert_eq!(g.dag.max_in_degree(), 2);
        assert_eq!(g.dag.max_out_degree(), 3);
        // u1 is the degree-3 node (w1, w2, w4).
        assert_eq!(g.dag.out_degree(g.u1), 3);
    }

    #[test]
    fn fig1_full_shape() {
        let g = fig1_full();
        assert_eq!(g.dag.node_count(), 10);
        assert_eq!(g.dag.edge_count(), 14);
        assert_eq!(g.dag.sources(), vec![g.u0]);
        assert_eq!(g.dag.sinks(), vec![g.v0]);
        assert_eq!(g.dag.trivial_cost(), 2);
        assert_eq!(g.dag.max_in_degree(), 2);
        assert!(g.dag.has_edge(g.u0, g.u1));
        assert!(g.dag.has_edge(g.u0, g.u2));
        assert!(g.dag.has_edge(g.v1, g.v0));
        assert!(g.dag.has_edge(g.v2, g.v0));
        assert!(g.dag.has_edge(g.w[2], g.w[3])); // w3 -> w4
    }

    #[test]
    fn chained_gadgets_shapes() {
        for copies in 1..=5 {
            let c = chained_gadgets(copies);
            // 8 nodes for the first copy, 6 new nodes for each further copy,
            // plus u0 and v0.
            assert_eq!(c.dag.node_count(), 8 + 6 * (copies - 1) + 2);
            assert_eq!(c.dag.edge_count(), 10 * copies + 4);
            assert_eq!(c.dag.sources(), vec![c.u0]);
            assert_eq!(c.dag.sinks(), vec![c.v0]);
            assert_eq!(c.dag.max_in_degree(), 2);
            assert_eq!(c.dag.max_out_degree(), 3);
            assert_eq!(c.gadgets.len(), copies);
        }
    }

    #[test]
    fn chained_gadgets_share_boundary_nodes() {
        let c = chained_gadgets(3);
        for i in 1..3 {
            assert_eq!(c.gadgets[i][0], c.gadgets[i - 1][6]); // u1 of i == v1 of i-1
            assert_eq!(c.gadgets[i][1], c.gadgets[i - 1][7]); // u2 of i == v2 of i-1
        }
    }

    #[test]
    fn zipper_shape() {
        let d = 4;
        let len = 6;
        let z = zipper(d, len);
        assert_eq!(z.dag.node_count(), 2 * d + len);
        // Chain node 0 has d in-edges, every later one has d + 1.
        assert_eq!(z.dag.edge_count(), d + (len - 1) * (d + 1));
        assert_eq!(z.dag.sources().len(), 2 * d);
        assert_eq!(z.dag.sinks(), vec![*z.chain.last().unwrap()]);
        assert_eq!(z.dag.max_in_degree(), d + 1);
        assert_eq!(z.dag.in_degree(z.chain[0]), d);
        // Alternation: chain[0] reads group A, chain[1] reads group B.
        assert!(z.dag.has_edge(z.group_a[0], z.chain[0]));
        assert!(!z.dag.has_edge(z.group_b[0], z.chain[0]));
        assert!(z.dag.has_edge(z.group_b[0], z.chain[1]));
    }

    #[test]
    fn pebble_collection_shape() {
        let d = 3;
        let len = 10;
        let p = pebble_collection(d, len);
        assert_eq!(p.dag.node_count(), d + len);
        assert_eq!(p.dag.edge_count(), len + (len - 1));
        assert_eq!(p.dag.sources().len(), d);
        assert_eq!(p.dag.sinks(), vec![*p.chain.last().unwrap()]);
        // chain node i reads source i mod d.
        assert!(p.dag.has_edge(p.sources[0], p.chain[0]));
        assert!(p.dag.has_edge(p.sources[1], p.chain[1]));
        assert!(p.dag.has_edge(p.sources[0], p.chain[3]));
        assert_eq!(p.dag.max_in_degree(), 2);
    }

    #[test]
    fn pyramid_shape() {
        let p = pyramid(4);
        assert_eq!(p.rows.len(), 4);
        assert_eq!(p.dag.node_count(), 4 + 3 + 2 + 1);
        assert_eq!(p.dag.edge_count(), 2 * (3 + 2 + 1));
        assert_eq!(p.dag.sources().len(), 4);
        assert_eq!(p.dag.sinks().len(), 1);
        assert_eq!(p.dag.max_in_degree(), 2);
    }

    #[test]
    fn degenerate_pyramid_is_single_edge() {
        let p = pyramid(1);
        assert_eq!(p.dag.node_count(), 2);
        assert_eq!(p.dag.edge_count(), 1);
    }
}

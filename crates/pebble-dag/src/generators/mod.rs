//! Generators for every DAG family used in the paper.
//!
//! | Generator | Paper reference |
//! |---|---|
//! | [`fig1_gadget`], [`fig1_full`] | Figure 1, Proposition 4.2 |
//! | [`chained_gadgets`] | Proposition 4.7 (linear-factor gap) |
//! | [`zipper`] | Section 4.2.1, Figure 2 (left) |
//! | [`binary_tree`], [`kary_tree`] | Section 4.2.2, Figure 2 (middle), Appendix A.2 |
//! | [`pebble_collection`] | Section 4.2.3, Figure 2 (right), Proposition 4.6 |
//! | [`pyramid`] | Section 4.2.3 (pyramid gadget of [8, 19]) |
//! | [`matvec`] | Proposition 4.3 |
//! | [`matmul`] | Theorem 6.10 |
//! | [`fft`] | Section 6.3.1, Figure 4, Theorem 6.9 |
//! | [`attention_qk`], [`attention_full`] | Section 6.3.3, Theorem 6.11 |
//! | [`spartition_counterexample`] | Figure 3, Lemma 5.4 |
//! | [`random_layered`] | randomised testing |

mod attention;
mod counterexample;
mod fft;
mod gadgets;
mod linalg;
mod random;
mod trees;

pub use attention::{attention_full, attention_qk, AttentionDag, AttentionFullDag};
pub use counterexample::{spartition_counterexample, CounterexampleDag};
pub use fft::{fft, FftDag};
pub use gadgets::{
    chained_gadgets, fig1_full, fig1_gadget, pebble_collection, pyramid, zipper, ChainedGadgets,
    Fig1Dag, Fig1Gadget, PebbleCollection, Pyramid, Zipper,
};
pub use linalg::{matmul, matvec, MatMulDag, MatVecDag};
pub use random::{random_layered, RandomLayeredConfig};
pub use trees::{binary_tree, kary_tree, KaryTree};

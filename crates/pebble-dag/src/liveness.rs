//! Next-use / liveness precomputation for scheduling.
//!
//! The heuristic schedulers in `pebble-sched` process a DAG along a *compute
//! order* (a topological order of the nodes) and repeatedly have to decide
//! which resident value to evict. Belady-style (furthest-in-future) eviction
//! needs, for every value, the position in the compute order at which it is
//! consumed next. This module precomputes those consumer positions once in
//! `O(n + m)` and answers next-use queries with a monotone cursor per node,
//! so a whole schedule pays amortised `O(n + m)` for all its queries.

use crate::graph::Dag;
use crate::ids::NodeId;

/// Position in a compute order that is later than every real position; used
/// as the next-use value of dead nodes (no remaining consumer).
pub const NEVER: usize = usize::MAX;

/// Consumer positions of every node with respect to a fixed compute order.
///
/// For a node `u`, the *uses* of `u` are the positions (indices into the
/// compute order) of its out-neighbours. [`NextUse::next_use_at`] returns the
/// first use at or after a given time; because schedulers only ever query
/// non-decreasing times, each node keeps a cursor that only moves forward,
/// making a full schedule's worth of queries amortised linear.
#[derive(Debug, Clone)]
pub struct NextUse {
    /// CSR offsets into `uses`, one slice per node.
    offsets: Vec<usize>,
    /// Consumer positions, sorted increasingly within each node's slice.
    uses: Vec<usize>,
    /// Per-node cursor into its slice (monotone).
    cursor: Vec<usize>,
}

impl NextUse {
    /// Precompute consumer positions for `order`, which must contain every
    /// node of `dag` exactly once (typically a topological order; the
    /// computation itself does not require topological validity).
    pub fn new(dag: &Dag, order: &[NodeId]) -> Self {
        let n = dag.node_count();
        assert_eq!(order.len(), n, "order must cover every node exactly once");
        let mut position = vec![usize::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            debug_assert_eq!(position[v.index()], usize::MAX, "duplicate node in order");
            position[v.index()] = i;
        }

        let mut offsets = vec![0usize; n + 1];
        for v in dag.nodes() {
            offsets[v.index() + 1] = dag.out_degree(v);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut uses = vec![0usize; offsets[n]];
        let mut cursor_tmp = offsets.clone();
        // Emitting consumers in increasing consumer position keeps each
        // node's slice sorted without a per-slice sort.
        for (i, &v) in order.iter().enumerate() {
            for &(u, _) in dag.in_edges(v) {
                uses[cursor_tmp[u.index()]] = i;
                cursor_tmp[u.index()] += 1;
            }
        }
        for v in 0..n {
            debug_assert!(uses[offsets[v]..offsets[v + 1]]
                .windows(2)
                .all(|w| w[0] <= w[1]));
        }
        NextUse {
            offsets,
            uses,
            cursor: vec![0; n],
        }
    }

    /// All consumer positions of `v`, sorted increasingly.
    pub fn uses(&self, v: NodeId) -> &[usize] {
        &self.uses[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The first use of `v` at or after position `now`, or [`NEVER`] if `v`
    /// has no remaining consumer. Queries for a given node must come with
    /// non-decreasing `now` values (the cursor only moves forward); the
    /// schedulers' clock is monotone, so this holds naturally.
    pub fn next_use_at(&mut self, v: NodeId, now: usize) -> usize {
        let lo = self.offsets[v.index()];
        let hi = self.offsets[v.index() + 1];
        let mut c = lo + self.cursor[v.index()];
        while c < hi && self.uses[c] < now {
            c += 1;
        }
        self.cursor[v.index()] = c - lo;
        if c < hi {
            self.uses[c]
        } else {
            NEVER
        }
    }

    /// Reset all cursors, allowing the structure to be replayed from time 0.
    pub fn reset(&mut self) {
        self.cursor.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;
    use crate::topo;

    /// a -> b -> d, a -> c -> d.
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[3]);
        b.add_edge(n[2], n[3]);
        b.build().unwrap()
    }

    #[test]
    fn uses_are_consumer_positions() {
        let g = diamond();
        let order = topo::topological_order(&g); // 0, 1, 2, 3
        let nu = NextUse::new(&g, &order);
        assert_eq!(nu.uses(NodeId(0)), &[1, 2]);
        assert_eq!(nu.uses(NodeId(1)), &[3]);
        assert_eq!(nu.uses(NodeId(2)), &[3]);
        assert_eq!(nu.uses(NodeId(3)), &[] as &[usize]);
    }

    #[test]
    fn next_use_advances_monotonically() {
        let g = diamond();
        let order = topo::topological_order(&g);
        let mut nu = NextUse::new(&g, &order);
        assert_eq!(nu.next_use_at(NodeId(0), 0), 1);
        assert_eq!(nu.next_use_at(NodeId(0), 1), 1);
        assert_eq!(nu.next_use_at(NodeId(0), 2), 2);
        assert_eq!(nu.next_use_at(NodeId(0), 3), NEVER);
        assert_eq!(nu.next_use_at(NodeId(3), 0), NEVER);
        nu.reset();
        assert_eq!(nu.next_use_at(NodeId(0), 0), 1);
    }

    #[test]
    fn respects_custom_orders() {
        let g = diamond();
        // Reversed sibling order: 0, 2, 1, 3.
        let order = vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3)];
        let mut nu = NextUse::new(&g, &order);
        assert_eq!(nu.uses(NodeId(0)), &[1, 2]);
        assert_eq!(nu.next_use_at(NodeId(2), 2), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_length_order() {
        let g = diamond();
        NextUse::new(&g, &[NodeId(0)]);
    }
}

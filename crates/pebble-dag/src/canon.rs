//! Iso-invariant canonical hashing of DAGs — the substrate of the
//! content-addressed schedule cache.
//!
//! Two DAGs that differ only by a relabeling of node ids (and any reordering
//! of the edge list) describe the *same computation*, so a certified schedule
//! for one is a certified schedule for the other, modulo renaming. This
//! module computes:
//!
//! * a [`CanonKey`] — a 256-bit hash that is **invariant under node
//!   relabeling and edge-order permutation** (node labels are ignored: the
//!   pebble games only see structure), built by iterated
//!   Weisfeiler–Leman-style color refinement over the CSR representation;
//! * a canonical node ordering ([`CanonicalForm::perm`]) that maps node ids
//!   into a labeling-independent numbering, so a schedule stored under the
//!   canonical numbering can be replayed on any isomorphic relabeling.
//!
//! ## Soundness contract
//!
//! The key is a *hash*: distinct isomorphism classes collide with negligible
//! probability (256 bits of output; WL-indistinguishable non-isomorphic
//! graphs are the only systematic source, and they are vanishingly rare
//! among computational DAGs). The canonical permutation is *best effort* on
//! automorphism-rich graphs: WL color classes are individualized a bounded
//! number of times and remaining ties break by original id, which an
//! adversarial relabeling can exploit to produce inconsistent orderings.
//! **Every consumer must therefore re-validate a schedule obtained through
//! canonical translation** (the schedule cache replays each hit through the
//! game simulator before serving it); a wrong permutation then costs a cache
//! miss, never a wrong answer.

use crate::ids::NodeId;
use crate::Dag;
use std::fmt;

/// A 256-bit iso-invariant DAG fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanonKey(pub [u64; 4]);

impl CanonKey {
    /// Lowercase fixed-width (64 character) hex rendering, suitable as a
    /// file name in a content-addressed store.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for w in self.0 {
            s.push_str(&format!("{w:016x}"));
        }
        s
    }

    /// Parse the [`CanonKey::hex`] rendering back.
    pub fn from_hex(s: &str) -> Option<CanonKey> {
        if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_str_radix(&s[16 * i..16 * (i + 1)], 16).ok()?;
        }
        Some(CanonKey(words))
    }
}

impl fmt::Display for CanonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// The canonical form of a DAG: its key plus a canonical node numbering.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The iso-invariant fingerprint (computed *before* individualization,
    /// so it never depends on the tie-breaking below).
    pub key: CanonKey,
    /// `perm[v.index()]` is the canonical position of node `v`.
    pub perm: Vec<usize>,
}

impl CanonicalForm {
    /// The inverse numbering: `inverse()[canonical] = original node`.
    pub fn inverse(&self) -> Vec<NodeId> {
        let mut inv = vec![NodeId::from_index(0); self.perm.len()];
        for (orig, &canon) in self.perm.iter().enumerate() {
            inv[canon] = NodeId::from_index(orig);
        }
        inv
    }

    /// Map an original node id to its canonical position.
    pub fn to_canonical(&self, v: NodeId) -> usize {
        self.perm[v.index()]
    }
}

/// Refinement rounds before the color partition is declared stable. Capping
/// keeps million-node graphs cheap; an early cap is still iso-invariant
/// (both relabelings stop at the identical round).
const MAX_ROUNDS: usize = 24;

/// Individualization passes for the canonical ordering. Beyond the cap the
/// remaining ties break by original id (see the module soundness contract).
const MAX_INDIVIDUALIZATIONS: usize = 64;

/// Total refinement work (rounds × nodes) the individualization loop may
/// spend. Canonicalization runs on the serving hot path — a cache hit must
/// stay in the low milliseconds — so on large symmetric graphs the loop
/// stops early and the remaining ties break by original id, trading
/// cross-labeling hit rate (a miss re-solves; soundness is unaffected) for
/// bounded latency. Small graphs never hit this budget.
const INDIVIDUALIZATION_WORK: usize = 1 << 16;

/// Node count above which individualization is skipped entirely: serving
/// paths canonicalize per request, and the id tie-break plus simulator
/// re-validation is the right latency/robustness trade at that scale.
const INDIVIDUALIZATION_LIMIT: usize = 100_000;

/// splitmix64 finalizer: the bit mixer behind every hash in this module.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-dependent combine; multiset hashes sort their inputs first.
fn combine(acc: u64, value: u64) -> u64 {
    mix(acc ^ mix(value))
}

const PRED_TAG: u64 = 0x9D8A_75D1_0000_0001;
const SUCC_TAG: u64 = 0x9D8A_75D1_0000_0002;
const SELF_TAG: u64 = 0x9D8A_75D1_0000_0003;
const INDIV_TAG: u64 = 0x9D8A_75D1_0000_0004;

/// One WL round: every node hashes its own color with the sorted multisets
/// of its predecessor and successor colors. Including the old color makes
/// the partition (w.h.p.) monotonically refining, so "distinct count stopped
/// growing" is a sound fixpoint test.
fn refine_round(dag: &Dag, colors: &[u64], scratch: &mut Vec<u64>, out: &mut [u64]) {
    for v in dag.nodes() {
        let mut h = combine(SELF_TAG, colors[v.index()]);
        scratch.clear();
        scratch.extend(dag.in_edges(v).iter().map(|&(u, _)| colors[u.index()]));
        scratch.sort_unstable();
        for &c in scratch.iter() {
            h = combine(h, c ^ PRED_TAG);
        }
        scratch.clear();
        scratch.extend(dag.out_edges(v).iter().map(|&(w, _)| colors[w.index()]));
        scratch.sort_unstable();
        for &c in scratch.iter() {
            h = combine(h, c ^ SUCC_TAG);
        }
        out[v.index()] = h;
    }
}

fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Refine to (capped) fixpoint, in place. Returns the number of rounds run
/// (the individualization loop budgets its total work with this).
fn refine_to_fixpoint(dag: &Dag, colors: &mut Vec<u64>) -> usize {
    let n = dag.node_count();
    let mut scratch = Vec::new();
    let mut next = vec![0u64; n];
    let mut distinct = distinct_count(colors);
    let mut rounds = 0;
    for _ in 0..MAX_ROUNDS.min(n) {
        refine_round(dag, colors, &mut scratch, &mut next);
        std::mem::swap(colors, &mut next);
        rounds += 1;
        let d = distinct_count(colors);
        if d <= distinct || d == n {
            break;
        }
        distinct = d;
    }
    rounds
}

fn initial_colors(dag: &Dag) -> Vec<u64> {
    dag.nodes()
        .map(|v| {
            combine(
                combine(SELF_TAG, dag.in_degree(v) as u64),
                dag.out_degree(v) as u64,
            )
        })
        .collect()
}

/// Fold the stable coloring into the 256-bit key: node count, edge count,
/// the sorted color multiset and the sorted directed edge color pairs. Every
/// ingredient is labeling-independent.
fn key_from_colors(dag: &Dag, colors: &[u64]) -> CanonKey {
    let mut node_colors = colors.to_vec();
    node_colors.sort_unstable();
    let mut edge_pairs: Vec<u64> = dag
        .edges()
        .map(|e| {
            let (u, v) = dag.edge_endpoints(e);
            combine(colors[u.index()], colors[v.index()])
        })
        .collect();
    edge_pairs.sort_unstable();
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        let mut h = mix(0xC0FF_EE00 + i as u64);
        h = combine(h, dag.node_count() as u64);
        h = combine(h, dag.edge_count() as u64);
        for &c in &node_colors {
            h = combine(h, c);
        }
        h = combine(h, PRED_TAG);
        for &p in &edge_pairs {
            h = combine(h, p);
        }
        *w = h;
    }
    CanonKey(words)
}

/// The iso-invariant fingerprint alone (cheaper than [`canonical_form`]: no
/// individualization passes).
pub fn canonical_key(dag: &Dag) -> CanonKey {
    let mut colors = initial_colors(dag);
    refine_to_fixpoint(dag, &mut colors);
    key_from_colors(dag, &colors)
}

/// Compute the full canonical form: the key plus a canonical node numbering
/// obtained by individualization-refinement over the WL color classes (ties
/// beyond the caps break by original id — see the module soundness contract).
pub fn canonical_form(dag: &Dag) -> CanonicalForm {
    let n = dag.node_count();
    let mut colors = initial_colors(dag);
    refine_to_fixpoint(dag, &mut colors);
    let key = key_from_colors(dag, &colors);

    if n <= INDIVIDUALIZATION_LIMIT {
        let mut work = 0usize;
        for _ in 0..MAX_INDIVIDUALIZATIONS {
            if work > INDIVIDUALIZATION_WORK {
                break;
            }
            // Find the tied class with the smallest color; individualize its
            // smallest-id member and re-refine so the distinction propagates.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by_key(|&i| (colors[i], i));
            let mut target: Option<usize> = None;
            let mut i = 0;
            while i < n {
                let mut j = i + 1;
                while j < n && colors[order[j]] == colors[order[i]] {
                    j += 1;
                }
                if j - i > 1 {
                    target = Some(order[i]);
                    break;
                }
                i = j;
            }
            let Some(v) = target else { break };
            colors[v] = combine(INDIV_TAG, colors[v]);
            work += n + refine_to_fixpoint(dag, &mut colors) * n;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| (colors[i], i));
    let mut perm = vec![0usize; n];
    for (canon, &orig) in order.iter().enumerate() {
        perm[orig] = canon;
    }
    CanonicalForm { key, perm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::DagBuilder;

    fn chain(len: usize) -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(len);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    /// Relabel `dag` through `perm` (node `v` becomes `perm[v]`), reversing
    /// the edge insertion order for good measure.
    fn relabel(dag: &Dag, perm: &[usize]) -> Dag {
        let mut b = DagBuilder::new();
        b.add_nodes(dag.node_count());
        let mut edges: Vec<(usize, usize)> = dag
            .edges()
            .map(|e| {
                let (u, v) = dag.edge_endpoints(e);
                (perm[u.index()], perm[v.index()])
            })
            .collect();
        edges.reverse();
        for (u, v) in edges {
            b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
        }
        b.build().unwrap()
    }

    #[test]
    fn key_is_invariant_under_relabeling() {
        let dag = generators::fft(16).dag;
        let n = dag.node_count();
        // A fixed non-trivial permutation: reverse.
        let perm: Vec<usize> = (0..n).rev().collect();
        let relabeled = relabel(&dag, &perm);
        assert_eq!(canonical_key(&dag), canonical_key(&relabeled));
    }

    #[test]
    fn different_structures_get_different_keys() {
        let a = canonical_key(&chain(5));
        let b = canonical_key(&chain(6));
        let c = canonical_key(&generators::fft(8).dag);
        let d = canonical_key(&generators::binary_tree(3));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d);
    }

    #[test]
    fn labels_are_ignored() {
        let mut b1 = DagBuilder::new();
        let x = b1.add_labeled_node("x");
        let y = b1.add_labeled_node("y");
        b1.add_edge(x, y);
        let mut b2 = DagBuilder::new();
        let p = b2.add_labeled_node("completely");
        let q = b2.add_labeled_node("different");
        b2.add_edge(p, q);
        assert_eq!(
            canonical_key(&b1.build().unwrap()),
            canonical_key(&b2.build().unwrap())
        );
    }

    #[test]
    fn perm_is_a_permutation_and_inverse_inverts() {
        let dag = generators::fft(16).dag;
        let form = canonical_form(&dag);
        let mut seen = vec![false; dag.node_count()];
        for &p in &form.perm {
            assert!(!seen[p], "duplicate canonical position {p}");
            seen[p] = true;
        }
        let inv = form.inverse();
        for v in dag.nodes() {
            assert_eq!(inv[form.to_canonical(v)], v);
        }
    }

    #[test]
    fn canonical_translation_is_an_isomorphism_on_an_asymmetric_dag() {
        // A DAG whose WL classes are all singletons: translation through the
        // canonical numbering must map edges to edges exactly.
        let dag = generators::random_layered(generators::RandomLayeredConfig {
            layers: 5,
            width: 6,
            max_in_degree: 3,
            seed: 7,
        });
        let n = dag.node_count();
        let perm: Vec<usize> = (0..n).map(|i| (i * 17 + 3) % n).collect();
        // (i*17+3) mod n is a bijection only when gcd(17, n) = 1; the
        // generator's node count is not a multiple of 17 here.
        assert_eq!(
            distinct_count(&perm.iter().map(|&p| p as u64).collect::<Vec<_>>()),
            n
        );
        let relabeled = relabel(&dag, &perm);
        let f1 = canonical_form(&dag);
        let f2 = canonical_form(&relabeled);
        assert_eq!(f1.key, f2.key);
        let inv2 = f2.inverse();
        // v (in dag) -> canonical -> node of `relabeled`.
        let translate = |v: NodeId| inv2[f1.to_canonical(v)];
        for e in dag.edges() {
            let (u, v) = dag.edge_endpoints(e);
            assert!(
                relabeled.has_edge(translate(u), translate(v)),
                "edge ({u:?}, {v:?}) not preserved"
            );
        }
    }

    #[test]
    fn hex_roundtrip() {
        let key = canonical_key(&chain(4));
        let hex = key.hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(CanonKey::from_hex(&hex), Some(key));
        assert_eq!(CanonKey::from_hex("zz"), None);
        assert_eq!(key.to_string(), hex);
    }
}

//! # pebble-dag
//!
//! Computational DAG substrate for red-blue pebble game analysis.
//!
//! A computation is modelled as a directed acyclic graph `G = (V, E)`: nodes
//! are operations, an edge `(u, v)` means the output of `u` is an input of `v`.
//! This crate provides:
//!
//! * [`Dag`] — an immutable, CSR-backed DAG with O(1) access to in/out
//!   neighbourhoods, built via [`DagBuilder`].
//! * [`BitSet`] — a compact fixed-capacity bit set used throughout the pebbling
//!   engines and the lower-bound tooling for node/edge sets.
//! * [`topo`] — topological orderings, level structure, ancestor/descendant
//!   closures.
//! * [`traversal`] — reachability and path queries.
//! * [`flow`] / [`dominators`] — Dinic max-flow and minimum vertex cuts, used
//!   to compute and verify (edge-)dominator sets.
//! * [`liveness`] — next-use / consumer-position precomputation for a compute
//!   order, the substrate of Belady-style eviction in the heuristic
//!   schedulers.
//! * [`decompose`] — structure detection (trees, chains, series-parallel via
//!   reduction recognition, level bands, sink-cone tiles) and decomposition
//!   of a DAG into independently schedulable components with explicit
//!   cut/boundary sets, the substrate of divide-and-conquer scheduling.
//! * [`generators`] — every DAG family used in the paper: Figure 1 gadget and
//!   its chained version, zipper gadget, binary / k-ary trees, pyramid and
//!   pebble-collection gadgets, matrix–vector and matrix–matrix multiplication,
//!   the m-point FFT butterfly, the attention (Q·Kᵀ) DAG, the Lemma 5.4
//!   counterexample, and seeded random layered DAGs.
//! * [`canon`] — iso-invariant canonical hashing (Weisfeiler–Leman color
//!   refinement) and canonical node numbering, the substrate of the
//!   content-addressed schedule cache.
//! * [`export`] — DOT and JSON export for inspection and debugging.
//! * [`stats`] — degree statistics and structural summaries.

#![deny(missing_docs)]

pub mod bitset;
pub mod canon;
pub mod decompose;
pub mod dominators;
pub mod export;
pub mod flow;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod liveness;
pub mod stats;
pub mod topo;
pub mod traversal;

pub use bitset::BitSet;
pub use graph::{Dag, DagBuilder, DagError};
pub use ids::{EdgeId, NodeId};

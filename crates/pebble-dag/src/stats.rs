//! Structural summaries of DAGs, used by the experiment tables.

use crate::graph::Dag;
use crate::topo;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structural summary of a computational DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagStats {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
    /// Number of source nodes.
    pub sources: usize,
    /// Number of sink nodes.
    pub sinks: usize,
    /// Maximum in-degree Δ_in.
    pub max_in_degree: usize,
    /// Maximum out-degree Δ_out.
    pub max_out_degree: usize,
    /// Longest path length (edges).
    pub depth: usize,
    /// Trivial I/O cost: sources + sinks.
    pub trivial_cost: usize,
}

impl DagStats {
    /// Compute the summary for a DAG.
    pub fn of(dag: &Dag) -> Self {
        DagStats {
            nodes: dag.node_count(),
            edges: dag.edge_count(),
            sources: dag.sources().len(),
            sinks: dag.sinks().len(),
            max_in_degree: dag.max_in_degree(),
            max_out_degree: dag.max_out_degree(),
            depth: topo::depth(dag),
            trivial_cost: dag.trivial_cost(),
        }
    }

    /// Smallest cache size for which an RBP pebbling exists: `Δ_in + 1`.
    pub fn min_rbp_cache(&self) -> usize {
        self.max_in_degree + 1
    }
}

impl fmt::Display for DagStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} sources={} sinks={} Δin={} Δout={} depth={} trivial={}",
            self.nodes,
            self.edges,
            self.sources,
            self.sinks,
            self.max_in_degree,
            self.max_out_degree,
            self.depth,
            self.trivial_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    #[test]
    fn stats_of_diamond() {
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        let g = b.build().unwrap();
        let s = DagStats::of(&g);
        assert_eq!(
            s,
            DagStats {
                nodes: 4,
                edges: 4,
                sources: 1,
                sinks: 1,
                max_in_degree: 2,
                max_out_degree: 2,
                depth: 2,
                trivial_cost: 2,
            }
        );
        assert_eq!(s.min_rbp_cache(), 3);
        let rendered = s.to_string();
        assert!(rendered.contains("n=4"));
        assert!(rendered.contains("trivial=2"));
    }
}

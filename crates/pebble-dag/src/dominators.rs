//! Dominator and edge-dominator sets (Definitions 5.1 and 6.1 of the paper).
//!
//! A node set `D` *dominates* a node set `V₀` if every directed path that
//! starts at a source of the DAG and ends at a node of `V₀` contains a node of
//! `D`. The edge variant used by the PRBP lower-bound machinery reduces to the
//! node variant on the start points of the edge set (the paper's observation
//! after Definition 6.1).
//!
//! Besides validity checking, this module computes *minimum* dominator sets by
//! a node-splitting max-flow reduction (Menger's theorem): the minimum number
//! of nodes whose removal disconnects the sources from `V₀` equals the maximum
//! number of node-disjoint source→`V₀` paths.

use crate::bitset::BitSet;
use crate::flow::{FlowNetwork, INF_CAPACITY};
use crate::graph::Dag;
use crate::ids::NodeId;

/// Returns `true` if `dominator` is a dominator set for `targets`
/// (Definition 5.1).
///
/// Implementation: delete the dominator nodes and check whether any source can
/// still reach a target. A target that is itself a source and not in the
/// dominator is immediately a witness (the single-node path avoids `D`).
pub fn is_dominator(dag: &Dag, dominator: &BitSet, targets: &BitSet) -> bool {
    debug_assert_eq!(dominator.capacity(), dag.node_count());
    debug_assert_eq!(targets.capacity(), dag.node_count());

    // Forward reachability from the sources avoiding dominator nodes.
    let mut reach = dag.node_set();
    let mut stack: Vec<NodeId> = Vec::new();
    for v in dag.nodes() {
        if dag.is_source(v) && !dominator.contains(v.index()) {
            if targets.contains(v.index()) {
                return false;
            }
            reach.insert(v.index());
            stack.push(v);
        }
    }
    while let Some(v) = stack.pop() {
        for &(w, _) in dag.out_edges(v) {
            if dominator.contains(w.index()) || !reach.insert(w.index()) {
                continue;
            }
            if targets.contains(w.index()) {
                return false;
            }
            stack.push(w);
        }
    }
    true
}

/// The start points `Start(E₀) = {u | ∃v: (u,v) ∈ E₀}` of an edge set.
pub fn start_set(dag: &Dag, edges: &BitSet) -> BitSet {
    debug_assert_eq!(edges.capacity(), dag.edge_count());
    let mut starts = dag.node_set();
    for e in edges.iter() {
        let (u, _) = dag.edge_endpoints(crate::ids::EdgeId::from_index(e));
        starts.insert(u.index());
    }
    starts
}

/// Returns `true` if `dominator` is an *edge-dominator* for the edge set
/// `edges` (Definition 6.1): every source-starting path containing an edge of
/// `edges` must contain a node of `dominator`. Equivalent to `dominator`
/// dominating `Start(edges)`.
pub fn is_edge_dominator(dag: &Dag, dominator: &BitSet, edges: &BitSet) -> bool {
    is_dominator(dag, dominator, &start_set(dag, edges))
}

/// Size of a minimum dominator set for `targets`, computed by max-flow on the
/// node-split network.
pub fn min_dominator_size(dag: &Dag, targets: &BitSet) -> usize {
    min_dominator_set(dag, targets).count()
}

/// A minimum dominator set for `targets`.
///
/// Node-splitting reduction: every DAG node `v` becomes an arc
/// `v_in → v_out` of capacity 1; every DAG edge `(u, v)` becomes
/// `u_out → v_in` with infinite capacity; a super-source feeds every DAG
/// source's `v_in` with infinite capacity and every target's `v_out` drains to
/// a super-sink with infinite capacity. A minimum cut then consists solely of
/// node arcs, and those nodes form a minimum dominator.
pub fn min_dominator_set(dag: &Dag, targets: &BitSet) -> BitSet {
    let n = dag.node_count();
    if targets.is_empty() {
        return dag.node_set();
    }
    // Node v: in = 2v, out = 2v + 1. Super source = 2n, super sink = 2n + 1.
    let s = 2 * n;
    let t = 2 * n + 1;
    let mut net = FlowNetwork::new(2 * n + 2);
    for v in dag.nodes() {
        net.add_edge(2 * v.index(), 2 * v.index() + 1, 1);
        if dag.is_source(v) {
            net.add_edge(s, 2 * v.index(), INF_CAPACITY);
        }
        if targets.contains(v.index()) {
            net.add_edge(2 * v.index() + 1, t, INF_CAPACITY);
        }
        for &(w, _) in dag.out_edges(v) {
            net.add_edge(2 * v.index() + 1, 2 * w.index(), INF_CAPACITY);
        }
    }
    net.max_flow(s, t);
    let source_side = net.min_cut_source_side(s);
    // A node arc (v_in -> v_out) is cut iff v_in is on the source side and
    // v_out is not.
    let mut dominator = dag.node_set();
    for v in dag.nodes() {
        if source_side[2 * v.index()] && !source_side[2 * v.index() + 1] {
            dominator.insert(v.index());
        }
    }
    debug_assert!(is_dominator(dag, &dominator, targets));
    dominator
}

/// Size of a minimum edge-dominator set for `edges`.
pub fn min_edge_dominator_size(dag: &Dag, edges: &BitSet) -> usize {
    min_dominator_size(dag, &start_set(dag, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    /// a -> b -> d, a -> c -> d
    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        b.build().unwrap()
    }

    /// Two independent chains a->b, c->d.
    fn two_chains() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let c = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn source_dominates_everything_below_it() {
        let g = diamond();
        let dom = BitSet::from_indices(4, [0]);
        let targets = BitSet::from_indices(4, [3]);
        assert!(is_dominator(&g, &dom, &targets));
    }

    #[test]
    fn single_branch_does_not_dominate_sink() {
        let g = diamond();
        let dom = BitSet::from_indices(4, [1]);
        let targets = BitSet::from_indices(4, [3]);
        assert!(!is_dominator(&g, &dom, &targets));
    }

    #[test]
    fn both_branches_dominate_sink() {
        let g = diamond();
        let dom = BitSet::from_indices(4, [1, 2]);
        let targets = BitSet::from_indices(4, [3]);
        assert!(is_dominator(&g, &dom, &targets));
    }

    #[test]
    fn target_itself_is_a_dominator() {
        let g = diamond();
        let dom = BitSet::from_indices(4, [3]);
        let targets = BitSet::from_indices(4, [3]);
        assert!(is_dominator(&g, &dom, &targets));
    }

    #[test]
    fn source_target_needs_itself() {
        let g = diamond();
        // Target set contains the source node 0: only node 0 itself covers the
        // single-node path.
        let targets = BitSet::from_indices(4, [0]);
        assert!(!is_dominator(&g, &BitSet::new(4), &targets));
        assert!(is_dominator(&g, &BitSet::from_indices(4, [0]), &targets));
        assert_eq!(min_dominator_size(&g, &targets), 1);
    }

    #[test]
    fn min_dominator_diamond_sink_is_one() {
        let g = diamond();
        let targets = BitSet::from_indices(4, [3]);
        // Either {a} or {d} works, so the minimum has size 1.
        assert_eq!(min_dominator_size(&g, &targets), 1);
    }

    #[test]
    fn min_dominator_middle_pair_is_one() {
        let g = diamond();
        let targets = BitSet::from_indices(4, [1, 2]);
        // {a} covers every path to b and c.
        assert_eq!(min_dominator_size(&g, &targets), 1);
    }

    #[test]
    fn min_dominator_disjoint_chains_is_two() {
        let g = two_chains();
        let targets = BitSet::from_indices(4, [1, 3]);
        assert_eq!(min_dominator_size(&g, &targets), 2);
    }

    #[test]
    fn min_dominator_set_is_valid_and_minimal() {
        let g = diamond();
        let targets = BitSet::from_indices(4, [3]);
        let dom = min_dominator_set(&g, &targets);
        assert!(is_dominator(&g, &dom, &targets));
        assert_eq!(dom.count(), 1);
    }

    #[test]
    fn empty_target_set_has_empty_dominator() {
        let g = diamond();
        let targets = BitSet::new(4);
        assert!(is_dominator(&g, &BitSet::new(4), &targets));
        assert_eq!(min_dominator_size(&g, &targets), 0);
    }

    #[test]
    fn edge_dominator_via_start_set() {
        let g = diamond();
        // E0 = {(b, d)}: start set = {b}; {a} dominates it, {c} does not.
        let e = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let edges = BitSet::from_indices(g.edge_count(), [e.index()]);
        assert!(is_edge_dominator(&g, &BitSet::from_indices(4, [0]), &edges));
        assert!(is_edge_dominator(&g, &BitSet::from_indices(4, [1]), &edges));
        assert!(!is_edge_dominator(
            &g,
            &BitSet::from_indices(4, [2]),
            &edges
        ));
        assert_eq!(min_edge_dominator_size(&g, &edges), 1);
    }
}

//! Immutable computational DAGs in CSR (compressed sparse row) form.
//!
//! A [`Dag`] is built once via [`DagBuilder`] and never mutated afterwards.
//! Both the out-adjacency and the in-adjacency are stored as CSR arrays so
//! that pebbling simulators can walk predecessors and successors without any
//! per-node allocation. Edges carry stable [`EdgeId`]s (assigned in insertion
//! order) because the partial-computing game marks *edges*, not nodes.

use crate::bitset::BitSet;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Errors reported by [`DagBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a node id that was never added.
    UnknownNode(NodeId),
    /// A self-loop `(v, v)` was added.
    SelfLoop(NodeId),
    /// The same directed edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The edge set contains a directed cycle.
    Cycle,
    /// The graph contains a node with neither incoming nor outgoing edges.
    IsolatedNode(NodeId),
    /// The graph has no nodes at all.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownNode(v) => write!(f, "edge references unknown node {v:?}"),
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v:?}"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u:?}, {v:?})"),
            DagError::Cycle => write!(f, "edge set contains a directed cycle"),
            DagError::IsolatedNode(v) => write!(f, "node {v:?} is isolated (no edges)"),
            DagError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for DagError {}

/// Incremental builder for [`Dag`].
///
/// Nodes are created with [`DagBuilder::add_node`] (optionally labelled) and
/// edges with [`DagBuilder::add_edge`]. [`DagBuilder::build`] validates the
/// result: no self-loops, no duplicate edges, no cycles, no isolated nodes
/// (the paper assumes DAGs without isolated nodes).
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    labels: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with an empty label; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.add_labeled_node(String::new())
    }

    /// Add a node carrying a human-readable label; returns its id.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.labels.len());
        self.labels.push(label.into());
        id
    }

    /// Add `count` unlabelled nodes, returning their ids in order.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Add a directed edge `(u, v)`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validate and freeze into a [`Dag`].
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        let mut seen = HashSet::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            if u.index() >= n {
                return Err(DagError::UnknownNode(u));
            }
            if v.index() >= n {
                return Err(DagError::UnknownNode(v));
            }
            if u == v {
                return Err(DagError::SelfLoop(u));
            }
            if !seen.insert((u, v)) {
                return Err(DagError::DuplicateEdge(u, v));
            }
        }

        // Degree counts.
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        for &(u, v) in &self.edges {
            out_deg[u.index()] += 1;
            in_deg[v.index()] += 1;
        }
        for i in 0..n {
            if out_deg[i] == 0 && in_deg[i] == 0 {
                return Err(DagError::IsolatedNode(NodeId::from_index(i)));
            }
        }

        // CSR offsets for out- and in-adjacency. The adjacency entries store
        // (neighbour, edge id) pairs so the PRBP engine can translate between
        // node pairs and edge ids without a hash lookup.
        let m = self.edges.len();
        let mut out_off = vec![0usize; n + 1];
        let mut in_off = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            out_off[u.index() + 1] += 1;
            in_off[v.index() + 1] += 1;
        }
        for i in 0..n {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }
        let mut out_adj = vec![(NodeId(0), EdgeId(0)); m];
        let mut in_adj = vec![(NodeId(0), EdgeId(0)); m];
        let mut out_cursor = out_off.clone();
        let mut in_cursor = in_off.clone();
        let mut edge_endpoints = Vec::with_capacity(m);
        for (ei, &(u, v)) in self.edges.iter().enumerate() {
            let e = EdgeId::from_index(ei);
            out_adj[out_cursor[u.index()]] = (v, e);
            out_cursor[u.index()] += 1;
            in_adj[in_cursor[v.index()]] = (u, e);
            in_cursor[v.index()] += 1;
            edge_endpoints.push((u, v));
        }

        let dag = Dag {
            labels: self.labels,
            out_off,
            out_adj,
            in_off,
            in_adj,
            edge_endpoints,
        };

        // Cycle check via Kahn's algorithm.
        if dag.topological_order_internal().is_none() {
            return Err(DagError::Cycle);
        }
        Ok(dag)
    }
}

/// An immutable computational DAG.
///
/// Nodes are `NodeId(0) .. NodeId(n-1)`; edges are `EdgeId(0) .. EdgeId(m-1)`
/// in insertion order. Source nodes (in-degree 0) are the inputs of the
/// computation; sink nodes (out-degree 0) are its outputs.
#[derive(Clone, Serialize, Deserialize)]
pub struct Dag {
    labels: Vec<String>,
    out_off: Vec<usize>,
    out_adj: Vec<(NodeId, EdgeId)>,
    in_off: Vec<usize>,
    in_adj: Vec<(NodeId, EdgeId)>,
    edge_endpoints: Vec<(NodeId, NodeId)>,
}

impl Dag {
    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_endpoints.len()
    }

    /// Iterate over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Iterate over all edge ids in increasing order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::from_index)
    }

    /// The `(source, target)` endpoints of an edge.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edge_endpoints[e.index()]
    }

    /// The label attached to a node (may be empty).
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// Out-neighbours of `v` together with the connecting edge ids.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.out_adj[self.out_off[v.index()]..self.out_off[v.index() + 1]]
    }

    /// In-neighbours of `v` together with the connecting edge ids.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.in_adj[self.in_off[v.index()]..self.in_off[v.index() + 1]]
    }

    /// Out-neighbours of `v`.
    pub fn successors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(v).iter().map(|&(w, _)| w)
    }

    /// In-neighbours of `v`.
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(v).iter().map(|&(u, _)| u)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_off[v.index() + 1] - self.out_off[v.index()]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_off[v.index() + 1] - self.in_off[v.index()]
    }

    /// Returns `true` if `v` has no incoming edges (an input of the computation).
    #[inline]
    pub fn is_source(&self, v: NodeId) -> bool {
        self.in_degree(v) == 0
    }

    /// Returns `true` if `v` has no outgoing edges (an output of the computation).
    #[inline]
    pub fn is_sink(&self, v: NodeId) -> bool {
        self.out_degree(v) == 0
    }

    /// All source nodes in increasing id order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_source(v)).collect()
    }

    /// All sink nodes in increasing id order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.is_sink(v)).collect()
    }

    /// Maximum in-degree Δ_in over all nodes.
    pub fn max_in_degree(&self) -> usize {
        self.nodes().map(|v| self.in_degree(v)).max().unwrap_or(0)
    }

    /// Maximum out-degree Δ_out over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// The *trivial cost* `t`: number of sources plus number of sinks. Every
    /// valid pebbling (in RBP or PRBP) loads each source and saves each sink
    /// at least once, so `OPT ≥ t`.
    pub fn trivial_cost(&self) -> usize {
        self.nodes()
            .filter(|&v| self.is_source(v) || self.is_sink(v))
            .count()
    }

    /// Look up the edge id for the pair `(u, v)`, if the edge exists.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.out_edges(u)
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, e)| e)
    }

    /// Returns `true` if the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// A fresh, empty node set sized for this graph.
    pub fn node_set(&self) -> BitSet {
        BitSet::new(self.node_count())
    }

    /// A fresh, empty edge set sized for this graph.
    pub fn edge_set(&self) -> BitSet {
        BitSet::new(self.edge_count())
    }

    pub(crate) fn topological_order_internal(&self) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        let mut in_deg: Vec<usize> = (0..n)
            .map(|i| self.in_degree(NodeId::from_index(i)))
            .collect();
        let mut queue: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|&v| in_deg[v.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &(w, _) in self.out_edges(v) {
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dag {{ nodes: {}, edges: {}, sources: {}, sinks: {} }}",
            self.node_count(),
            self.edge_count(),
            self.sources().len(),
            self.sinks().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // a -> b -> d, a -> c -> d
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("a");
        let bb = b.add_labeled_node("b");
        let c = b.add_labeled_node("c");
        let d = b.add_labeled_node("d");
        b.add_edge(a, bb);
        b.add_edge(a, c);
        b.add_edge(bb, d);
        b.add_edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 2);
        assert_eq!(g.trivial_cost(), 2);
        assert_eq!(g.label(NodeId(1)), "b");
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn edge_endpoints_match_adjacency() {
        let g = diamond();
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e);
            assert!(g.out_edges(u).iter().any(|&(w, ee)| w == v && ee == e));
            assert!(g.in_edges(v).iter().any(|&(w, ee)| w == u && ee == e));
        }
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, y);
        b.add_edge(y, x);
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, y);
        b.add_edge(x, x);
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop(x));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DagBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, y);
        b.add_edge(x, y);
        assert_eq!(b.build().unwrap_err(), DagError::DuplicateEdge(x, y));
    }

    #[test]
    fn rejects_isolated_node() {
        let mut b = DagBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        let _z = b.add_node();
        b.add_edge(x, y);
        assert_eq!(b.build().unwrap_err(), DagError::IsolatedNode(NodeId(2)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = DagBuilder::new();
        let x = b.add_node();
        b.add_edge(x, NodeId(5));
        assert_eq!(b.build().unwrap_err(), DagError::UnknownNode(NodeId(5)));
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn serde_roundtrip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.sources(), g.sources());
        assert_eq!(back.sinks(), g.sinks());
    }
}

//! Topological orderings, level structure and closure computations.

use crate::bitset::BitSet;
use crate::graph::Dag;
use crate::ids::NodeId;

/// A topological ordering of the DAG (sources first). The ordering is the one
/// produced by Kahn's algorithm with a FIFO queue, so it is deterministic for
/// a given graph.
pub fn topological_order(dag: &Dag) -> Vec<NodeId> {
    dag.topological_order_internal()
        .expect("Dag invariant guarantees acyclicity")
}

/// Position of every node in [`topological_order`]: `rank[v] = i` iff node `v`
/// is the `i`-th node of the ordering.
pub fn topological_rank(dag: &Dag) -> Vec<usize> {
    let order = topological_order(dag);
    let mut rank = vec![0usize; dag.node_count()];
    for (i, v) in order.iter().enumerate() {
        rank[v.index()] = i;
    }
    rank
}

/// The *level* (longest path length from any source) of every node. Sources
/// have level 0.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let order = topological_order(dag);
    let mut level = vec![0usize; dag.node_count()];
    for &v in &order {
        for &(u, _) in dag.in_edges(v) {
            level[v.index()] = level[v.index()].max(level[u.index()] + 1);
        }
    }
    level
}

/// Length of the longest directed path in the DAG, measured in edges.
pub fn depth(dag: &Dag) -> usize {
    levels(dag).into_iter().max().unwrap_or(0)
}

/// Nodes grouped by level: `by_level[l]` lists the nodes whose level is `l`.
pub fn nodes_by_level(dag: &Dag) -> Vec<Vec<NodeId>> {
    let lv = levels(dag);
    let d = lv.iter().copied().max().unwrap_or(0);
    let mut out = vec![Vec::new(); d + 1];
    for v in dag.nodes() {
        out[lv[v.index()]].push(v);
    }
    out
}

/// The ancestor closure of `targets`: every node from which some node in
/// `targets` is reachable, **including** the targets themselves.
pub fn ancestors(dag: &Dag, targets: &BitSet) -> BitSet {
    let order = topological_order(dag);
    let mut anc = targets.clone();
    // Walk the order backwards: a node is an ancestor if any successor is.
    for &v in order.iter().rev() {
        if anc.contains(v.index()) {
            continue;
        }
        if dag.successors(v).any(|w| anc.contains(w.index())) {
            anc.insert(v.index());
        }
    }
    anc
}

/// The descendant closure of `sources_set`: every node reachable from some
/// node in `sources_set`, **including** the set itself.
pub fn descendants(dag: &Dag, sources_set: &BitSet) -> BitSet {
    let order = topological_order(dag);
    let mut desc = sources_set.clone();
    for &v in order.iter() {
        if desc.contains(v.index()) {
            continue;
        }
        if dag.predecessors(v).any(|u| desc.contains(u.index())) {
            desc.insert(v.index());
        }
    }
    desc
}

/// Verify that `order` is a valid topological ordering of `dag` covering every
/// node exactly once.
pub fn is_topological_order(dag: &Dag, order: &[NodeId]) -> bool {
    if order.len() != dag.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; dag.node_count()];
    for (i, v) in order.iter().enumerate() {
        if v.index() >= dag.node_count() || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    dag.edges().all(|e| {
        let (u, v) = dag.edge_endpoints(e);
        pos[u.index()] < pos[v.index()]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DagBuilder;

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new();
        let nodes = b.add_nodes(n);
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node();
        let x = b.add_node();
        let y = b.add_node();
        let d = b.add_node();
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, d);
        b.add_edge(y, d);
        b.build().unwrap()
    }

    #[test]
    fn chain_topology() {
        let g = chain(5);
        let order = topological_order(&g);
        assert!(is_topological_order(&g, &order));
        assert_eq!(order, (0..5).map(NodeId::from_index).collect::<Vec<_>>());
        assert_eq!(depth(&g), 4);
        assert_eq!(levels(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn diamond_levels_and_ranks() {
        let g = diamond();
        assert_eq!(levels(&g), vec![0, 1, 1, 2]);
        assert_eq!(depth(&g), 2);
        let rank = topological_rank(&g);
        assert_eq!(rank[0], 0);
        assert_eq!(rank[3], 3);
        let by_level = nodes_by_level(&g);
        assert_eq!(by_level.len(), 3);
        assert_eq!(by_level[0], vec![NodeId(0)]);
        assert_eq!(by_level[2], vec![NodeId(3)]);
    }

    #[test]
    fn ancestors_of_sink_is_everything() {
        let g = diamond();
        let targets = BitSet::from_indices(4, [3]);
        let anc = ancestors(&g, &targets);
        assert_eq!(anc.count(), 4);
    }

    #[test]
    fn ancestors_of_middle_node() {
        let g = diamond();
        let targets = BitSet::from_indices(4, [1]);
        let anc = ancestors(&g, &targets);
        assert_eq!(anc.to_vec(), vec![0, 1]);
    }

    #[test]
    fn descendants_of_source_is_everything() {
        let g = diamond();
        let src = BitSet::from_indices(4, [0]);
        let desc = descendants(&g, &src);
        assert_eq!(desc.count(), 4);
    }

    #[test]
    fn descendants_of_middle_node() {
        let g = diamond();
        let src = BitSet::from_indices(4, [2]);
        let desc = descendants(&g, &src);
        assert_eq!(desc.to_vec(), vec![2, 3]);
    }

    #[test]
    fn invalid_orders_rejected() {
        let g = chain(3);
        assert!(!is_topological_order(
            &g,
            &[NodeId(2), NodeId(1), NodeId(0)]
        ));
        assert!(!is_topological_order(&g, &[NodeId(0), NodeId(1)]));
        assert!(!is_topological_order(
            &g,
            &[NodeId(0), NodeId(0), NodeId(1)]
        ));
    }
}

//! Property coverage for the iso-invariant canonical hash: random node
//! relabelings and edge-order permutations of random layered DAGs hash
//! identically, structural edits change the key, and the canonical numbering
//! is always a permutation whose inverse inverts it.

use pebble_dag::canon::{canonical_form, canonical_key, CanonKey};
use pebble_dag::generators::{random_layered, RandomLayeredConfig};
use pebble_dag::{Dag, DagBuilder, NodeId};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Rebuild `dag` with node `v` renamed to `perm[v]` and the edge list
/// inserted in a seeded random order.
fn permuted(dag: &Dag, perm: &[usize], shuffle_seed: u64) -> Dag {
    let mut rng = ChaCha8Rng::seed_from_u64(shuffle_seed);
    let mut b = DagBuilder::new();
    b.add_nodes(dag.node_count());
    let mut edges: Vec<(usize, usize)> = dag
        .edges()
        .map(|e| {
            let (u, v) = dag.edge_endpoints(e);
            (perm[u.index()], perm[v.index()])
        })
        .collect();
    edges.shuffle(&mut rng);
    for (u, v) in edges {
        b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
    }
    b.build().expect("relabeling a valid DAG stays valid")
}

fn random_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    (2usize..6, 1usize..6, 1usize..4, any::<u64>()).prop_map(|(layers, width, deg, seed)| {
        random_layered(RandomLayeredConfig {
            layers,
            width,
            max_in_degree: deg,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn key_is_invariant_under_relabeling_and_edge_shuffle(
        dag in dag_strategy(),
        perm_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let perm = random_perm(dag.node_count(), perm_seed);
        let relabeled = permuted(&dag, &perm, shuffle_seed);
        prop_assert_eq!(canonical_key(&dag), canonical_key(&relabeled));
        // The full form computes the same key through the same pipeline.
        prop_assert_eq!(canonical_form(&dag).key, canonical_form(&relabeled).key);
    }

    #[test]
    fn removing_an_edge_changes_the_key(
        dag in dag_strategy(),
        pick in any::<u64>(),
    ) {
        // Drop one non-load-bearing edge (skip if removal would isolate a
        // node — the builder rejects isolated nodes by design).
        let m = dag.edge_count();
        let victim = (pick % m as u64) as usize;
        let mut b = DagBuilder::new();
        b.add_nodes(dag.node_count());
        let mut kept = 0usize;
        for (i, e) in dag.edges().enumerate() {
            if i == victim {
                continue;
            }
            let (u, v) = dag.edge_endpoints(e);
            b.add_edge(u, v);
            kept += 1;
        }
        if kept > 0 {
            if let Ok(smaller) = b.build() {
                prop_assert_ne!(canonical_key(&dag), canonical_key(&smaller));
            }
        }
    }

    #[test]
    fn canonical_numbering_is_a_permutation(
        dag in dag_strategy(),
        perm_seed in any::<u64>(),
    ) {
        let form = canonical_form(&dag);
        let n = dag.node_count();
        let mut seen = vec![false; n];
        for &p in &form.perm {
            prop_assert!(p < n);
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        let inv = form.inverse();
        for v in dag.nodes() {
            prop_assert_eq!(inv[form.to_canonical(v)], v);
        }
        // The canonical numbering of a relabeled copy must agree with the
        // original's through the relabeling on WL-discriminated nodes; at
        // minimum both forms share the key (soundness beyond that is the
        // simulator's job — see the canon module docs).
        let perm = random_perm(n, perm_seed);
        let relabeled = permuted(&dag, &perm, perm_seed ^ 0xCAFE);
        prop_assert_eq!(form.key, canonical_form(&relabeled).key);
    }

    #[test]
    fn hex_roundtrips(dag in dag_strategy()) {
        let key = canonical_key(&dag);
        prop_assert_eq!(CanonKey::from_hex(&key.hex()), Some(key));
    }
}

#[test]
fn distinct_families_hash_apart() {
    use pebble_dag::generators;
    let keys = [
        canonical_key(&generators::fft(8).dag),
        canonical_key(&generators::fft(16).dag),
        canonical_key(&generators::binary_tree(3)),
        canonical_key(&generators::pyramid(4).dag),
        canonical_key(&generators::matvec(3).dag),
        canonical_key(&generators::fig1_full().dag),
    ];
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j], "families {i} and {j} collided");
        }
    }
}

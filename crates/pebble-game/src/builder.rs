//! Validated trace builders: construct a pebbling move-by-move against a live
//! simulator.
//!
//! The heuristic schedulers of `pebble-sched` assemble long traces
//! programmatically. Pushing moves through a [`RbpBuilder`] / [`PrbpBuilder`]
//! means every move is checked by the game simulator *at construction time*
//! (a scheduling bug fails at the offending move, with full context, instead
//! of at a later wholesale validation), while the finished trace can still be
//! re-validated from scratch via [`crate::RbpTrace::validate`] /
//! [`crate::PrbpTrace::validate`] — which is what every experiment and
//! benchmark does before reporting a cost.
//!
//! Both builders are generic over a [`MoveSink`]: by default every validated
//! move is collected into a trace, but a streaming consumer (a counting sink,
//! an independent replay certifier, a file writer) can be substituted via
//! [`RbpBuilder::with_sink`] / [`PrbpBuilder::with_sink`] so that arbitrarily
//! long pebblings never materialise a move vector.

use crate::moves::{PrbpMove, RbpMove};
use crate::prbp::{PrbpConfig, PrbpError, PrbpGame};
use crate::rbp::{RbpConfig, RbpError, RbpGame};
use crate::sink::MoveSink;
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::{Dag, NodeId};

/// Builds an [`RbpTrace`] (or feeds any other [`MoveSink`]) against a live
/// [`RbpGame`]: every pushed move is applied (and therefore validated)
/// immediately, then forwarded to the sink.
pub struct RbpBuilder<'a, S: MoveSink<RbpMove> = RbpTrace> {
    game: RbpGame<'a>,
    sink: S,
}

impl<'a> RbpBuilder<'a> {
    /// Start from the initial configuration of `dag` under `config`,
    /// collecting the moves into an [`RbpTrace`].
    pub fn new(dag: &'a Dag, config: RbpConfig) -> Self {
        Self::with_sink(dag, config, RbpTrace::new())
    }
}

impl<'a, S: MoveSink<RbpMove>> RbpBuilder<'a, S> {
    /// Start from the initial configuration of `dag` under `config`, sending
    /// every validated move to `sink` instead of materialising a trace.
    pub fn with_sink(dag: &'a Dag, config: RbpConfig, sink: S) -> Self {
        RbpBuilder {
            game: RbpGame::new(dag, config),
            sink,
        }
    }

    /// The live game state (read access for schedulers).
    pub fn game(&self) -> &RbpGame<'a> {
        &self.game
    }

    /// I/O cost of the moves pushed so far.
    pub fn io_cost(&self) -> usize {
        self.game.io_cost()
    }

    /// Apply `mv` to the live game and forward it to the sink on success.
    pub fn push(&mut self, mv: RbpMove) -> Result<(), RbpError> {
        self.game.apply(mv)?;
        self.sink.record(mv);
        Ok(())
    }

    /// Ensure `v` holds a red pebble by loading it if necessary. Fails if `v`
    /// has no blue pebble or the load would exceed capacity.
    pub fn ensure_red(&mut self, v: NodeId) -> Result<(), RbpError> {
        if !self.game.has_red(v) {
            self.push(RbpMove::Load(v))?;
        }
        Ok(())
    }

    /// Evict `v`: save it first if its value would otherwise be lost while
    /// still needed (no blue copy and some successor uncomputed), then
    /// delete its red pebble. Returns the number of I/Os spent (0 or 1).
    pub fn evict(&mut self, v: NodeId) -> Result<usize, RbpError> {
        let dag = self.game.dag();
        let needed = dag.successors(v).any(|w| !self.game.is_computed(w)) || dag.is_sink(v);
        let mut io = 0;
        if needed && !self.game.has_blue(v) {
            self.push(RbpMove::Save(v))?;
            io = 1;
        }
        self.push(RbpMove::Delete(v))?;
        Ok(io)
    }

    /// Finish: returns the sink (the recorded trace, by default) and the
    /// final game for terminal checks at the call site.
    pub fn finish(self) -> (S, RbpGame<'a>) {
        (self.sink, self.game)
    }
}

/// Builds a [`PrbpTrace`] (or feeds any other [`MoveSink`]) against a live
/// [`PrbpGame`]: every pushed move is applied (and therefore validated)
/// immediately, then forwarded to the sink.
pub struct PrbpBuilder<'a, S: MoveSink<PrbpMove> = PrbpTrace> {
    game: PrbpGame<'a>,
    sink: S,
}

impl<'a> PrbpBuilder<'a> {
    /// Start from the initial configuration of `dag` under `config`,
    /// collecting the moves into a [`PrbpTrace`].
    pub fn new(dag: &'a Dag, config: PrbpConfig) -> Self {
        Self::with_sink(dag, config, PrbpTrace::new())
    }
}

impl<'a, S: MoveSink<PrbpMove>> PrbpBuilder<'a, S> {
    /// Start from the initial configuration of `dag` under `config`, sending
    /// every validated move to `sink` instead of materialising a trace.
    pub fn with_sink(dag: &'a Dag, config: PrbpConfig, sink: S) -> Self {
        PrbpBuilder {
            game: PrbpGame::new(dag, config),
            sink,
        }
    }

    /// The live game state (read access for schedulers).
    pub fn game(&self) -> &PrbpGame<'a> {
        &self.game
    }

    /// I/O cost of the moves pushed so far.
    pub fn io_cost(&self) -> usize {
        self.game.io_cost()
    }

    /// Apply `mv` to the live game and forward it to the sink on success.
    pub fn push(&mut self, mv: PrbpMove) -> Result<(), PrbpError> {
        self.game.apply(mv)?;
        self.sink.record(mv);
        Ok(())
    }

    /// Ensure `v` holds a red pebble by loading it if necessary. Fails if `v`
    /// has no blue pebble or the load would exceed capacity.
    pub fn ensure_red(&mut self, v: NodeId) -> Result<(), PrbpError> {
        if !self.game.pebble_state(v).has_red() {
            self.push(PrbpMove::Load(v))?;
        }
        Ok(())
    }

    /// Evict `v`: a light red pebble is deleted for free; a dark red pebble
    /// is saved first when its value is still needed (unmarked out-edges, or
    /// an unsaved sink) and deleted otherwise. Returns the I/Os spent (0 or
    /// 1).
    pub fn evict(&mut self, v: NodeId) -> Result<usize, PrbpError> {
        use crate::prbp::PebbleState;
        match self.game.pebble_state(v) {
            PebbleState::BlueAndLightRed => {
                self.push(PrbpMove::Delete(v))?;
                Ok(0)
            }
            PebbleState::DarkRed => {
                let dead = self.game.unmarked_out_degree(v) == 0 && !self.game.dag().is_sink(v);
                if dead {
                    self.push(PrbpMove::Delete(v))?;
                    Ok(0)
                } else {
                    self.push(PrbpMove::Save(v))?;
                    self.push(PrbpMove::Delete(v))?;
                    Ok(1)
                }
            }
            _ => Err(PrbpError::DeleteWithoutRed(v)),
        }
    }

    /// Finish: returns the sink (the recorded trace, by default) and the
    /// final game for terminal checks at the call site.
    pub fn finish(self) -> (S, PrbpGame<'a>) {
        (self.sink, self.game)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    /// a -> b -> c chain.
    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn rbp_builder_records_validated_moves() {
        let g = chain3();
        let mut b = RbpBuilder::new(&g, RbpConfig::new(2));
        b.ensure_red(NodeId(0)).unwrap();
        b.ensure_red(NodeId(0)).unwrap(); // idempotent: no second load
        b.push(RbpMove::Compute(NodeId(1))).unwrap();
        assert_eq!(b.evict(NodeId(0)).unwrap(), 0); // dead, free
        b.push(RbpMove::Compute(NodeId(2))).unwrap();
        b.push(RbpMove::Save(NodeId(2))).unwrap();
        let (trace, game) = b.finish();
        assert!(game.is_terminal());
        assert_eq!(trace.validate(&g, RbpConfig::new(2)).unwrap(), 2);
    }

    #[test]
    fn rbp_builder_rejects_illegal_moves_without_recording() {
        let g = chain3();
        let mut b = RbpBuilder::new(&g, RbpConfig::new(2));
        assert!(b.push(RbpMove::Compute(NodeId(2))).is_err());
        assert_eq!(b.finish().0.len(), 0);
    }

    #[test]
    fn rbp_evict_saves_live_values() {
        let g = chain3();
        let mut b = RbpBuilder::new(&g, RbpConfig::new(3));
        b.ensure_red(NodeId(0)).unwrap();
        b.push(RbpMove::Compute(NodeId(1))).unwrap();
        // Node 1 is live (node 2 uncomputed) and has no blue copy: eviction
        // must pay a save.
        assert_eq!(b.evict(NodeId(1)).unwrap(), 1);
        assert!(b.game().has_blue(NodeId(1)));
    }

    #[test]
    fn prbp_builder_full_run() {
        let g = chain3();
        let mut b = PrbpBuilder::new(&g, PrbpConfig::new(2));
        b.ensure_red(NodeId(0)).unwrap();
        b.push(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        assert_eq!(b.evict(NodeId(0)).unwrap(), 0); // light red: free
        b.push(PrbpMove::PartialCompute {
            from: NodeId(1),
            to: NodeId(2),
        })
        .unwrap();
        assert_eq!(b.evict(NodeId(1)).unwrap(), 0); // dark but dead: free
        b.push(PrbpMove::Save(NodeId(2))).unwrap();
        let (trace, game) = b.finish();
        assert!(game.is_terminal());
        assert_eq!(trace.validate(&g, PrbpConfig::new(2)).unwrap(), 2);
    }

    #[test]
    fn prbp_builder_streams_into_a_counting_sink() {
        use crate::sink::CountingSink;
        let g = chain3();
        let mut b = PrbpBuilder::with_sink(&g, PrbpConfig::new(2), CountingSink::new());
        b.ensure_red(NodeId(0)).unwrap();
        b.push(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        b.evict(NodeId(0)).unwrap();
        b.push(PrbpMove::PartialCompute {
            from: NodeId(1),
            to: NodeId(2),
        })
        .unwrap();
        b.push(PrbpMove::Save(NodeId(2))).unwrap();
        let (sink, game) = b.finish();
        assert!(game.is_terminal());
        // The sink saw every validated move, but no trace was materialised.
        assert_eq!(sink.moves, 5);
        assert_eq!(sink.io, game.io_cost());
    }

    #[test]
    fn prbp_evict_saves_live_dark_pebbles() {
        let g = chain3();
        let mut b = PrbpBuilder::new(&g, PrbpConfig::new(3));
        b.ensure_red(NodeId(0)).unwrap();
        b.push(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        // Node 1 is dark red with an unmarked out-edge: save + delete.
        assert_eq!(b.evict(NodeId(1)).unwrap(), 1);
        assert_eq!(b.io_cost(), 2);
    }
}

//! Transition rules (moves) of the two pebble games.

use pebble_dag::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which pebble game a cost or a solver refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// The original red-blue pebble game of Hong and Kung (one-shot).
    Rbp,
    /// The partial-computing red-blue pebble game (one-shot).
    Prbp,
}

impl Model {
    /// Stable lowercase identifier (`"rbp"` / `"prbp"`), used in benchmark
    /// documents and experiment tables.
    pub fn short_name(self) -> &'static str {
        match self {
            Model::Rbp => "rbp",
            Model::Prbp => "prbp",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::Rbp => write!(f, "RBP"),
            Model::Prbp => write!(f, "PRBP"),
        }
    }
}

/// A move in the original red-blue pebble game (Section 1 of the paper),
/// extended with the optional variant moves of Section 8.1 / Appendix B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RbpMove {
    /// Rule 1 (*save*): place a blue pebble on a node holding a red pebble.
    /// Costs 1.
    Save(NodeId),
    /// Rule 2 (*load*): place a red pebble on a node holding a blue pebble.
    /// Costs 1.
    Load(NodeId),
    /// Rule 3 (*compute*): if all in-neighbours of a non-source node hold red
    /// pebbles, place a red pebble on the node. Free.
    Compute(NodeId),
    /// Rule 4 (*delete*): remove a red pebble. Free.
    Delete(NodeId),
    /// Variant move (sliding-pebble model, Appendix B.2): if all in-neighbours
    /// of `node` hold red pebbles, *move* the red pebble from in-neighbour
    /// `from` onto `node`. Free. Only legal when
    /// [`crate::rbp::RbpConfig::allow_sliding`] is set.
    ComputeSlide {
        /// The node being computed.
        node: NodeId,
        /// The in-neighbour whose red pebble slides onto `node`.
        from: NodeId,
    },
}

impl RbpMove {
    /// I/O cost of the move (1 for load/save, 0 otherwise).
    pub fn io_cost(&self) -> usize {
        match self {
            RbpMove::Save(_) | RbpMove::Load(_) => 1,
            _ => 0,
        }
    }

    /// Returns `true` if the move is a compute step (including slides).
    pub fn is_compute(&self) -> bool {
        matches!(self, RbpMove::Compute(_) | RbpMove::ComputeSlide { .. })
    }
}

impl fmt::Display for RbpMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbpMove::Save(v) => write!(f, "save {v}"),
            RbpMove::Load(v) => write!(f, "load {v}"),
            RbpMove::Compute(v) => write!(f, "compute {v}"),
            RbpMove::Delete(v) => write!(f, "delete {v}"),
            RbpMove::ComputeSlide { node, from } => write!(f, "slide {from}->{node}"),
        }
    }
}

/// A move in the partial-computing red-blue pebble game (Section 3 of the
/// paper), extended with the optional `clear` move of Appendix B.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrbpMove {
    /// Rule 1 (*save*): replace a dark red pebble by a blue and a light red
    /// pebble. Costs 1.
    Save(NodeId),
    /// Rule 2 (*load*): place a light red pebble on a node holding a blue
    /// pebble. Costs 1.
    Load(NodeId),
    /// Rule 3 (*partial compute*): aggregate the value of `from` into `to`
    /// along the unmarked edge `(from, to)`; all in-edges of `from` must be
    /// marked, `from` must hold a red pebble and `to` must hold a red pebble
    /// or no pebble at all. Replaces all pebbles on `to` by a dark red pebble
    /// and marks the edge. Free.
    PartialCompute {
        /// The fully-computed input node.
        from: NodeId,
        /// The node whose value is being aggregated.
        to: NodeId,
    },
    /// Rule 4 (*delete*): remove a light red pebble, or a dark red pebble from
    /// a node all of whose out-edges are marked. Free.
    Delete(NodeId),
    /// Variant move (re-computation, Appendix B.1): remove all pebbles from a
    /// non-source, non-sink node and unmark all of its in-edges, so the node
    /// can be recomputed from scratch. Free. Only legal when
    /// [`crate::prbp::PrbpConfig::allow_clear`] is set.
    Clear(NodeId),
}

impl PrbpMove {
    /// I/O cost of the move (1 for load/save, 0 otherwise).
    pub fn io_cost(&self) -> usize {
        match self {
            PrbpMove::Save(_) | PrbpMove::Load(_) => 1,
            _ => 0,
        }
    }

    /// Returns `true` if the move is a partial compute step.
    pub fn is_compute(&self) -> bool {
        matches!(self, PrbpMove::PartialCompute { .. })
    }
}

impl fmt::Display for PrbpMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrbpMove::Save(v) => write!(f, "save {v}"),
            PrbpMove::Load(v) => write!(f, "load {v}"),
            PrbpMove::PartialCompute { from, to } => write!(f, "pc ({from},{to})"),
            PrbpMove::Delete(v) => write!(f, "delete {v}"),
            PrbpMove::Clear(v) => write!(f, "clear {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_costs() {
        assert_eq!(RbpMove::Load(NodeId(0)).io_cost(), 1);
        assert_eq!(RbpMove::Save(NodeId(0)).io_cost(), 1);
        assert_eq!(RbpMove::Compute(NodeId(0)).io_cost(), 0);
        assert_eq!(RbpMove::Delete(NodeId(0)).io_cost(), 0);
        assert_eq!(
            RbpMove::ComputeSlide {
                node: NodeId(1),
                from: NodeId(0)
            }
            .io_cost(),
            0
        );
        assert_eq!(PrbpMove::Load(NodeId(0)).io_cost(), 1);
        assert_eq!(PrbpMove::Save(NodeId(0)).io_cost(), 1);
        assert_eq!(
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1)
            }
            .io_cost(),
            0
        );
        assert_eq!(PrbpMove::Delete(NodeId(0)).io_cost(), 0);
        assert_eq!(PrbpMove::Clear(NodeId(0)).io_cost(), 0);
    }

    #[test]
    fn compute_classification() {
        assert!(RbpMove::Compute(NodeId(0)).is_compute());
        assert!(RbpMove::ComputeSlide {
            node: NodeId(1),
            from: NodeId(0)
        }
        .is_compute());
        assert!(!RbpMove::Load(NodeId(0)).is_compute());
        assert!(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1)
        }
        .is_compute());
        assert!(!PrbpMove::Save(NodeId(0)).is_compute());
    }

    #[test]
    fn display_formats() {
        assert_eq!(RbpMove::Load(NodeId(3)).to_string(), "load 3");
        assert_eq!(
            PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2)
            }
            .to_string(),
            "pc (1,2)"
        );
        assert_eq!(Model::Rbp.to_string(), "RBP");
        assert_eq!(Model::Prbp.to_string(), "PRBP");
        assert_eq!(Model::Rbp.short_name(), "rbp");
        assert_eq!(Model::Prbp.short_name(), "prbp");
    }
}

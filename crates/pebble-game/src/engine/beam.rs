//! Anytime beam search over partial PRBP schedules, inside the engine.
//!
//! A partial schedule is identified with its pebbling configuration in the
//! canonical packed encoding of [`crate::packed`] (the same
//! `[red | blue | marked]` bit planes the exact A* solver interns), so two
//! beam entries that reach the same configuration are merged and only the
//! cheaper survives — a beam-limited version of the solver's transposition
//! table.
//!
//! Search structure: one level per non-source node. Every beam entry proposes
//! its cheapest next nodes (fewest immediate loads among the ready nodes),
//! the pooled proposals are ranked by projected cost, and the best `width`
//! distinct successor configurations are materialised. Width 1 degenerates to
//! an *adaptive* greedy scheduler that picks the globally cheapest next node
//! online; larger widths buy schedule quality for more time and memory.
//!
//! The engine adds the anytime contract on top of the classic level loop:
//! deadline/cancel/budget stops are honoured between macro steps, and an
//! early stop *greedily completes* the best partial schedule so the caller
//! still receives a full, simulator-validated incumbent. With `workers > 1`
//! (and `width > 1`) child materialisation is fanned out across scoped
//! threads; the subsequent rank-order dedup scan is sequential, so the
//! chosen beam — and therefore the answer — is identical to a
//! single-threaded run.

use super::astar::stop_requested;
use super::domain::Domain;
use super::{EngineConfig, HeuristicSpec, Progress, RawOutcome, StopReason};
use crate::exact::{ExactError, SearchStats};
use crate::moves::PrbpMove;
use crate::packed;
use crate::prbp::PrbpConfig;
use pebble_dag::{Dag, NodeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Node pebble states mirrored from the simulator.
const EMPTY: u8 = 0;
const BLUE: u8 = 1;
const LIGHT: u8 = 2;
const DARK: u8 = 3;

/// Move-chain link: the moves appended by one macro step, linked back to the
/// parent partial schedule. Keeps full traces shareable between beam entries
/// without copying (and, now that the link is `Arc`, across the materialiser
/// threads).
struct MoveLink {
    parent: Option<Arc<MoveLink>>,
    moves: Vec<PrbpMove>,
}

/// One partial schedule.
struct Entry {
    /// Pebble state per node.
    state: Vec<u8>,
    /// Unmarked out-edges per node.
    unmarked_out: Vec<u32>,
    /// Predecessors not yet fully computed, per node.
    preds_left: Vec<u32>,
    /// Fully-computed flag per node (sources start `true`).
    completed: Vec<bool>,
    /// Nodes whose predecessors are all computed but which are not themselves
    /// computed; contains every such node at least once (lazily filtered).
    ready: Vec<NodeId>,
    /// The currently red nodes, for `O(r)` eviction scans.
    red_members: Vec<NodeId>,
    io: usize,
    /// Canonical `[red | blue | marked]` packed words, kept incrementally.
    packed: Vec<u64>,
    moves: Option<Arc<MoveLink>>,
}

impl Entry {
    fn initial(dag: &Dag) -> Self {
        let n = dag.node_count();
        let wn = packed::plane_words(n);
        let wm = packed::plane_words(dag.edge_count());
        let mut state = vec![EMPTY; n];
        let mut completed = vec![false; n];
        let mut words = vec![0u64; 2 * wn + wm];
        let mut preds_left = vec![0u32; n];
        for v in dag.nodes() {
            if dag.is_source(v) {
                state[v.index()] = BLUE;
                completed[v.index()] = true;
                packed::set(&mut words[wn..2 * wn], v.index());
            }
            for &(u, _) in dag.in_edges(v) {
                if !dag.is_source(u) {
                    preds_left[v.index()] += 1;
                }
            }
        }
        let ready = dag
            .nodes()
            .filter(|&v| !dag.is_source(v) && preds_left[v.index()] == 0)
            .collect();
        Entry {
            state,
            unmarked_out: dag.nodes().map(|v| dag.out_degree(v) as u32).collect(),
            preds_left,
            completed,
            ready,
            red_members: Vec::new(),
            io: 0,
            packed: words,
            moves: None,
        }
    }

    fn clone_for_child(&self) -> Self {
        Entry {
            state: self.state.clone(),
            unmarked_out: self.unmarked_out.clone(),
            preds_left: self.preds_left.clone(),
            completed: self.completed.clone(),
            ready: self.ready.clone(),
            red_members: self.red_members.clone(),
            io: self.io,
            packed: self.packed.clone(),
            moves: self.moves.clone(),
        }
    }

    /// Place a red pebble on `v` (bookkeeping + packed bit).
    fn make_red(&mut self, wn: usize, v: NodeId) {
        self.red_members.push(v);
        packed::set(&mut self.packed[..wn], v.index());
    }

    /// Remove the red pebble from `v` (bookkeeping + packed bit).
    fn drop_red(&mut self, wn: usize, v: NodeId) {
        let p = self
            .red_members
            .iter()
            .position(|&w| w == v)
            .expect("red member");
        self.red_members.swap_remove(p);
        packed::clear(&mut self.packed[..wn], v.index());
    }

    /// Immediate loads required to complete `v` now: predecessors without a
    /// red pebble.
    fn immediate_loads(&self, dag: &Dag, v: NodeId) -> usize {
        dag.in_edges(v)
            .iter()
            .filter(|&&(u, _)| self.state[u.index()] < LIGHT)
            .count()
    }

    /// Evict one non-pinned red pebble; returns the I/O spent. Preference:
    /// light red pebbles (free), then dark values (save first) — within a
    /// tier, fewest unmarked out-edges first, then smallest id. Every dark
    /// candidate is a *completed* value: the only dark-but-uncompleted node
    /// is the accumulator currently inside [`Entry::complete`], and that one
    /// is always pinned.
    fn evict_one(&mut self, wn: usize, moves: &mut Vec<PrbpMove>, pin_a: NodeId, pin_b: NodeId) {
        let mut best: Option<((u8, u32, usize), NodeId)> = None;
        for &v in &self.red_members {
            if v == pin_a || v == pin_b {
                continue;
            }
            let tier = match self.state[v.index()] {
                LIGHT => 0u8,
                _ => {
                    debug_assert!(
                        self.completed[v.index()],
                        "only the pinned accumulator can be dark and uncompleted"
                    );
                    1
                }
            };
            let key = (tier, self.unmarked_out[v.index()], v.index());
            if best.map_or(true, |(k, _)| key < k) {
                best = Some((key, v));
            }
        }
        let (_, v) = best.expect("r >= 2 guarantees an evictable pebble");
        let vi = v.index();
        if self.state[vi] == DARK {
            moves.push(PrbpMove::Save(v));
            self.io += 1;
            packed::set(&mut self.packed[wn..2 * wn], vi);
        }
        moves.push(PrbpMove::Delete(v));
        self.state[vi] = BLUE;
        self.drop_red(wn, v);
    }

    /// Complete node `v`: aggregate all of its in-edges (loading inputs and
    /// evicting on demand), then save-and-drop if it is a sink. `v` must be
    /// ready.
    fn complete(&mut self, dag: &Dag, r: usize, wn: usize, v: NodeId) {
        debug_assert!(!self.completed[v.index()] && self.preds_left[v.index()] == 0);
        let mut moves = Vec::new();
        for &(u, e) in dag.in_edges(v) {
            let ui = u.index();
            let vi = v.index();
            let mut needed = usize::from(self.state[ui] < LIGHT);
            needed += usize::from(self.state[vi] < LIGHT);
            while self.red_members.len() + needed > r {
                self.evict_one(wn, &mut moves, u, v);
            }
            if self.state[ui] < LIGHT {
                debug_assert_eq!(self.state[ui], BLUE, "computed value lost");
                moves.push(PrbpMove::Load(u));
                self.state[ui] = LIGHT;
                self.io += 1;
                self.make_red(wn, u);
            }
            if self.state[vi] < LIGHT {
                debug_assert_eq!(self.state[vi], EMPTY, "uncomputed node has blue");
                self.make_red(wn, v);
            }
            moves.push(PrbpMove::PartialCompute { from: u, to: v });
            self.state[vi] = DARK;
            packed::set(&mut self.packed[2 * wn..], e.index());
            self.unmarked_out[ui] -= 1;
            // A dead value (all out-edges marked, not a sink) frees its slot
            // at no cost; dropping it eagerly keeps pressure low.
            if self.unmarked_out[ui] == 0 && !dag.is_sink(u) {
                moves.push(PrbpMove::Delete(u));
                self.state[ui] = if self.state[ui] == LIGHT { BLUE } else { EMPTY };
                self.drop_red(wn, u);
            }
        }
        self.completed[v.index()] = true;
        for &(w, _) in dag.out_edges(v) {
            self.preds_left[w.index()] -= 1;
            if self.preds_left[w.index()] == 0 {
                self.ready.push(w);
            }
        }
        if dag.is_sink(v) {
            moves.push(PrbpMove::Save(v));
            self.io += 1;
            moves.push(PrbpMove::Delete(v));
            self.state[v.index()] = BLUE;
            packed::set(&mut self.packed[wn..2 * wn], v.index());
            self.drop_red(wn, v);
        }
        self.moves = Some(Arc::new(MoveLink {
            parent: self.moves.take(),
            moves,
        }));
    }

    /// Greedily complete the remaining levels (cheapest ready node first) so
    /// an early-stopped beam still hands back a full schedule.
    fn complete_greedily(&mut self, dag: &Dag, r: usize, wn: usize) {
        loop {
            self.ready.retain(|&v| !self.completed[v.index()]);
            let Some(&(_, v)) = self
                .ready
                .iter()
                .map(|&v| (self.immediate_loads(dag, v), v))
                .collect::<Vec<_>>()
                .iter()
                .min_by_key(|&&(c, v)| (c, v.index()))
            else {
                return;
            };
            self.complete(dag, r, wn, v);
        }
    }

    fn all_moves(&self) -> Vec<PrbpMove> {
        let mut chunks = Vec::new();
        let mut link = self.moves.clone();
        while let Some(l) = link {
            chunks.push(l.moves.clone());
            link = l.parent.clone();
        }
        chunks.reverse();
        chunks.concat()
    }
}

/// The engine's beam-mode PRBP solve. Requires `r ≥ 2` (returns
/// [`ExactError::Unsolvable`] below) and the standard delete semantics
/// (the emitted macro steps use `Save`/`Delete`, so `no_delete` configs are
/// unsupported). Deterministic at every worker count: ranking ties break by
/// node id and beam insertion order, and parallel materialisation feeds a
/// sequential rank-order dedup scan.
pub(crate) fn solve_beam(
    dag: &Dag,
    config: PrbpConfig,
    domain: &super::PrbpDomain<'_>,
    engine: &EngineConfig,
    width: usize,
    heuristic: HeuristicSpec<'_>,
    progress: Option<&Progress<PrbpMove>>,
) -> Result<RawOutcome<PrbpMove>, ExactError> {
    assert!(
        !config.no_delete,
        "beam search emits Save/Delete macro steps; no_delete configs are unsupported"
    );
    let r = config.r;
    if r < 2 {
        return Err(ExactError::Unsolvable);
    }
    let width = width.max(1);
    let branch = match engine.branch {
        0 => 4,
        b => b,
    };
    let start = domain.start_words();
    let h0 = match heuristic {
        HeuristicSpec::Single(h) => domain.h(h, &start),
        HeuristicSpec::PerWorker(make) => domain.h(make().as_ref(), &start),
    };
    if let Some(p) = progress {
        p.raise_bound(h0);
    }
    let deadline_at = engine.deadline.map(|d| Instant::now() + d);
    let workers = engine.effective_workers();

    let wn = packed::plane_words(dag.node_count());
    let levels = dag.nodes().filter(|&v| !dag.is_source(v)).count();
    let mut stats = SearchStats::default();
    let mut stopped: Option<StopReason> = None;

    let mut beam = vec![Entry::initial(dag)];
    'levels: for _ in 0..levels {
        if let Some(reason) = stop_requested(deadline_at, engine) {
            stopped = Some(reason);
            break 'levels;
        }
        if let Some(budget) = engine.node_budget {
            if stats.distinct > budget {
                stopped = Some(StopReason::Budget);
                break 'levels;
            }
        }
        // Pool of proposals: (projected io, entry index, node).
        let mut proposals: Vec<(usize, usize, NodeId)> = Vec::new();
        for (ei, entry) in beam.iter_mut().enumerate() {
            // Compact the lazily-filtered ready list in place.
            entry.ready.retain(|&v| !entry.completed[v.index()]);
            let mut scored: Vec<(usize, NodeId)> = entry
                .ready
                .iter()
                .map(|&v| (entry.immediate_loads(dag, v), v))
                .collect();
            scored.sort_unstable_by_key(|&(c, v)| (c, v.index()));
            for &(c, v) in scored.iter().take(branch) {
                proposals.push((entry.io + c, ei, v));
            }
        }
        proposals.sort_unstable_by_key(|&(g, ei, v)| (g, v.index(), ei));
        stats.generated += proposals.len();

        // Materialise the best distinct successor configurations. The
        // parallel path builds every proposed child up front across scoped
        // threads, then replays the exact sequential dedup scan, so the
        // surviving beam is identical to a one-worker run.
        let mut next: Vec<Entry> = Vec::with_capacity(width);
        let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
        if workers > 1 && width > 1 && proposals.len() > 1 {
            let mut children: Vec<Option<Entry>> = Vec::new();
            children.resize_with(proposals.len(), || None);
            let chunk = proposals.len().div_ceil(workers);
            let beam_ref = &beam;
            std::thread::scope(|scope| {
                for (props, outs) in proposals.chunks(chunk).zip(children.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (&(_, ei, v), out) in props.iter().zip(outs.iter_mut()) {
                            let mut child = beam_ref[ei].clone_for_child();
                            child.complete(dag, r, wn, v);
                            *out = Some(child);
                        }
                    });
                }
            });
            for child in children.into_iter().map(|c| c.expect("materialised")) {
                if next.len() >= width {
                    break;
                }
                stats.expanded += 1;
                stats.distinct += 1;
                match seen.get(&child.packed) {
                    Some(&slot) => {
                        if child.io < next[slot].io {
                            next[slot] = child;
                        }
                    }
                    None => {
                        seen.insert(child.packed.clone(), next.len());
                        next.push(child);
                    }
                }
            }
        } else {
            for &(_, ei, v) in &proposals {
                if next.len() >= width {
                    break;
                }
                if let Some(reason) = stop_requested(deadline_at, engine) {
                    stopped = Some(reason);
                    if next.is_empty() {
                        // No child of this level survives yet; fall back to
                        // the parent beam for greedy completion.
                        break 'levels;
                    }
                    beam = next;
                    break 'levels;
                }
                let mut child = if width == 1 {
                    // Width-1 fast path: only one child is ever materialised,
                    // so advance the single entry without cloning its state.
                    debug_assert_eq!(ei, 0);
                    beam.pop().expect("single beam entry")
                } else {
                    beam[ei].clone_for_child()
                };
                child.complete(dag, r, wn, v);
                stats.expanded += 1;
                stats.distinct += 1;
                match seen.get(&child.packed) {
                    Some(&slot) => {
                        if child.io < next[slot].io {
                            next[slot] = child;
                        }
                    }
                    None => {
                        seen.insert(child.packed.clone(), next.len());
                        next.push(child);
                    }
                }
            }
        }
        debug_assert!(!next.is_empty(), "every level has a ready node");
        beam = next;
    }

    if stopped.is_some() && engine.fail_fast {
        // The caller asked for a genuine incumbent or nothing: do not
        // synthesise one greedily on an early stop.
        return Err(ExactError::Interrupted {
            explored: stats.distinct,
        });
    }
    let best = beam
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.io)
        .map(|(i, _)| i)
        .expect("non-empty beam");
    let mut best = beam.swap_remove(best);
    if stopped.is_some() {
        // Early stop: finish the best partial schedule greedily so the
        // incumbent handed back is a complete pebbling.
        best.complete_greedily(dag, r, wn);
    }
    let moves = best.all_moves();
    let cost = domain
        .validate_moves(&moves)
        .expect("beam schedules replay as legal pebblings");
    debug_assert_eq!(cost, best.io, "incremental io diverged from simulator");
    if let Some(p) = progress {
        p.publish(cost, moves.clone());
        if stopped.is_none() && cost == h0 {
            p.raise_bound(cost);
        }
    }
    Ok(RawOutcome {
        cost,
        moves,
        bound: h0,
        proven: cost == h0,
        stats,
        stop: stopped.unwrap_or(StopReason::Completed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpGame;
    use pebble_dag::generators::fft;

    #[test]
    fn incremental_packed_words_match_the_game_encoding() {
        // The beam maintains its packed `[red | blue | marked]` words
        // incrementally; they must stay equal to what the simulator's
        // canonical `PrbpGame::packed_words` produces for the same move
        // sequence — that equality is what makes the dedup keys meaningful
        // (and interchangeable with the exact solver's encoding).
        let dag = fft(8).dag;
        let r = 4;
        let wn = packed::plane_words(dag.node_count());
        let mut entry = Entry::initial(&dag);
        let mut game = PrbpGame::new(&dag, PrbpConfig::new(r));
        assert_eq!(entry.packed, game.packed_words());
        let order: Vec<NodeId> = pebble_dag::topo::topological_order(&dag)
            .into_iter()
            .filter(|&v| !dag.is_source(v))
            .collect();
        for v in order {
            entry.complete(&dag, r, wn, v);
            // Replay exactly the moves this macro step appended.
            let link = entry.moves.as_ref().expect("macro appended moves");
            game.run(link.moves.iter().copied()).expect("legal moves");
            assert_eq!(entry.packed, game.packed_words(), "diverged at {v:?}");
        }
        assert!(game.is_terminal());
    }

    #[test]
    fn greedy_completion_finishes_a_partial_schedule() {
        let dag = fft(8).dag;
        let wn = packed::plane_words(dag.node_count());
        let mut entry = Entry::initial(&dag);
        // Complete one level by hand, then let the greedy fallback finish.
        let first = pebble_dag::topo::topological_order(&dag)
            .into_iter()
            .find(|&v| !dag.is_source(v))
            .expect("non-source node");
        entry.complete(&dag, 4, wn, first);
        entry.complete_greedily(&dag, 4, wn);
        let moves = entry.all_moves();
        let mut game = PrbpGame::new(&dag, PrbpConfig::new(4));
        game.run(moves.iter().copied()).expect("legal moves");
        assert!(game.is_terminal());
        assert_eq!(game.io_cost(), entry.io);
    }
}

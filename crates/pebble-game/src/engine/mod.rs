//! The unified anytime search engine behind every exact and beam solver.
//!
//! One search core subsumes the exact A* solvers ([`crate::exact`]), the
//! beam scheduler of `pebble-sched`, and the exact phase of its compose
//! pipeline. The engine is
//!
//! * **anytime** — it keeps a *validated incumbent*: the best complete
//!   pebbling found so far, always replayed through the game simulator
//!   before it is accepted, published together with an admissible lower
//!   bound through a [`Progress`] channel;
//! * **cancellable** — a [`CancelToken`], a wall-clock deadline and a
//!   distinct-state budget are checked cooperatively every expansion batch
//!   (and, inside a single large expansion, every few thousand generated
//!   successors), so a stop request is honoured within one batch;
//! * **parallel** — with `workers > 1` the A* runs HDA*-style hashed work
//!   distribution across scoped threads: successor states are routed to an
//!   owning worker by state hash, the transposition table is a mutex-striped
//!   shared map keyed by `Arc<[u64]>` packed states, and termination is
//!   detected by a global pending-work counter.
//!
//! ## Invariants
//!
//! * **Admissibility.** The published `bound` never exceeds the true
//!   optimum: it is the heuristic value of the initial state (raised to the
//!   proven optimum on completion), and heuristics implement the admissible
//!   [`LowerBound`] contract.
//! * **Validated incumbents.** Every incumbent cost reported in an
//!   [`EngineOutcome`] or published through [`Progress`] is the replayed
//!   simulator cost of a concrete move sequence — never a heap `g`-value
//!   taken on faith. Incumbent costs are monotone non-increasing over the
//!   lifetime of a solve.
//! * **Determinism of answer.** A completed solve returns the unique
//!   optimal cost no matter how many workers ran; only the search-effort
//!   statistics vary. `workers = 1` runs the exact sequential loop the
//!   legacy solvers used, so its statistics (including
//!   [`SearchStats::distinct`]) are reproducible.
//!
//! Seeding a solve with a known-valid schedule turns A* into a
//! branch-and-bound: successors with `f > incumbent` are pruned (sound for
//! admissible heuristics since `f = g + h` lower-bounds every completion
//! through that state), and exhausting the pruned space proves the
//! incumbent optimal.

mod astar;
mod beam;
mod domain;
mod obs;
mod table;

pub(crate) use domain::{prbp_start_words, rbp_start_words, Domain, PrbpDomain, RbpDomain};

use crate::exact::heuristic::LowerBound;
use crate::exact::{ExactError, SearchStats};
use crate::moves::{PrbpMove, RbpMove};
use crate::prbp::PrbpConfig;
use crate::rbp::RbpConfig;
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::Dag;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cooperative cancellation handle shared between a solve and its caller.
///
/// Cloning the token shares the underlying flag; [`CancelToken::cancel`] from
/// any clone stops every solve the token was passed to within one expansion
/// batch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Knobs of one engine solve.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Wall-clock budget for the solve, measured from entry. `None` runs to
    /// completion (or until another stop condition fires).
    pub deadline: Option<Duration>,
    /// Maximum number of *distinct* states interned before the solve stops
    /// (the anytime analogue of [`crate::exact::SearchConfig::max_states`]).
    pub node_budget: Option<usize>,
    /// Cooperative cancellation token; checked every expansion batch.
    pub cancel: Option<CancelToken>,
    /// Beam width: `None` runs exact A*, `Some(w)` runs the beam search
    /// (PRBP only; ignored by [`solve_rbp`]).
    pub width: Option<usize>,
    /// Candidate next-nodes proposed per beam entry per level (beam only;
    /// `0` means the default of 4).
    pub branch: usize,
    /// Worker threads inside this one solve. `0` uses the available hardware
    /// parallelism; the default of `Default::default()` is 1 (sequential,
    /// deterministic statistics).
    pub workers: usize,
    /// Fail fast on an early stop instead of synthesising an incumbent: a
    /// beam solve interrupted before its last level normally *greedily
    /// completes* the best partial schedule so the caller still gets a full
    /// pebbling; with `fail_fast` it returns
    /// [`ExactError::Interrupted`] instead. Lets deadline-driven callers
    /// distinguish "the budget produced no incumbent" from a genuine
    /// (possibly greedy-quality) answer. Exact A* mode is unaffected — it
    /// already reports `Interrupted` when stopped without an incumbent.
    pub fail_fast: bool,
}

impl EngineConfig {
    /// A sequential configuration with the given deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        EngineConfig {
            deadline: Some(deadline),
            ..Default::default()
        }
    }

    /// A configuration with the given worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }

    pub(crate) fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            w => w,
        }
    }
}

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The search ran to completion: the returned cost is the proven
    /// optimum (exact mode) or the finished beam's best schedule.
    Completed,
    /// The wall-clock deadline fired first.
    Deadline,
    /// The distinct-state budget was exhausted.
    Budget,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl StopReason {
    /// Short stable identifier (e.g. for JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::Deadline => "deadline",
            StopReason::Budget => "budget",
            StopReason::Cancelled => "cancelled",
        }
    }
}

/// The result of an engine solve: the best validated schedule it holds, the
/// admissible bound that certifies it, and how hard the search worked.
#[derive(Debug, Clone)]
pub struct EngineOutcome<T> {
    /// Simulator-validated cost of `trace`.
    pub cost: usize,
    /// The best complete, validated pebbling found.
    pub trace: T,
    /// An admissible lower bound on the optimal cost (the initial-state
    /// heuristic value, raised to `cost` when optimality is proven).
    pub bound: usize,
    /// `true` iff `cost` is the proven optimum.
    pub proven_optimal: bool,
    /// Search-effort counters (aggregated across workers).
    pub stats: SearchStats,
    /// Why the solve returned.
    pub stop: StopReason,
}

/// How the engine obtains heuristic instances.
///
/// The partition-based heuristics of `pebble-bounds` keep interior caches
/// (`RefCell`), so a single instance cannot be shared across workers; the
/// parallel path therefore takes a factory producing one instance per worker.
pub enum HeuristicSpec<'a> {
    /// One heuristic instance. Restricts the solve to a single worker.
    Single(&'a dyn LowerBound),
    /// A factory called once per worker.
    PerWorker(&'a (dyn Fn() -> Box<dyn LowerBound> + Sync)),
}

/// The incumbent channel: a shared cell through which a running solve
/// publishes its best validated schedule and admissible bound, readable from
/// any thread at any moment.
///
/// Published costs are monotone non-increasing and bounds monotone
/// non-decreasing; every published move sequence has been replayed through
/// the game simulator at exactly the published cost.
pub struct Progress<M> {
    inner: Arc<ProgressInner<M>>,
}

struct ProgressInner<M> {
    /// `usize::MAX` until the first incumbent.
    cost: AtomicUsize,
    bound: AtomicUsize,
    best: Mutex<Option<(usize, Vec<M>)>>,
    /// Every accepted incumbent and bound improvement, in publication order.
    history: Mutex<Vec<ProgressRecord>>,
}

/// One entry of a [`Progress`] channel's convergence timeline: an accepted
/// incumbent or a raised bound, stamped with the `pebble-obs` monotonic
/// trace clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressRecord {
    /// A new best validated schedule was published.
    Incumbent {
        /// Microseconds since the process trace epoch.
        t_us: u64,
        /// The validated incumbent cost.
        cost: usize,
    },
    /// The admissible lower bound rose.
    Bound {
        /// Microseconds since the process trace epoch.
        t_us: u64,
        /// The new bound.
        value: usize,
    },
}

impl<M> Clone for Progress<M> {
    fn clone(&self) -> Self {
        Progress {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> Default for Progress<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Progress<M> {
    /// An empty channel: no incumbent, bound 0.
    pub fn new() -> Self {
        Progress {
            inner: Arc::new(ProgressInner {
                cost: AtomicUsize::new(usize::MAX),
                bound: AtomicUsize::new(0),
                best: Mutex::new(None),
                history: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The current incumbent cost, if any incumbent has been published.
    pub fn cost(&self) -> Option<usize> {
        match self.inner.cost.load(Ordering::Acquire) {
            usize::MAX => None,
            c => Some(c),
        }
    }

    /// The best admissible lower bound published so far (0 until a solve
    /// evaluates its initial state).
    pub fn bound(&self) -> usize {
        self.inner.bound.load(Ordering::Acquire)
    }

    /// Publish a validated incumbent; ignored unless it improves on the
    /// published cost (which keeps the published cost monotone).
    pub(crate) fn publish(&self, cost: usize, moves: Vec<M>) {
        let mut best = self.inner.best.lock().expect("progress poisoned");
        if best.as_ref().map_or(true, |&(c, _)| cost < c) {
            *best = Some((cost, moves));
            self.inner.cost.store(cost, Ordering::Release);
            let t_us = pebble_obs::trace::now_us();
            self.inner
                .history
                .lock()
                .expect("progress poisoned")
                .push(ProgressRecord::Incumbent { t_us, cost });
            pebble_obs::trace::emit(pebble_obs::trace::TraceEvent::Incumbent { cost: cost as u64 });
        }
    }

    /// Raise the published admissible bound.
    pub(crate) fn raise_bound(&self, bound: usize) {
        let prev = self.inner.bound.fetch_max(bound, Ordering::AcqRel);
        if bound > prev {
            let t_us = pebble_obs::trace::now_us();
            self.inner
                .history
                .lock()
                .expect("progress poisoned")
                .push(ProgressRecord::Bound { t_us, value: bound });
            pebble_obs::trace::emit(pebble_obs::trace::TraceEvent::Bound {
                value: bound as u64,
            });
        }
    }

    /// The full convergence timeline published so far: every accepted
    /// incumbent and every bound improvement, in order.
    pub fn history(&self) -> Vec<ProgressRecord> {
        self.inner
            .history
            .lock()
            .expect("progress poisoned")
            .clone()
    }
}

impl<M: Clone> Progress<M> {
    /// A consistent snapshot of the incumbent: `(validated cost, moves)`.
    pub fn snapshot(&self) -> Option<(usize, Vec<M>)> {
        self.inner.best.lock().expect("progress poisoned").clone()
    }
}

/// Solve `dag` in the one-shot RBP model through the engine.
///
/// `seed`, when given, must be a valid pebbling of `dag` under `config`; it
/// becomes the initial incumbent and its cost an upper bound that prunes the
/// search (`f > incumbent`). The returned outcome always carries a validated
/// trace; with no stop condition configured the call behaves exactly like
/// the legacy A* solver. `engine.width` is ignored (the beam search is
/// PRBP-only).
pub fn solve_rbp(
    dag: &Dag,
    config: RbpConfig,
    engine: &EngineConfig,
    heuristic: HeuristicSpec<'_>,
    seed: Option<&RbpTrace>,
    progress: Option<&Progress<RbpMove>>,
) -> Result<EngineOutcome<RbpTrace>, ExactError> {
    let domain = RbpDomain::new(dag, config);
    let raw = run_astar(
        &domain,
        engine,
        heuristic,
        seed.map(|t| t.moves.clone()),
        progress,
    )?;
    Ok(finish(&domain, raw))
}

/// Solve `dag` in the PRBP model through the engine.
///
/// With `engine.width = Some(w)` this runs the anytime beam search (one
/// level per non-source node, macro-step node completions, packed-state
/// dedup) instead of exact A*; the outcome is then proven optimal only when
/// its cost meets the admissible bound. See [`solve_rbp`] for the seeding
/// and anytime contract.
pub fn solve_prbp(
    dag: &Dag,
    config: PrbpConfig,
    engine: &EngineConfig,
    heuristic: HeuristicSpec<'_>,
    seed: Option<&PrbpTrace>,
    progress: Option<&Progress<PrbpMove>>,
) -> Result<EngineOutcome<PrbpTrace>, ExactError> {
    let domain = PrbpDomain::new(dag, config);
    if let Some(width) = engine.width {
        let raw = beam::solve_beam(dag, config, &domain, engine, width, heuristic, progress)?;
        // The beam aggregates its statistics centrally, so it reports as
        // worker 0 regardless of how many threads scored proposals.
        obs::record_worker(0, raw.stats.expanded, raw.stats.generated);
        obs::record_solve(raw.stats.distinct, raw.stop);
        return Ok(finish(&domain, raw));
    }
    let raw = run_astar(
        &domain,
        engine,
        heuristic,
        seed.map(|t| t.moves.clone()),
        progress,
    )?;
    Ok(finish(&domain, raw))
}

/// Internal solver result before the moves become a model-specific trace.
pub(crate) struct RawOutcome<M> {
    pub cost: usize,
    pub moves: Vec<M>,
    pub bound: usize,
    pub proven: bool,
    pub stats: SearchStats,
    pub stop: StopReason,
}

fn finish<D: Domain>(domain: &D, raw: RawOutcome<D::Move>) -> EngineOutcome<D::Trace> {
    EngineOutcome {
        cost: raw.cost,
        trace: domain.make_trace(raw.moves),
        bound: raw.bound,
        proven_optimal: raw.proven,
        stats: raw.stats,
        stop: raw.stop,
    }
}

fn run_astar<D: Domain>(
    domain: &D,
    engine: &EngineConfig,
    heuristic: HeuristicSpec<'_>,
    seed_moves: Option<Vec<D::Move>>,
    progress: Option<&Progress<D::Move>>,
) -> Result<RawOutcome<D::Move>, ExactError> {
    if !domain.feasible() {
        return Err(ExactError::Unsolvable);
    }
    // Seeds are re-validated through the simulator so the incumbent
    // invariant holds from the first instant; an invalid seed is dropped.
    let seed = seed_moves.and_then(|m| {
        let cost = domain.validate_moves(&m)?;
        Some((cost, m))
    });
    if let (Some(p), Some((cost, moves))) = (progress, &seed) {
        p.publish(*cost, moves.clone());
    }
    let deadline_at = engine.deadline.map(|d| Instant::now() + d);
    let workers = match heuristic {
        // A single (possibly stateful, non-`Sync`) heuristic instance can
        // only drive the sequential loop.
        HeuristicSpec::Single(_) => 1,
        HeuristicSpec::PerWorker(_) => engine.effective_workers(),
    };
    let raw = if workers <= 1 {
        let owned;
        let h: &dyn LowerBound = match heuristic {
            HeuristicSpec::Single(h) => h,
            HeuristicSpec::PerWorker(make) => {
                owned = make();
                owned.as_ref()
            }
        };
        let raw = astar::solve_seq(domain, engine, deadline_at, h, seed, progress)?;
        obs::record_worker(0, raw.stats.expanded, raw.stats.generated);
        raw
    } else {
        let make = match heuristic {
            HeuristicSpec::PerWorker(make) => make,
            HeuristicSpec::Single(_) => unreachable!("single heuristic forces workers = 1"),
        };
        // The parallel workers fold their own per-worker counts into the
        // sharded counters at loop exit.
        astar::solve_par(domain, engine, deadline_at, workers, make, seed, progress)?
    };
    obs::record_solve(raw.stats.distinct, raw.stop);
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::LoadCountHeuristic;
    use pebble_dag::generators::fig1_full;
    use pebble_dag::DagBuilder;

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn progress_is_monotone() {
        let p: Progress<u8> = Progress::new();
        assert_eq!(p.cost(), None);
        p.publish(10, vec![1]);
        p.publish(12, vec![2]); // worse: ignored
        assert_eq!(p.cost(), Some(10));
        assert_eq!(p.snapshot(), Some((10, vec![1])));
        p.publish(7, vec![3]);
        assert_eq!(p.cost(), Some(7));
        p.raise_bound(3);
        p.raise_bound(2);
        assert_eq!(p.bound(), 3);
        // The history records exactly the accepted improvements, in order.
        let costs: Vec<(bool, usize)> = p
            .history()
            .iter()
            .map(|r| match *r {
                ProgressRecord::Incumbent { cost, .. } => (true, cost),
                ProgressRecord::Bound { value, .. } => (false, value),
            })
            .collect();
        assert_eq!(costs, vec![(true, 10), (true, 7), (false, 3)]);
    }

    #[test]
    fn stop_reason_strings_are_stable() {
        assert_eq!(StopReason::Completed.as_str(), "completed");
        assert_eq!(StopReason::Deadline.as_str(), "deadline");
        assert_eq!(StopReason::Budget.as_str(), "budget");
        assert_eq!(StopReason::Cancelled.as_str(), "cancelled");
    }

    #[test]
    fn engine_matches_legacy_on_fig1() {
        let f = fig1_full();
        let out = solve_prbp(
            &f.dag,
            PrbpConfig::new(4),
            &EngineConfig::default(),
            HeuristicSpec::Single(&LoadCountHeuristic),
            None,
            None,
        )
        .unwrap();
        assert_eq!(out.cost, 2);
        assert!(out.proven_optimal);
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(
            out.trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(),
            out.cost
        );
    }

    #[test]
    fn seeded_solve_proves_the_seed_or_beats_it() {
        let f = fig1_full();
        let (cost, trace) = {
            let out = solve_prbp(
                &f.dag,
                PrbpConfig::new(4),
                &EngineConfig::default(),
                HeuristicSpec::Single(&LoadCountHeuristic),
                None,
                None,
            )
            .unwrap();
            (out.cost, out.trace)
        };
        let seeded = solve_prbp(
            &f.dag,
            PrbpConfig::new(4),
            &EngineConfig::default(),
            HeuristicSpec::Single(&LoadCountHeuristic),
            Some(&trace),
            None,
        )
        .unwrap();
        assert!(seeded.proven_optimal);
        assert_eq!(seeded.cost, cost);
    }

    #[test]
    fn tiny_chain_solves_at_any_worker_count() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1]);
        let g = b.build().unwrap();
        for workers in [1usize, 4] {
            let make = || Box::new(LoadCountHeuristic) as Box<dyn LowerBound>;
            let out = solve_prbp(
                &g,
                PrbpConfig::new(2),
                &EngineConfig::with_workers(workers),
                HeuristicSpec::PerWorker(&make),
                None,
                None,
            )
            .unwrap();
            // Load the source, aggregate, save the sink: 2 I/Os.
            assert_eq!(out.cost, 2);
            assert!(out.proven_optimal);
            assert_eq!(out.stop, StopReason::Completed);
        }
    }
}

//! The two A* loops of the engine: the sequential loop (bit-for-bit the
//! legacy solver behaviour at `workers = 1`) and the HDA*-style parallel
//! loop (hashed work distribution over a mutex-striped shared table).
//!
//! ## Soundness of the incumbent pruning
//!
//! Both loops prune a state with `f = g + h > incumbent` once an incumbent
//! (a validated complete pebbling) exists. Since `h` is admissible, `f`
//! lower-bounds the cost of every completion through the state, so no
//! strictly-better-than-incumbent solution is lost; keeping `f = incumbent`
//! states guarantees the search still *reaches* an optimal goal whenever
//! the incumbent is optimal, which is what makes the final parent-chain
//! reconstruction consistent at quiescence.
//!
//! ## Parallel termination
//!
//! Every enqueued heap entry is counted in a global `pending` counter
//! (incremented before the entry is sent to its owning worker, decremented
//! after the owner finished processing it). A worker observing an empty
//! local heap *and* `pending == 0` knows the whole search is quiescent: any
//! active worker still expanding holds its own popped entry un-decremented.

use super::domain::Domain;
use super::table::{hash_words, SharedTable, Transposition};
use super::{EngineConfig, Progress, RawOutcome, StopReason};
use crate::exact::heuristic::LowerBound;
use crate::exact::{ExactError, SearchStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicIsize, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pop-count between cooperative stop checks.
const BATCH: usize = 64;

/// Target bytes copied between mid-expansion stop checks; the per-successor
/// check interval scales inversely with the state size so huge states still
/// honour deadlines promptly.
const GEN_CHECK_WORDS: usize = 1 << 18;

fn gen_check_interval(words_len: usize) -> usize {
    (GEN_CHECK_WORDS / words_len.max(1)).max(16)
}

pub(super) fn stop_requested(
    deadline_at: Option<Instant>,
    engine: &EngineConfig,
) -> Option<StopReason> {
    if engine.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        return Some(StopReason::Cancelled);
    }
    if deadline_at.is_some_and(|d| Instant::now() >= d) {
        return Some(StopReason::Deadline);
    }
    None
}

/// The sequential A* loop. With no seed, progress channel, deadline or
/// cancel token this is exactly the legacy solver loop: same expansion
/// order, same interning order, same statistics.
pub(crate) fn solve_seq<D: Domain>(
    domain: &D,
    engine: &EngineConfig,
    deadline_at: Option<Instant>,
    heuristic: &dyn LowerBound,
    seed: Option<(usize, Vec<D::Move>)>,
    progress: Option<&Progress<D::Move>>,
) -> Result<RawOutcome<D::Move>, ExactError> {
    let start = domain.start_words();
    let h0 = domain.h(heuristic, &start);
    if let Some(p) = progress {
        p.raise_bound(h0);
    }
    // Anytime bookkeeping (incumbent tracking + pruning) only switches on
    // when the caller opted into any anytime feature, so the plain wrapper
    // path stays bit-for-bit the legacy search.
    let anytime =
        seed.is_some() || progress.is_some() || deadline_at.is_some() || engine.cancel.is_some();
    let mut incumbent: Option<(usize, Vec<D::Move>)> = seed;
    let mut incumbent_cost = incumbent.as_ref().map_or(usize::MAX, |&(c, _)| c);

    let mut tt: Transposition<D::Move> = Transposition::new(&start);
    let mut heap: BinaryHeap<Reverse<(usize, usize, u32)>> = BinaryHeap::new();
    heap.push(Reverse((h0, 0, 0)));

    let mut stats = SearchStats::default();
    let mut scratch: Vec<u64> = vec![0; start.len()];
    let gen_check = gen_check_interval(start.len());
    let checks = deadline_at.is_some() || engine.cancel.is_some();
    let mut pops = 0usize;
    let mut stopped: Option<StopReason> = None;

    'search: while let Some(Reverse((f, g, idx))) = heap.pop() {
        if g > tt.slot(idx).g {
            continue;
        }
        if anytime && f > incumbent_cost {
            continue;
        }
        let cur = Arc::clone(&tt.slot(idx).key);
        if domain.is_goal(&cur) {
            let moves = tt.reconstruct_moves(idx);
            stats.distinct = tt.len();
            if let Some(p) = progress {
                p.publish(g, moves.clone());
                p.raise_bound(g);
            }
            return Ok(RawOutcome {
                cost: g,
                moves,
                bound: g,
                proven: true,
                stats,
                stop: StopReason::Completed,
            });
        }
        if let Some(budget) = engine.node_budget {
            if tt.len() > budget {
                stopped = Some(StopReason::Budget);
                break 'search;
            }
        }
        pops += 1;
        if checks && pops % BATCH == 0 {
            if let Some(reason) = stop_requested(deadline_at, engine) {
                stopped = Some(reason);
                break 'search;
            }
        }
        stats.expanded += 1;

        let completed = domain.expand(&cur, &mut scratch, &mut |words, mv, cost| {
            stats.generated += 1;
            if checks && stats.generated % gen_check == 0 {
                if let Some(reason) = stop_requested(deadline_at, engine) {
                    stopped = Some(reason);
                    return false;
                }
            }
            let new_g = g + cost;
            let i = tt.intern(words);
            let slot = tt.slot_mut(i);
            if new_g < slot.g {
                slot.g = new_g;
                slot.parent = Some((idx, mv));
                let f_child = new_g + domain.h(heuristic, words);
                if !(anytime && f_child > incumbent_cost) {
                    heap.push(Reverse((f_child, new_g, i)));
                }
                // Anytime incumbent: a successor that is already terminal is
                // a complete schedule — validate and publish it immediately,
                // long before A* would pop it.
                if anytime && new_g < incumbent_cost && domain.is_goal(words) {
                    let moves = tt.reconstruct_moves(i);
                    if let Some(validated) = domain.validate_moves(&moves) {
                        if validated < incumbent_cost {
                            incumbent_cost = validated;
                            if let Some(p) = progress {
                                p.publish(validated, moves.clone());
                            }
                            incumbent = Some((validated, moves));
                        }
                    }
                }
            }
            true
        });
        if !completed {
            break 'search;
        }
    }
    stats.distinct = tt.len();

    match stopped {
        None => {
            // Heap exhausted. With an incumbent the pruned search proved
            // that nothing cheaper exists; without one the instance has no
            // pebbling at all.
            match incumbent {
                Some((cost, moves)) => {
                    if let Some(p) = progress {
                        p.raise_bound(cost);
                    }
                    Ok(RawOutcome {
                        cost,
                        moves,
                        bound: cost,
                        proven: true,
                        stats,
                        stop: StopReason::Completed,
                    })
                }
                None => Err(ExactError::Unsolvable),
            }
        }
        Some(reason) => early_outcome(reason, incumbent, h0, stats),
    }
}

/// Map an early stop into the caller-visible result: the best validated
/// incumbent when one exists, the matching error otherwise.
fn early_outcome<M>(
    reason: StopReason,
    incumbent: Option<(usize, Vec<M>)>,
    h0: usize,
    stats: SearchStats,
) -> Result<RawOutcome<M>, ExactError> {
    match incumbent {
        Some((cost, moves)) => Ok(RawOutcome {
            cost,
            moves,
            bound: h0,
            proven: cost == h0,
            stats,
            stop: reason,
        }),
        None => match reason {
            StopReason::Budget => Err(ExactError::StateLimitExceeded {
                explored: stats.distinct,
            }),
            _ => Err(ExactError::Interrupted {
                explored: stats.distinct,
            }),
        },
    }
}

/// Heap key for the parallel workers: the interned state, ordered
/// lexicographically so `(f, g, key)` tuples have a total order.
struct KeyOrd(Arc<[u64]>);

impl PartialEq for KeyOrd {
    fn eq(&self, other: &Self) -> bool {
        self.0.as_ref() == other.0.as_ref()
    }
}
impl Eq for KeyOrd {}
impl PartialOrd for KeyOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.as_ref().cmp(other.0.as_ref())
    }
}

type Msg = (usize, usize, Arc<[u64]>);

struct ParShared<'p, M> {
    table: SharedTable<M>,
    inboxes: Vec<Mutex<Vec<Msg>>>,
    /// Heap entries alive anywhere in the system (local heaps + inboxes +
    /// the one a worker is currently expanding).
    pending: AtomicIsize,
    /// 0 = running; otherwise a `StopReason` code (first writer wins).
    stop: AtomicU8,
    incumbent_cost: AtomicUsize,
    best: Mutex<Option<(usize, Vec<M>)>>,
    best_goal: Mutex<Option<(usize, Arc<[u64]>)>>,
    expanded: AtomicUsize,
    generated: AtomicUsize,
    progress: Option<&'p Progress<M>>,
}

const STOP_DEADLINE: u8 = 1;
const STOP_BUDGET: u8 = 2;
const STOP_CANCELLED: u8 = 3;

impl<M: Copy + Send> ParShared<'_, M> {
    fn request_stop(&self, code: u8) {
        let _ = self
            .stop
            .compare_exchange(0, code, Ordering::SeqCst, Ordering::SeqCst);
    }

    fn publish_best(&self, cost: usize, moves: Vec<M>) {
        self.incumbent_cost.fetch_min(cost, Ordering::AcqRel);
        let mut best = self.best.lock().expect("best poisoned");
        if best.as_ref().map_or(true, |&(c, _)| cost < c) {
            if let Some(p) = self.progress {
                p.publish(cost, moves.clone());
            }
            *best = Some((cost, moves));
        }
    }
}

/// The HDA* parallel loop: every successor state is routed to the worker
/// owning its hash, relaxations go through the shared striped table, and the
/// answer (though not the effort statistics) is deterministic.
pub(crate) fn solve_par<D: Domain>(
    domain: &D,
    engine: &EngineConfig,
    deadline_at: Option<Instant>,
    workers: usize,
    make_h: &(dyn Fn() -> Box<dyn LowerBound> + Sync),
    seed: Option<(usize, Vec<D::Move>)>,
    progress: Option<&Progress<D::Move>>,
) -> Result<RawOutcome<D::Move>, ExactError> {
    let start = domain.start_words();
    let h0 = {
        let h = make_h();
        domain.h(h.as_ref(), &start)
    };
    if let Some(p) = progress {
        p.raise_bound(h0);
    }
    if domain.is_goal(&start) {
        return Ok(RawOutcome {
            cost: 0,
            moves: Vec::new(),
            bound: 0,
            proven: true,
            stats: SearchStats {
                distinct: 1,
                ..Default::default()
            },
            stop: StopReason::Completed,
        });
    }

    let shared: ParShared<'_, D::Move> = ParShared {
        table: SharedTable::new(workers * 8),
        inboxes: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        pending: AtomicIsize::new(0),
        stop: AtomicU8::new(0),
        incumbent_cost: AtomicUsize::new(usize::MAX),
        best: Mutex::new(None),
        best_goal: Mutex::new(None),
        expanded: AtomicUsize::new(0),
        generated: AtomicUsize::new(0),
        progress,
    };
    if let Some((cost, moves)) = &seed {
        shared.incumbent_cost.store(*cost, Ordering::Release);
        if let Some(p) = progress {
            p.publish(*cost, moves.clone());
        }
        *shared.best.lock().expect("best poisoned") = Some((*cost, moves.clone()));
    }

    let start_hash = hash_words(&start);
    let owner = |hash: u64| ((hash >> 32) as usize) % workers;
    let start_key = shared
        .table
        .relax(&start, start_hash, 0, None)
        .expect("start state is fresh");
    shared.pending.store(1, Ordering::SeqCst);
    shared.inboxes[owner(start_hash)]
        .lock()
        .expect("inbox poisoned")
        .push((h0, 0, start_key));

    let words_len = start.len();
    let gen_check = gen_check_interval(words_len);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            scope.spawn(move || {
                let h = make_h();
                let mut heap: BinaryHeap<Reverse<(usize, usize, KeyOrd)>> = BinaryHeap::new();
                let mut scratch = vec![0u64; words_len];
                let mut idle_spins = 0u32;
                // Per-worker effort, folded into the sharded observability
                // counters once at loop exit (never inside the hot loop).
                let mut my_expanded = 0usize;
                let mut my_generated = 0usize;
                loop {
                    if shared.stop.load(Ordering::Relaxed) != 0 {
                        break;
                    }
                    {
                        let mut inbox = shared.inboxes[w].lock().expect("inbox poisoned");
                        if !inbox.is_empty() {
                            for (f, g, key) in inbox.drain(..) {
                                heap.push(Reverse((f, g, KeyOrd(key))));
                            }
                        }
                    }
                    if engine.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                        shared.request_stop(STOP_CANCELLED);
                        continue;
                    }
                    if deadline_at.is_some_and(|d| Instant::now() >= d) {
                        shared.request_stop(STOP_DEADLINE);
                        continue;
                    }
                    let Some(Reverse((f, g, key))) = heap.pop() else {
                        if shared.pending.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        } else {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    let key = key.0;
                    if f > shared.incumbent_cost.load(Ordering::Relaxed)
                        || g > shared.table.g_of(&key)
                    {
                        shared.pending.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    shared.expanded.fetch_add(1, Ordering::Relaxed);
                    my_expanded += 1;
                    let mut local_gen = 0usize;
                    domain.expand(&key, &mut scratch, &mut |words, mv, cost| {
                        local_gen += 1;
                        if local_gen % gen_check == 0 {
                            if engine.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                                shared.request_stop(STOP_CANCELLED);
                                return false;
                            }
                            if deadline_at.is_some_and(|d| Instant::now() >= d) {
                                shared.request_stop(STOP_DEADLINE);
                                return false;
                            }
                        }
                        let new_g = g + cost;
                        if new_g > shared.incumbent_cost.load(Ordering::Relaxed) {
                            return true;
                        }
                        let hash = hash_words(words);
                        let Some(child_key) =
                            shared
                                .table
                                .relax(words, hash, new_g, Some((Arc::clone(&key), mv)))
                        else {
                            return true;
                        };
                        if domain.is_goal(words) {
                            // A realized complete pebbling: `new_g` is the
                            // cost of a concrete move path, hence a sound
                            // upper bound for pruning even before the trace
                            // itself is (re-)validated below.
                            let prev = shared.incumbent_cost.fetch_min(new_g, Ordering::AcqRel);
                            if new_g < prev {
                                let mut bg = shared.best_goal.lock().expect("best_goal poisoned");
                                if bg.as_ref().map_or(true, |&(c, _)| new_g < c) {
                                    *bg = Some((new_g, Arc::clone(&child_key)));
                                }
                                drop(bg);
                                if let Some(moves) = shared.table.reconstruct_moves(&child_key) {
                                    if let Some(validated) = domain.validate_moves(&moves) {
                                        shared.publish_best(validated, moves);
                                    }
                                }
                            }
                            return true;
                        }
                        let f_child = new_g + domain.h(h.as_ref(), words);
                        if f_child > shared.incumbent_cost.load(Ordering::Relaxed) {
                            return true;
                        }
                        shared.pending.fetch_add(1, Ordering::SeqCst);
                        shared.inboxes[owner(hash)]
                            .lock()
                            .expect("inbox poisoned")
                            .push((f_child, new_g, child_key));
                        true
                    });
                    shared.generated.fetch_add(local_gen, Ordering::Relaxed);
                    my_generated += local_gen;
                    if let Some(budget) = engine.node_budget {
                        if shared.table.distinct() > budget {
                            shared.request_stop(STOP_BUDGET);
                        }
                    }
                    shared.pending.fetch_sub(1, Ordering::SeqCst);
                }
                super::obs::record_worker(w, my_expanded, my_generated);
            });
        }
    });

    let stats = SearchStats {
        expanded: shared.expanded.load(Ordering::Relaxed),
        generated: shared.generated.load(Ordering::Relaxed),
        distinct: shared.table.distinct(),
    };
    let stop_code = shared.stop.load(Ordering::SeqCst);
    if stop_code != 0 {
        let reason = match stop_code {
            STOP_DEADLINE => StopReason::Deadline,
            STOP_BUDGET => StopReason::Budget,
            _ => StopReason::Cancelled,
        };
        let incumbent = shared.best.into_inner().expect("best poisoned");
        return early_outcome(reason, incumbent, h0, stats);
    }

    // Quiescence: the search space (pruned at `f > incumbent`) is exhausted.
    let best_goal = shared.best_goal.into_inner().expect("best_goal poisoned");
    match best_goal {
        Some((goal_g, key)) => {
            let moves = shared
                .table
                .reconstruct_moves(&key)
                .expect("parent chain is consistent at quiescence");
            let cost = domain
                .validate_moves(&moves)
                .expect("reconstructed chain replays as a legal pebbling");
            debug_assert_eq!(cost, goal_g, "quiescent chain cost mismatch");
            let incumbent = shared.incumbent_cost.load(Ordering::SeqCst).min(cost);
            if let Some(p) = progress {
                p.publish(cost, moves.clone());
                p.raise_bound(incumbent);
            }
            Ok(RawOutcome {
                cost,
                moves,
                bound: incumbent,
                proven: cost == incumbent,
                stats,
                stop: StopReason::Completed,
            })
        }
        None => match shared.best.into_inner().expect("best poisoned") {
            // The pruned space held nothing cheaper than the seed: the seed
            // itself is optimal.
            Some((cost, moves)) => {
                if let Some(p) = progress {
                    p.raise_bound(cost);
                }
                Ok(RawOutcome {
                    cost,
                    moves,
                    bound: cost,
                    proven: true,
                    stats,
                    stop: StopReason::Completed,
                })
            }
            None => Err(ExactError::Unsolvable),
        },
    }
}

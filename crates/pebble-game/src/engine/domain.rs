//! The two search domains (RBP and PRBP) behind one engine.
//!
//! A [`Domain`] packages everything the search loops need to know about a
//! game model: the packed start state, the goal test, successor generation
//! (the move rules of the model), heuristic evaluation through the
//! [`LowerBound`] views, and simulator validation of reconstructed move
//! sequences. The successor *emission order* is part of the contract: the
//! sequential loop inherits the exact interning order of the legacy solvers,
//! which keeps `SearchStats.distinct` and every tie-break reproducible.

use crate::exact::heuristic::{LowerBound, PrbpStateView, RbpStateView};
use crate::moves::{PrbpMove, RbpMove};
use crate::packed::{clear, get, plane_words, popcount, set};
use crate::prbp::PrbpConfig;
use crate::rbp::RbpConfig;
use crate::trace::{validate_prbp_moves, validate_rbp_moves, PrbpTrace, RbpTrace};
use pebble_dag::{Dag, NodeId};

/// The successor sink passed to [`Domain::expand`]: receives
/// `(successor_words, move, io_cost)`; returning `false` aborts the
/// expansion.
pub(crate) type EmitFn<'a, M> = dyn FnMut(&[u64], M, usize) -> bool + 'a;

/// One game model, seen through the eyes of the search engine.
pub(crate) trait Domain: Sync {
    /// The move type of the model.
    type Move: Copy + Send + Sync + 'static;
    /// The trace type the engine hands back to callers.
    type Trace;

    /// The packed start state.
    fn start_words(&self) -> Vec<u64>;
    /// Whether any pebbling exists at all for this cache size.
    fn feasible(&self) -> bool;
    /// Is `words` a terminal (fully pebbled) configuration?
    fn is_goal(&self, words: &[u64]) -> bool;
    /// Admissible lower bound on the remaining I/O from `words`.
    fn h(&self, heuristic: &dyn LowerBound, words: &[u64]) -> usize;
    /// Generate every legal successor of `cur`, calling
    /// `emit(successor_words, move, io_cost)` for each in the model's
    /// canonical order. `emit` returning `false` aborts the expansion (used
    /// for cooperative cancellation inside one large expansion); the
    /// function returns `false` iff it was aborted.
    fn expand(&self, cur: &[u64], scratch: &mut [u64], emit: &mut EmitFn<'_, Self::Move>) -> bool;
    /// Wrap reconstructed moves into the model's trace type.
    fn make_trace(&self, moves: Vec<Self::Move>) -> Self::Trace;
    /// Replay `moves` through the game simulator; `Some(cost)` iff legal and
    /// terminal.
    fn validate_moves(&self, moves: &[Self::Move]) -> Option<usize>;
}

/// The packed RBP start state: blue pebbles on all sources, nothing else.
/// Layout: `[red | blue | computed]`.
pub(crate) fn rbp_start_words(dag: &Dag) -> Vec<u64> {
    let w = plane_words(dag.node_count());
    let mut words = vec![0u64; 3 * w];
    for v in dag.nodes() {
        if dag.is_source(v) {
            set(&mut words[w..2 * w], v.index());
        }
    }
    words
}

/// The packed PRBP start state: blue pebbles on all sources, all edges
/// unmarked. Layout: `[red | blue | marked]`.
pub(crate) fn prbp_start_words(dag: &Dag) -> Vec<u64> {
    let wn = plane_words(dag.node_count());
    let wm = plane_words(dag.edge_count());
    let mut words = vec![0u64; 2 * wn + wm];
    for v in dag.nodes() {
        if dag.is_source(v) {
            set(&mut words[wn..2 * wn], v.index());
        }
    }
    words
}

/// The one-shot red-blue pebble game as a search domain.
pub(crate) struct RbpDomain<'a> {
    dag: &'a Dag,
    config: RbpConfig,
    n: usize,
    /// Words per plane.
    w: usize,
    sinks: Vec<NodeId>,
}

impl<'a> RbpDomain<'a> {
    pub fn new(dag: &'a Dag, config: RbpConfig) -> Self {
        RbpDomain {
            dag,
            config,
            n: dag.node_count(),
            w: plane_words(dag.node_count()),
            sinks: dag.sinks(),
        }
    }
}

impl Domain for RbpDomain<'_> {
    type Move = RbpMove;
    type Trace = RbpTrace;

    fn start_words(&self) -> Vec<u64> {
        rbp_start_words(self.dag)
    }

    fn feasible(&self) -> bool {
        // Computing a node of in-degree d needs d+1 simultaneous red pebbles
        // (d with sliding, which reuses one of the input slots).
        let needed = self.dag.max_in_degree() + usize::from(!self.config.allow_sliding);
        self.config.r >= needed
    }

    fn is_goal(&self, words: &[u64]) -> bool {
        let w = self.w;
        self.sinks.iter().all(|t| get(&words[w..2 * w], t.index()))
    }

    fn h(&self, heuristic: &dyn LowerBound, words: &[u64]) -> usize {
        heuristic.rbp_bound(self.dag, self.config, &RbpStateView::new(words, self.n))
    }

    fn expand(&self, cur: &[u64], scratch: &mut [u64], emit: &mut EmitFn<'_, RbpMove>) -> bool {
        let (dag, config, w) = (self.dag, self.config, self.w);
        let red = |words: &[u64], i: usize| get(&words[..w], i);
        let blue = |words: &[u64], i: usize| get(&words[w..2 * w], i);
        let computed = |words: &[u64], i: usize| get(&words[2 * w..], i);
        let red_count = popcount(&cur[..w]);

        for v in dag.nodes() {
            let vi = v.index();
            let v_red = red(cur, vi);
            let v_blue = blue(cur, vi);
            // Load.
            if v_blue && !v_red && red_count < config.r {
                scratch.copy_from_slice(cur);
                set(&mut scratch[..w], vi);
                if !emit(scratch, RbpMove::Load(v), 1) {
                    return false;
                }
            }
            // Save.
            if v_red && !v_blue {
                scratch.copy_from_slice(cur);
                set(&mut scratch[w..2 * w], vi);
                if !emit(scratch, RbpMove::Save(v), 1) {
                    return false;
                }
            }
            // Compute (and slides).
            if !dag.is_source(v)
                && (config.allow_recompute || !computed(cur, vi))
                && dag.predecessors(v).all(|u| red(cur, u.index()))
            {
                if v_red || red_count < config.r {
                    scratch.copy_from_slice(cur);
                    set(&mut scratch[..w], vi);
                    set(&mut scratch[2 * w..], vi);
                    if !emit(scratch, RbpMove::Compute(v), 0) {
                        return false;
                    }
                }
                if config.allow_sliding {
                    for &(u, _) in dag.in_edges(v) {
                        scratch.copy_from_slice(cur);
                        clear(&mut scratch[..w], u.index());
                        set(&mut scratch[..w], vi);
                        set(&mut scratch[2 * w..], vi);
                        if !emit(scratch, RbpMove::ComputeSlide { node: v, from: u }, 0) {
                            return false;
                        }
                    }
                }
            }
            // Delete. Without re-computation, deleting the only copy of a
            // value that is still needed leads to a dead state, so we prune
            // those deletions (this preserves optimality).
            if !config.no_delete && v_red {
                let safe = config.allow_recompute
                    || v_blue
                    || dag.successors(v).all(|s| computed(cur, s.index()));
                if safe {
                    scratch.copy_from_slice(cur);
                    clear(&mut scratch[..w], vi);
                    if !emit(scratch, RbpMove::Delete(v), 0) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn make_trace(&self, moves: Vec<RbpMove>) -> RbpTrace {
        RbpTrace::from_moves(moves)
    }

    fn validate_moves(&self, moves: &[RbpMove]) -> Option<usize> {
        validate_rbp_moves(self.dag, self.config, moves.iter().copied()).ok()
    }
}

/// The partial-computing red-blue pebble game as a search domain.
pub(crate) struct PrbpDomain<'a> {
    dag: &'a Dag,
    config: PrbpConfig,
    n: usize,
    m: usize,
    /// Words per node plane.
    wn: usize,
    sinks: Vec<NodeId>,
}

impl<'a> PrbpDomain<'a> {
    pub fn new(dag: &'a Dag, config: PrbpConfig) -> Self {
        PrbpDomain {
            dag,
            config,
            n: dag.node_count(),
            m: dag.edge_count(),
            wn: plane_words(dag.node_count()),
            sinks: dag.sinks(),
        }
    }
}

impl Domain for PrbpDomain<'_> {
    type Move = PrbpMove;
    type Trace = PrbpTrace;

    fn start_words(&self) -> Vec<u64> {
        prbp_start_words(self.dag)
    }

    fn feasible(&self) -> bool {
        // PRBP can pebble any DAG (without isolated nodes) with two red
        // pebbles, but never with fewer.
        self.config.r >= 2
    }

    fn is_goal(&self, words: &[u64]) -> bool {
        let wn = self.wn;
        popcount(&words[2 * wn..]) == self.m
            && self
                .sinks
                .iter()
                .all(|t| get(&words[wn..2 * wn], t.index()))
    }

    fn h(&self, heuristic: &dyn LowerBound, words: &[u64]) -> usize {
        heuristic.prbp_bound(
            self.dag,
            self.config,
            &PrbpStateView::new(words, self.n, self.m),
        )
    }

    fn expand(&self, cur: &[u64], scratch: &mut [u64], emit: &mut EmitFn<'_, PrbpMove>) -> bool {
        let (dag, config, wn) = (self.dag, self.config, self.wn);
        let red = |words: &[u64], i: usize| get(&words[..wn], i);
        let blue = |words: &[u64], i: usize| get(&words[wn..2 * wn], i);
        let marked = |words: &[u64], i: usize| get(&words[2 * wn..], i);
        let red_count = popcount(&cur[..wn]);
        let fully_computed =
            |v: NodeId| dag.in_edges(v).iter().all(|&(_, e)| marked(cur, e.index()));
        let all_out_marked = |v: NodeId| {
            dag.out_edges(v)
                .iter()
                .all(|&(_, e)| marked(cur, e.index()))
        };

        for v in dag.nodes() {
            let vi = v.index();
            match (red(cur, vi), blue(cur, vi)) {
                // Blue only.
                (false, true) => {
                    if red_count < config.r {
                        scratch.copy_from_slice(cur);
                        set(&mut scratch[..wn], vi);
                        if !emit(scratch, PrbpMove::Load(v), 1) {
                            return false;
                        }
                    }
                }
                // Blue and light red.
                (true, true) => {
                    scratch.copy_from_slice(cur);
                    clear(&mut scratch[..wn], vi);
                    if !emit(scratch, PrbpMove::Delete(v), 0) {
                        return false;
                    }
                }
                // Dark red.
                (true, false) => {
                    scratch.copy_from_slice(cur);
                    set(&mut scratch[wn..2 * wn], vi);
                    if !emit(scratch, PrbpMove::Save(v), 1) {
                        return false;
                    }
                    if !config.no_delete && !dag.is_sink(v) && all_out_marked(v) {
                        scratch.copy_from_slice(cur);
                        clear(&mut scratch[..wn], vi);
                        if !emit(scratch, PrbpMove::Delete(v), 0) {
                            return false;
                        }
                    }
                }
                // Empty.
                (false, false) => {}
            }
        }

        // Partial compute steps over all unmarked edges.
        for e in dag.edges() {
            if marked(cur, e.index()) {
                continue;
            }
            let (u, v) = dag.edge_endpoints(e);
            if !red(cur, u.index()) || !fully_computed(u) {
                continue;
            }
            match (red(cur, v.index()), blue(cur, v.index())) {
                // Blue only: the partial value would be lost.
                (false, true) => continue,
                // Empty: needs a fresh red pebble.
                (false, false) if red_count >= config.r => continue,
                _ => {}
            }
            scratch.copy_from_slice(cur);
            set(&mut scratch[..wn], v.index());
            clear(&mut scratch[wn..2 * wn], v.index());
            set(&mut scratch[2 * wn..], e.index());
            if !emit(scratch, PrbpMove::PartialCompute { from: u, to: v }, 0) {
                return false;
            }
        }
        true
    }

    fn make_trace(&self, moves: Vec<PrbpMove>) -> PrbpTrace {
        PrbpTrace::from_moves(moves)
    }

    fn validate_moves(&self, moves: &[PrbpMove]) -> Option<usize> {
        validate_prbp_moves(self.dag, self.config, moves.iter().copied()).ok()
    }
}

//! Transposition tables over `Arc`-interned packed states.
//!
//! A search state is a fixed number of `u64` words: bit planes over the
//! nodes (and, for PRBP, the edges) of the DAG. Equal configurations encode
//! to identical words, so a single hash-map lookup on the word slice detects
//! duplicates in O(words). Keys are interned as `Arc<[u64]>`: one heap
//! allocation per *distinct* state, shared between the table index, the slot
//! storage and (in the parallel table) the worker heaps.
//!
//! Two tables live here:
//!
//! * [`Transposition`] — the single-threaded table of the sequential loop,
//!   slot-indexed exactly like the legacy solvers (so `distinct` counts and
//!   tie-breaking stay bit-for-bit reproducible);
//! * [`SharedTable`] — the mutex-striped map shared by the HDA* workers:
//!   relaxations take one shard lock, parent pointers are `Arc` keys instead
//!   of slot ids, and the distinct-state count is a shared atomic.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One entry of the sequential transposition table: the interned state, its
/// best known distance from the start, and the parent pointer for trace
/// reconstruction.
pub(crate) struct Slot<M> {
    pub key: Arc<[u64]>,
    pub g: usize,
    pub parent: Option<(u32, M)>,
}

/// Sequential transposition table: interned packed states with O(1)
/// duplicate detection.
pub(crate) struct Transposition<M> {
    index: HashMap<Arc<[u64]>, u32>,
    slots: Vec<Slot<M>>,
}

impl<M> Transposition<M> {
    /// Create a table containing only the start state (distance 0).
    pub fn new(start: &[u64]) -> Self {
        let key: Arc<[u64]> = Arc::from(start);
        let mut index = HashMap::new();
        index.insert(Arc::clone(&key), 0u32);
        Transposition {
            index,
            slots: vec![Slot {
                key,
                g: 0,
                parent: None,
            }],
        }
    }

    /// Number of distinct states interned so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Look up `words`, interning a fresh slot (with `g = usize::MAX`) if the
    /// state has not been seen. Returns the slot id.
    pub fn intern(&mut self, words: &[u64]) -> u32 {
        if let Some(&i) = self.index.get(words) {
            return i;
        }
        let i = self.slots.len() as u32;
        let key: Arc<[u64]> = Arc::from(words);
        self.index.insert(Arc::clone(&key), i);
        self.slots.push(Slot {
            key,
            g: usize::MAX,
            parent: None,
        });
        i
    }

    pub fn slot(&self, i: u32) -> &Slot<M> {
        &self.slots[i as usize]
    }

    pub fn slot_mut(&mut self, i: u32) -> &mut Slot<M> {
        &mut self.slots[i as usize]
    }
}

impl<M: Copy> Transposition<M> {
    /// Walk the parent chain from `idx` back to the start, returning the
    /// moves in forward order.
    pub fn reconstruct_moves(&self, mut idx: u32) -> Vec<M> {
        let mut moves = Vec::new();
        while let Some((prev, mv)) = self.slots[idx as usize].parent {
            moves.push(mv);
            idx = prev;
        }
        moves.reverse();
        moves
    }
}

/// Stable hash of a packed state, used for both shard selection and HDA*
/// worker routing (disjoint bit ranges, so the two do not correlate).
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    words.hash(&mut h);
    h.finish()
}

/// One entry of the shared table. The parent pointer is the interned key of
/// the predecessor plus the move that produced this state.
pub(crate) struct SharedEntry<M> {
    pub g: usize,
    pub parent: Option<(Arc<[u64]>, M)>,
}

/// One mutex-striped shard of the shared table.
type Shard<M> = Mutex<HashMap<Arc<[u64]>, SharedEntry<M>>>;

/// The mutex-striped transposition table shared by the parallel workers.
pub(crate) struct SharedTable<M> {
    shards: Vec<Shard<M>>,
    mask: u64,
    distinct: AtomicUsize,
}

impl<M: Copy> SharedTable<M> {
    /// A table with at least `min_shards` stripes (rounded up to a power of
    /// two).
    pub fn new(min_shards: usize) -> Self {
        let n = min_shards.next_power_of_two().max(16);
        SharedTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
            distinct: AtomicUsize::new(0),
        }
    }

    /// Number of distinct states interned so far (exact; updated under the
    /// shard lock that interned the state).
    pub fn distinct(&self) -> usize {
        self.distinct.load(Ordering::Relaxed)
    }

    fn shard(&self, hash: u64) -> &Mutex<HashMap<Arc<[u64]>, SharedEntry<M>>> {
        &self.shards[(hash & self.mask) as usize]
    }

    /// Relax `words` to distance `g` with the given parent pointer. Interns
    /// the state on first sight. Returns the interned key iff `g` improved
    /// the entry (i.e. the state must be (re-)enqueued); `None` means an
    /// equal-or-better distance is already recorded.
    pub fn relax(
        &self,
        words: &[u64],
        hash: u64,
        g: usize,
        parent: Option<(Arc<[u64]>, M)>,
    ) -> Option<Arc<[u64]>> {
        let mut shard = self.shard(hash).lock().expect("shard poisoned");
        if let Some((key, entry)) = shard.get_key_value(words) {
            if entry.g <= g {
                return None;
            }
            let key = Arc::clone(key);
            let entry = shard.get_mut(words).expect("entry just seen");
            entry.g = g;
            entry.parent = parent;
            Some(key)
        } else {
            let key: Arc<[u64]> = Arc::from(words);
            shard.insert(Arc::clone(&key), SharedEntry { g, parent });
            self.distinct.fetch_add(1, Ordering::Relaxed);
            Some(key)
        }
    }

    /// The current best distance of an interned state (`usize::MAX` if the
    /// state is unknown, which stale heap entries never are).
    pub fn g_of(&self, key: &Arc<[u64]>) -> usize {
        let shard = self.shard(hash_words(key)).lock().expect("shard poisoned");
        shard.get(key.as_ref()).map_or(usize::MAX, |e| e.g)
    }

    /// The recorded parent pointer of an interned state.
    pub fn parent_of(&self, key: &[u64]) -> Option<(Arc<[u64]>, M)> {
        let shard = self.shard(hash_words(key)).lock().expect("shard poisoned");
        shard
            .get(key)
            .and_then(|e| e.parent.as_ref().map(|(k, m)| (Arc::clone(k), *m)))
    }

    /// Walk the parent chain from `key` back to the start, returning the
    /// moves in forward order. Mid-search the chain can be mutated
    /// concurrently, so the walk carries a visited set; `None` means the
    /// chain was transiently inconsistent (caller simply skips this
    /// publication attempt). At quiescence the chain is provably acyclic and
    /// the walk always succeeds.
    pub fn reconstruct_moves(&self, key: &Arc<[u64]>) -> Option<Vec<M>> {
        let mut moves = Vec::new();
        let mut seen: std::collections::HashSet<Arc<[u64]>> = std::collections::HashSet::new();
        let mut cur = Arc::clone(key);
        while let Some((prev, mv)) = self.parent_of(&cur) {
            if !seen.insert(Arc::clone(&cur)) {
                return None;
            }
            moves.push(mv);
            cur = prev;
        }
        moves.reverse();
        Some(moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_detects_duplicates() {
        let start = [0u64, 0];
        let mut tt: Transposition<u8> = Transposition::new(&start);
        assert_eq!(tt.len(), 1);
        assert_eq!(tt.intern(&[0, 0]), 0);
        let a = tt.intern(&[1, 0]);
        assert_eq!(a, 1);
        assert_eq!(tt.intern(&[1, 0]), 1);
        assert_eq!(tt.len(), 2);
        assert_eq!(tt.slot(a).g, usize::MAX);
    }

    #[test]
    fn reconstruct_walks_parent_chain() {
        let mut tt: Transposition<char> = Transposition::new(&[0]);
        let a = tt.intern(&[1]);
        tt.slot_mut(a).parent = Some((0, 'x'));
        let b = tt.intern(&[2]);
        tt.slot_mut(b).parent = Some((a, 'y'));
        assert_eq!(tt.reconstruct_moves(b), vec!['x', 'y']);
    }

    #[test]
    fn shared_relax_improves_and_rejects() {
        let table: SharedTable<char> = SharedTable::new(4);
        let start: &[u64] = &[0];
        let h0 = hash_words(start);
        let key0 = table.relax(start, h0, 0, None).expect("fresh state");
        assert_eq!(table.distinct(), 1);
        let child: &[u64] = &[1];
        let hc = hash_words(child);
        let kc = table
            .relax(child, hc, 5, Some((Arc::clone(&key0), 'a')))
            .expect("fresh state");
        assert!(
            table.relax(child, hc, 5, None).is_none(),
            "equal g rejected"
        );
        assert!(table
            .relax(child, hc, 3, Some((Arc::clone(&key0), 'b')))
            .is_some());
        assert_eq!(table.g_of(&kc), 3);
        assert_eq!(table.distinct(), 2);
        assert_eq!(table.reconstruct_moves(&kc), Some(vec!['b']));
    }
}

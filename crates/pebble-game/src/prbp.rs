//! Simulator for the partial-computing red-blue pebble game (PRBP, Section 3
//! of the paper), with the optional re-computation (`clear`) and no-deletion
//! variants of Appendix B.

use crate::moves::PrbpMove;
use pebble_dag::{BitSet, Dag, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pebble configuration of a single node in PRBP. These are exactly the
/// four states listed in Section 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PebbleState {
    /// No pebble: the value is not stored anywhere.
    Empty,
    /// Blue pebble only: the value is only present in slow memory.
    Blue,
    /// Blue and light red: the current value is present in both memories.
    BlueAndLightRed,
    /// Dark red only: the value has been updated since the last I/O on this
    /// node and is only present in fast memory.
    DarkRed,
}

impl PebbleState {
    /// Returns `true` if the node holds a (light or dark) red pebble.
    pub fn has_red(self) -> bool {
        matches!(self, PebbleState::BlueAndLightRed | PebbleState::DarkRed)
    }

    /// Returns `true` if the node holds a blue pebble.
    pub fn has_blue(self) -> bool {
        matches!(self, PebbleState::Blue | PebbleState::BlueAndLightRed)
    }
}

/// Configuration of a PRBP game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrbpConfig {
    /// Fast-memory capacity `r` (maximum number of light + dark red pebbles).
    pub r: usize,
    /// Allow the `clear` move (re-computation from scratch, Appendix B.1).
    pub allow_clear: bool,
    /// Forbid removing dark red pebbles by deletion; they can only be turned
    /// into light red pebbles by saving (Appendix B.4).
    pub no_delete: bool,
}

impl PrbpConfig {
    /// The standard one-shot PRBP with cache size `r`.
    pub fn new(r: usize) -> Self {
        PrbpConfig {
            r,
            allow_clear: false,
            no_delete: false,
        }
    }

    /// Enable the `clear` (re-computation) move.
    pub fn with_clear(mut self) -> Self {
        self.allow_clear = true;
        self
    }

    /// Enable the no-deletion variant.
    pub fn with_no_delete(mut self) -> Self {
        self.no_delete = true;
        self
    }
}

/// Reasons a move can be rejected by the PRBP simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrbpError {
    /// Load requires a blue pebble.
    LoadWithoutBlue(NodeId),
    /// Save requires a dark red pebble.
    SaveWithoutDarkRed(NodeId),
    /// The edge of a partial compute does not exist in the DAG.
    NoSuchEdge {
        /// Source endpoint of the offending edge.
        from: NodeId,
        /// Target endpoint of the offending edge.
        to: NodeId,
    },
    /// The edge was already marked (one-shot violation).
    EdgeAlreadyMarked {
        /// Source endpoint of the offending edge.
        from: NodeId,
        /// Target endpoint of the offending edge.
        to: NodeId,
    },
    /// The input node of a partial compute is not fully computed yet.
    InputNotFullyComputed {
        /// Source endpoint of the offending edge.
        from: NodeId,
        /// Target endpoint of the offending edge.
        to: NodeId,
    },
    /// The input node of a partial compute holds no red pebble.
    InputNotInFastMemory {
        /// Source endpoint of the offending edge.
        from: NodeId,
        /// Target endpoint of the offending edge.
        to: NodeId,
    },
    /// The target of a partial compute holds only a blue pebble (its partial
    /// value would be lost); it must be loaded first.
    TargetOnlyInSlowMemory {
        /// Source endpoint of the offending edge.
        from: NodeId,
        /// Target endpoint of the offending edge.
        to: NodeId,
    },
    /// Delete requires a red pebble.
    DeleteWithoutRed(NodeId),
    /// A dark red pebble can only be deleted once its value is no longer
    /// needed: all out-edges marked and the node is not an unsaved sink.
    DeleteDarkStillNeeded(NodeId),
    /// Deleting dark red pebbles is forbidden in the no-deletion variant.
    DeleteForbidden(NodeId),
    /// Clear is not enabled in this configuration.
    ClearNotAllowed(NodeId),
    /// Clear applied to a source or sink node.
    ClearOnSourceOrSink(NodeId),
    /// The move would exceed the fast-memory capacity `r`.
    CapacityExceeded {
        /// The configured fast-memory capacity that would be exceeded.
        r: usize,
    },
}

impl fmt::Display for PrbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrbpError::LoadWithoutBlue(v) => write!(f, "load {v}: node has no blue pebble"),
            PrbpError::SaveWithoutDarkRed(v) => write!(f, "save {v}: node has no dark red pebble"),
            PrbpError::NoSuchEdge { from, to } => write!(f, "pc ({from},{to}): no such edge"),
            PrbpError::EdgeAlreadyMarked { from, to } => {
                write!(f, "pc ({from},{to}): edge already marked")
            }
            PrbpError::InputNotFullyComputed { from, to } => {
                write!(f, "pc ({from},{to}): {from} is not fully computed")
            }
            PrbpError::InputNotInFastMemory { from, to } => {
                write!(f, "pc ({from},{to}): {from} holds no red pebble")
            }
            PrbpError::TargetOnlyInSlowMemory { from, to } => {
                write!(
                    f,
                    "pc ({from},{to}): {to} holds only a blue pebble; load it first"
                )
            }
            PrbpError::DeleteWithoutRed(v) => write!(f, "delete {v}: node has no red pebble"),
            PrbpError::DeleteDarkStillNeeded(v) => {
                write!(f, "delete {v}: dark red pebble with unmarked out-edges")
            }
            PrbpError::DeleteForbidden(v) => write!(f, "delete {v}: dark deletion disabled"),
            PrbpError::ClearNotAllowed(v) => write!(f, "clear {v}: clear not enabled"),
            PrbpError::ClearOnSourceOrSink(v) => write!(f, "clear {v}: node is a source or sink"),
            PrbpError::CapacityExceeded { r } => write!(f, "move exceeds capacity r={r}"),
        }
    }
}

impl std::error::Error for PrbpError {}

/// A running PRBP game: the DAG, the configuration, the pebble placement and
/// the edge markings.
#[derive(Debug, Clone)]
pub struct PrbpGame<'a> {
    dag: &'a Dag,
    config: PrbpConfig,
    state: Vec<PebbleState>,
    marked: BitSet,
    /// Number of *unmarked* in-edges per node (0 = fully computed / source).
    unmarked_in: Vec<u32>,
    /// Number of *unmarked* out-edges per node (0 = not needed any more).
    unmarked_out: Vec<u32>,
    red_count: usize,
    io_cost: usize,
    compute_steps: usize,
}

impl<'a> PrbpGame<'a> {
    /// Start a game in the initial state: blue pebbles on all sources, all
    /// edges unmarked.
    pub fn new(dag: &'a Dag, config: PrbpConfig) -> Self {
        let n = dag.node_count();
        let mut state = vec![PebbleState::Empty; n];
        for v in dag.nodes() {
            if dag.is_source(v) {
                state[v.index()] = PebbleState::Blue;
            }
        }
        let unmarked_in = (0..n)
            .map(|i| dag.in_degree(NodeId::from_index(i)) as u32)
            .collect();
        let unmarked_out = (0..n)
            .map(|i| dag.out_degree(NodeId::from_index(i)) as u32)
            .collect();
        PrbpGame {
            dag,
            config,
            state,
            marked: dag.edge_set(),
            unmarked_in,
            unmarked_out,
            red_count: 0,
            io_cost: 0,
            compute_steps: 0,
        }
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        self.dag
    }

    /// The configuration of this game.
    pub fn config(&self) -> PrbpConfig {
        self.config
    }

    /// Total I/O cost (loads + saves) so far.
    pub fn io_cost(&self) -> usize {
        self.io_cost
    }

    /// Number of partial compute steps executed so far.
    pub fn compute_steps(&self) -> usize {
        self.compute_steps
    }

    /// Number of (light + dark) red pebbles currently on the DAG.
    pub fn red_count(&self) -> usize {
        self.red_count
    }

    /// The pebble state of node `v`.
    pub fn pebble_state(&self, v: NodeId) -> PebbleState {
        self.state[v.index()]
    }

    /// Returns `true` if edge `e` has been marked (aggregated).
    pub fn is_marked(&self, e: EdgeId) -> bool {
        self.marked.contains(e.index())
    }

    /// The set of marked edges.
    pub fn marked_set(&self) -> &BitSet {
        &self.marked
    }

    /// Returns `true` if all in-edges of `v` are marked, i.e. the final value
    /// of `v` is available (sources are trivially fully computed).
    pub fn is_fully_computed(&self, v: NodeId) -> bool {
        self.unmarked_in[v.index()] == 0
    }

    /// Number of still-unmarked in-edges of `v` (0 means fully computed).
    pub fn unmarked_in_degree(&self, v: NodeId) -> usize {
        self.unmarked_in[v.index()] as usize
    }

    /// Number of still-unmarked out-edges of `v` (0 means the value of `v` is
    /// not needed by any future partial compute).
    pub fn unmarked_out_degree(&self, v: NodeId) -> usize {
        self.unmarked_out[v.index()] as usize
    }

    /// The current configuration in the canonical packed encoding
    /// `[red | blue | marked]` of [`crate::packed`] — identical to the
    /// encoding the exact solver uses, so equal configurations produce equal
    /// word sequences (usable as dedup keys by heuristic searches).
    pub fn packed_words(&self) -> Vec<u64> {
        let n = self.dag.node_count();
        let wn = crate::packed::plane_words(n);
        let wm = crate::packed::plane_words(self.dag.edge_count());
        let mut words = vec![0u64; 2 * wn + wm];
        for (i, &st) in self.state.iter().enumerate() {
            if st.has_red() {
                crate::packed::set(&mut words[..wn], i);
            }
            if st.has_blue() {
                crate::packed::set(&mut words[wn..2 * wn], i);
            }
        }
        for e in self.marked.iter() {
            crate::packed::set(&mut words[2 * wn..], e);
        }
        words
    }

    /// Returns `true` in the terminal state: every sink holds a blue pebble
    /// and every edge is marked.
    pub fn is_terminal(&self) -> bool {
        self.marked.count() == self.dag.edge_count()
            && self
                .dag
                .sinks()
                .into_iter()
                .all(|s| self.state[s.index()].has_blue())
    }

    /// Apply one move, validating it against the transition rules. On error
    /// the state is left unchanged.
    pub fn apply(&mut self, mv: PrbpMove) -> Result<(), PrbpError> {
        match mv {
            PrbpMove::Load(v) => {
                match self.state[v.index()] {
                    PebbleState::Blue => {
                        if self.red_count + 1 > self.config.r {
                            return Err(PrbpError::CapacityExceeded { r: self.config.r });
                        }
                        self.state[v.index()] = PebbleState::BlueAndLightRed;
                        self.red_count += 1;
                    }
                    // Loading an already-loaded value is legal but pointless;
                    // it still costs one I/O.
                    PebbleState::BlueAndLightRed => {}
                    PebbleState::Empty | PebbleState::DarkRed => {
                        return Err(PrbpError::LoadWithoutBlue(v));
                    }
                }
                self.io_cost += 1;
                Ok(())
            }
            PrbpMove::Save(v) => {
                if self.state[v.index()] != PebbleState::DarkRed {
                    return Err(PrbpError::SaveWithoutDarkRed(v));
                }
                self.state[v.index()] = PebbleState::BlueAndLightRed;
                self.io_cost += 1;
                Ok(())
            }
            PrbpMove::PartialCompute { from, to } => {
                let edge = self
                    .dag
                    .find_edge(from, to)
                    .ok_or(PrbpError::NoSuchEdge { from, to })?;
                if self.marked.contains(edge.index()) {
                    return Err(PrbpError::EdgeAlreadyMarked { from, to });
                }
                if self.unmarked_in[from.index()] != 0 {
                    return Err(PrbpError::InputNotFullyComputed { from, to });
                }
                if !self.state[from.index()].has_red() {
                    return Err(PrbpError::InputNotInFastMemory { from, to });
                }
                let target_state = self.state[to.index()];
                match target_state {
                    PebbleState::Blue => {
                        return Err(PrbpError::TargetOnlyInSlowMemory { from, to })
                    }
                    PebbleState::Empty => {
                        if self.red_count + 1 > self.config.r {
                            return Err(PrbpError::CapacityExceeded { r: self.config.r });
                        }
                        self.red_count += 1;
                    }
                    // A light red loses its blue companion (the slow-memory
                    // copy is now stale); a dark red stays dark. Red count is
                    // unchanged either way.
                    PebbleState::BlueAndLightRed | PebbleState::DarkRed => {}
                }
                self.state[to.index()] = PebbleState::DarkRed;
                self.marked.insert(edge.index());
                self.unmarked_in[to.index()] -= 1;
                self.unmarked_out[from.index()] -= 1;
                self.compute_steps += 1;
                Ok(())
            }
            PrbpMove::Delete(v) => match self.state[v.index()] {
                PebbleState::BlueAndLightRed => {
                    self.state[v.index()] = PebbleState::Blue;
                    self.red_count -= 1;
                    Ok(())
                }
                PebbleState::DarkRed => {
                    if self.config.no_delete {
                        return Err(PrbpError::DeleteForbidden(v));
                    }
                    // A dark red pebble may only be dropped once the value is
                    // no longer needed: all out-edges must be marked, and the
                    // node must not be a sink (a sink's value is an output of
                    // the computation and must be saved, never discarded —
                    // this is the "cannot have a valid pebbling" observation
                    // in the proof of Lemma 6.4).
                    if self.unmarked_out[v.index()] != 0 || self.dag.is_sink(v) {
                        return Err(PrbpError::DeleteDarkStillNeeded(v));
                    }
                    self.state[v.index()] = PebbleState::Empty;
                    self.red_count -= 1;
                    Ok(())
                }
                PebbleState::Empty | PebbleState::Blue => Err(PrbpError::DeleteWithoutRed(v)),
            },
            PrbpMove::Clear(v) => {
                if !self.config.allow_clear {
                    return Err(PrbpError::ClearNotAllowed(v));
                }
                if self.dag.is_source(v) || self.dag.is_sink(v) {
                    return Err(PrbpError::ClearOnSourceOrSink(v));
                }
                if self.state[v.index()].has_red() {
                    self.red_count -= 1;
                }
                self.state[v.index()] = PebbleState::Empty;
                // Unmark all in-edges of v so it can be recomputed from scratch.
                for &(u, e) in self.dag.in_edges(v) {
                    if self.marked.remove(e.index()) {
                        self.unmarked_in[v.index()] += 1;
                        self.unmarked_out[u.index()] += 1;
                    }
                }
                Ok(())
            }
        }
    }

    /// Apply a sequence of moves; returns the total I/O cost on success, or
    /// the index of the offending move and the error.
    pub fn run<I: IntoIterator<Item = PrbpMove>>(
        &mut self,
        moves: I,
    ) -> Result<usize, (usize, PrbpError)> {
        for (i, mv) in moves.into_iter().enumerate() {
            self.apply(mv).map_err(|e| (i, e))?;
        }
        Ok(self.io_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::DagBuilder;

    /// a, b -> c (c aggregates two inputs).
    fn join() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    /// a -> b -> c chain.
    fn chain3() -> Dag {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.build().unwrap()
    }

    #[test]
    fn initial_state() {
        let g = join();
        let game = PrbpGame::new(&g, PrbpConfig::new(2));
        assert_eq!(game.pebble_state(NodeId(0)), PebbleState::Blue);
        assert_eq!(game.pebble_state(NodeId(2)), PebbleState::Empty);
        assert_eq!(game.red_count(), 0);
        assert!(!game.is_terminal());
        assert!(game.is_fully_computed(NodeId(0))); // source
        assert!(!game.is_fully_computed(NodeId(2)));
    }

    #[test]
    fn join_pebbled_with_two_red_pebbles() {
        // The key PRBP property: in-degree 2 node computed with only r = 2.
        let g = join();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(2));
        let cost = game
            .run([
                PrbpMove::Load(NodeId(0)),
                PrbpMove::PartialCompute {
                    from: NodeId(0),
                    to: NodeId(2),
                },
                PrbpMove::Delete(NodeId(0)),
                PrbpMove::Load(NodeId(1)),
                PrbpMove::PartialCompute {
                    from: NodeId(1),
                    to: NodeId(2),
                },
                PrbpMove::Delete(NodeId(1)),
                PrbpMove::Save(NodeId(2)),
            ])
            .unwrap();
        assert_eq!(cost, 3);
        assert!(game.is_terminal());
        assert_eq!(game.compute_steps(), 2);
        assert_eq!(game.pebble_state(NodeId(2)), PebbleState::BlueAndLightRed);
    }

    #[test]
    fn rbp_needs_three_but_prbp_two() {
        let g = join();
        // With r = 2, RBP cannot compute node 2 at all (needs 3 simultaneous reds).
        let mut rbp = crate::rbp::RbpGame::new(&g, crate::rbp::RbpConfig::new(2));
        rbp.apply(crate::moves::RbpMove::Load(NodeId(0))).unwrap();
        rbp.apply(crate::moves::RbpMove::Load(NodeId(1))).unwrap();
        assert!(rbp
            .apply(crate::moves::RbpMove::Compute(NodeId(2)))
            .is_err());
    }

    #[test]
    fn partial_compute_preconditions() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3));
        // Input not in fast memory.
        assert_eq!(
            game.apply(PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1)
            }),
            Err(PrbpError::InputNotInFastMemory {
                from: NodeId(0),
                to: NodeId(1)
            })
        );
        game.apply(PrbpMove::Load(NodeId(0))).unwrap();
        // Input of the second edge is not fully computed yet.
        assert_eq!(
            game.apply(PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2)
            }),
            Err(PrbpError::InputNotFullyComputed {
                from: NodeId(1),
                to: NodeId(2)
            })
        );
        // No such edge.
        assert_eq!(
            game.apply(PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(2)
            }),
            Err(PrbpError::NoSuchEdge {
                from: NodeId(0),
                to: NodeId(2)
            })
        );
        game.apply(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        // One-shot: the edge cannot be marked twice.
        assert_eq!(
            game.apply(PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1)
            }),
            Err(PrbpError::EdgeAlreadyMarked {
                from: NodeId(0),
                to: NodeId(1)
            })
        );
    }

    #[test]
    fn target_with_only_blue_must_be_loaded_first() {
        let g = join();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3));
        game.apply(PrbpMove::Load(NodeId(0))).unwrap();
        game.apply(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(2),
        })
        .unwrap();
        // Save the partial value of node 2, then delete its light red pebble:
        // node 2 is now blue-only.
        game.apply(PrbpMove::Save(NodeId(2))).unwrap();
        game.apply(PrbpMove::Delete(NodeId(2))).unwrap();
        assert_eq!(game.pebble_state(NodeId(2)), PebbleState::Blue);
        game.apply(PrbpMove::Load(NodeId(1))).unwrap();
        // Aggregating into a blue-only node is forbidden.
        assert_eq!(
            game.apply(PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2)
            }),
            Err(PrbpError::TargetOnlyInSlowMemory {
                from: NodeId(1),
                to: NodeId(2)
            })
        );
        // Loading it back makes the aggregation legal again.
        game.apply(PrbpMove::Load(NodeId(2))).unwrap();
        game.apply(PrbpMove::PartialCompute {
            from: NodeId(1),
            to: NodeId(2),
        })
        .unwrap();
        assert_eq!(game.pebble_state(NodeId(2)), PebbleState::DarkRed);
        game.apply(PrbpMove::Save(NodeId(2))).unwrap();
        assert!(game.is_terminal());
        assert_eq!(game.io_cost(), 5);
    }

    #[test]
    fn dark_red_delete_requires_marked_out_edges() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3));
        game.apply(PrbpMove::Load(NodeId(0))).unwrap();
        game.apply(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        // Node 1 is dark red and its out-edge (1, 2) is unmarked: delete is illegal.
        assert_eq!(
            game.apply(PrbpMove::Delete(NodeId(1))),
            Err(PrbpError::DeleteDarkStillNeeded(NodeId(1)))
        );
        game.apply(PrbpMove::PartialCompute {
            from: NodeId(1),
            to: NodeId(2),
        })
        .unwrap();
        // Now all out-edges of node 1 are marked and the dark pebble can go.
        game.apply(PrbpMove::Delete(NodeId(1))).unwrap();
        assert_eq!(game.pebble_state(NodeId(1)), PebbleState::Empty);
    }

    #[test]
    fn capacity_is_enforced() {
        let g = join();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(1));
        game.apply(PrbpMove::Load(NodeId(0))).unwrap();
        assert_eq!(
            game.apply(PrbpMove::Load(NodeId(1))),
            Err(PrbpError::CapacityExceeded { r: 1 })
        );
        assert_eq!(
            game.apply(PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(2)
            }),
            Err(PrbpError::CapacityExceeded { r: 1 })
        );
    }

    #[test]
    fn save_and_delete_preconditions() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3));
        assert_eq!(
            game.apply(PrbpMove::Save(NodeId(0))),
            Err(PrbpError::SaveWithoutDarkRed(NodeId(0)))
        );
        assert_eq!(
            game.apply(PrbpMove::Delete(NodeId(0))),
            Err(PrbpError::DeleteWithoutRed(NodeId(0)))
        );
        game.apply(PrbpMove::Load(NodeId(0))).unwrap();
        // A loaded source is light red: saving it is illegal (not dark).
        assert_eq!(
            game.apply(PrbpMove::Save(NodeId(0))),
            Err(PrbpError::SaveWithoutDarkRed(NodeId(0)))
        );
        // Deleting the light red pebble keeps the blue pebble.
        game.apply(PrbpMove::Delete(NodeId(0))).unwrap();
        assert_eq!(game.pebble_state(NodeId(0)), PebbleState::Blue);
    }

    #[test]
    fn terminal_requires_marked_edges_and_blue_sinks() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3));
        game.run([
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
            PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2),
            },
        ])
        .unwrap();
        assert!(!game.is_terminal()); // sink not yet saved
        game.apply(PrbpMove::Save(NodeId(2))).unwrap();
        assert!(game.is_terminal());
    }

    #[test]
    fn clear_variant_unmarks_in_edges() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3).with_clear());
        game.run([
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
        ])
        .unwrap();
        assert!(game.is_fully_computed(NodeId(1)));
        game.apply(PrbpMove::Clear(NodeId(1))).unwrap();
        assert_eq!(game.pebble_state(NodeId(1)), PebbleState::Empty);
        assert!(!game.is_fully_computed(NodeId(1)));
        assert_eq!(game.red_count(), 1); // only the source remains red
                                         // Re-computation is possible again.
        game.apply(PrbpMove::PartialCompute {
            from: NodeId(0),
            to: NodeId(1),
        })
        .unwrap();
        assert!(game.is_fully_computed(NodeId(1)));
    }

    #[test]
    fn clear_rejected_without_flag_and_on_sources() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3));
        assert_eq!(
            game.apply(PrbpMove::Clear(NodeId(1))),
            Err(PrbpError::ClearNotAllowed(NodeId(1)))
        );
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3).with_clear());
        assert_eq!(
            game.apply(PrbpMove::Clear(NodeId(0))),
            Err(PrbpError::ClearOnSourceOrSink(NodeId(0)))
        );
        assert_eq!(
            game.apply(PrbpMove::Clear(NodeId(2))),
            Err(PrbpError::ClearOnSourceOrSink(NodeId(2)))
        );
    }

    #[test]
    fn no_delete_variant_forbids_dark_deletion() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(3).with_no_delete());
        game.run([
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
            PrbpMove::PartialCompute {
                from: NodeId(1),
                to: NodeId(2),
            },
        ])
        .unwrap();
        assert_eq!(
            game.apply(PrbpMove::Delete(NodeId(1))),
            Err(PrbpError::DeleteForbidden(NodeId(1)))
        );
        // Saving first turns it light red, which may then be deleted.
        game.apply(PrbpMove::Save(NodeId(1))).unwrap();
        game.apply(PrbpMove::Delete(NodeId(1))).unwrap();
        assert_eq!(game.pebble_state(NodeId(1)), PebbleState::Blue);
    }

    #[test]
    fn packed_words_mirror_the_documented_plane_layout() {
        // The contract heuristic searches rely on: `[red | blue]` node
        // planes plus a `[marked]` edge plane, every bit agreeing with the
        // game accessors — so equal configurations encode identically.
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(2));
        game.run([
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
            PrbpMove::Delete(NodeId(0)),
        ])
        .unwrap();
        let words = game.packed_words();
        let wn = crate::packed::plane_words(g.node_count());
        let wm = crate::packed::plane_words(g.edge_count());
        assert_eq!(words.len(), 2 * wn + wm);
        for v in g.nodes() {
            let i = v.index();
            let st = game.pebble_state(v);
            assert_eq!(crate::packed::get(&words[..wn], i), st.has_red());
            assert_eq!(crate::packed::get(&words[wn..2 * wn], i), st.has_blue());
        }
        for e in g.edges() {
            assert_eq!(
                crate::packed::get(&words[2 * wn..], e.index()),
                game.is_marked(e)
            );
        }
        // Equal configurations produce equal words.
        let mut twin = PrbpGame::new(&g, PrbpConfig::new(2));
        twin.run([
            PrbpMove::Load(NodeId(0)),
            PrbpMove::PartialCompute {
                from: NodeId(0),
                to: NodeId(1),
            },
            PrbpMove::Delete(NodeId(0)),
        ])
        .unwrap();
        assert_eq!(twin.packed_words(), words);
    }

    #[test]
    fn run_reports_offending_move_index() {
        let g = chain3();
        let mut game = PrbpGame::new(&g, PrbpConfig::new(2));
        let err = game
            .run([
                PrbpMove::Load(NodeId(0)),
                PrbpMove::PartialCompute {
                    from: NodeId(1),
                    to: NodeId(2),
                },
            ])
            .unwrap_err();
        assert_eq!(err.0, 1);
    }
}

//! Strategies for the Proposition 4.7 chained-gadget DAG: `OPT_PRBP = 2`
//! while `OPT_RBP = Θ(n)` with `r = 4`.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::ChainedGadgets;

/// The cache size used in Proposition 4.7.
pub const CHAIN_CACHE: usize = 4;

/// The PRBP strategy of cost 2 (only the trivial cost) for the chained-gadget
/// DAG with `r = 4`: each gadget is traversed with partial computations while
/// keeping dark red pebbles only on its boundary nodes.
pub fn prbp_trace(c: &ChainedGadgets) -> PrbpTrace {
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let mut t = PrbpTrace::new();
    let first = &c.gadgets[0];
    t.push(PrbpMove::Load(c.u0));
    t.push(pc(c.u0, first[0]));
    t.push(pc(c.u0, first[1]));
    t.push(PrbpMove::Delete(c.u0));
    for g in &c.gadgets {
        let [u1, u2, w1, w2, w3, w4, v1, v2] = *g;
        t.push(pc(u1, w1));
        t.push(pc(w1, w3));
        t.push(PrbpMove::Delete(w1));
        t.push(pc(u1, w2));
        t.push(pc(w2, w3));
        t.push(PrbpMove::Delete(w2));
        t.push(pc(u1, w4));
        t.push(pc(w3, w4));
        t.push(PrbpMove::Delete(u1));
        t.push(PrbpMove::Delete(w3));
        t.push(pc(w4, v1));
        t.push(pc(w4, v2));
        t.push(pc(u2, v1));
        t.push(pc(u2, v2));
        t.push(PrbpMove::Delete(w4));
        t.push(PrbpMove::Delete(u2));
    }
    let last = c.gadgets.last().expect("at least one gadget");
    t.push(pc(last[6], c.v0));
    t.push(pc(last[7], c.v0));
    t.push(PrbpMove::Save(c.v0));
    t
}

/// An RBP strategy of cost `2·copies + 2` for the chained-gadget DAG with
/// `r = 4`: inside each gadget the exit value `u2` has to be spilled to slow
/// memory and reloaded, matching (up to a factor of two) the `Θ(n)` lower
/// bound of Proposition 4.7.
pub fn rbp_trace(c: &ChainedGadgets) -> RbpTrace {
    let mut t = RbpTrace::new();
    let first = &c.gadgets[0];
    t.push(RbpMove::Load(c.u0));
    t.push(RbpMove::Compute(first[0]));
    t.push(RbpMove::Compute(first[1]));
    t.push(RbpMove::Delete(c.u0));
    for g in &c.gadgets {
        let [u1, u2, w1, w2, w3, w4, v1, v2] = *g;
        // Red pebbles on entry: {u1, u2}.
        t.push(RbpMove::Compute(w1));
        t.push(RbpMove::Compute(w2));
        // All four pebbles are in use; spill u2 to make room for w3.
        t.push(RbpMove::Save(u2));
        t.push(RbpMove::Delete(u2));
        t.push(RbpMove::Compute(w3));
        t.push(RbpMove::Delete(w1));
        t.push(RbpMove::Delete(w2));
        t.push(RbpMove::Compute(w4));
        t.push(RbpMove::Delete(w3));
        t.push(RbpMove::Delete(u1));
        t.push(RbpMove::Load(u2));
        t.push(RbpMove::Compute(v1));
        t.push(RbpMove::Compute(v2));
        t.push(RbpMove::Delete(w4));
        t.push(RbpMove::Delete(u2));
        // Red pebbles on exit: {v1, v2} = next gadget's {u1, u2}.
    }
    let last = c.gadgets.last().expect("at least one gadget");
    t.push(RbpMove::Compute(c.v0));
    t.push(RbpMove::Delete(last[6]));
    t.push(RbpMove::Delete(last[7]));
    t.push(RbpMove::Save(c.v0));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::chained_gadgets;

    #[test]
    fn prbp_strategy_has_trivial_cost_for_all_sizes() {
        for copies in [1, 2, 3, 8, 20] {
            let c = chained_gadgets(copies);
            let trace = prbp_trace(&c);
            let cost = trace
                .validate(&c.dag, PrbpConfig::new(CHAIN_CACHE))
                .unwrap();
            assert_eq!(cost, 2, "copies={copies}");
        }
    }

    #[test]
    fn rbp_strategy_costs_two_per_gadget() {
        for copies in [1, 2, 5, 12] {
            let c = chained_gadgets(copies);
            let trace = rbp_trace(&c);
            let cost = trace.validate(&c.dag, RbpConfig::new(CHAIN_CACHE)).unwrap();
            assert_eq!(cost, 2 * copies + 2, "copies={copies}");
        }
    }

    #[test]
    fn prbp_strategy_needs_exactly_four_pebbles() {
        let c = chained_gadgets(3);
        let trace = prbp_trace(&c);
        assert!(trace.validate(&c.dag, PrbpConfig::new(3)).is_err());
        assert!(trace.validate(&c.dag, PrbpConfig::new(4)).is_ok());
    }

    #[test]
    fn exact_optimum_confirms_linear_gap_on_small_instances() {
        // Proposition 4.7 on small instances: OPT_PRBP stays at 2 while
        // OPT_RBP grows by at least 1 per gadget.
        for copies in [1usize, 2] {
            let c = chained_gadgets(copies);
            let prbp_opt = exact::optimal_prbp_cost(
                &c.dag,
                PrbpConfig::new(CHAIN_CACHE),
                exact::SearchConfig::default(),
            )
            .unwrap();
            assert_eq!(prbp_opt, 2);
            let rbp_opt = exact::optimal_rbp_cost(
                &c.dag,
                RbpConfig::new(CHAIN_CACHE),
                exact::SearchConfig::default(),
            )
            .unwrap();
            assert!(rbp_opt >= copies + 2, "copies={copies}, rbp_opt={rbp_opt}");
            assert!(rbp_opt <= 2 * copies + 2);
        }
    }
}

//! Constructive pebbling strategies.
//!
//! Each strategy emits a full move trace which the simulators re-validate;
//! every cost reported by the experiment harness is a *validated* cost, never
//! a formula. Generic strategies work on arbitrary DAGs; the remaining
//! modules implement the (near-)optimal strategies the paper describes for
//! its structured DAGs.
//!
//! | Module | Paper reference |
//! |---|---|
//! | [`topological`] | generic RBP (`r ≥ Δ_in + 1`) and PRBP (`r ≥ 2`) strategies (Section 3) |
//! | [`fig1`] | Appendix A.1 optimal traces for the Figure 1 DAG |
//! | [`chain_gadget`] | Proposition 4.7 strategies for the chained gadget |
//! | [`matvec`] | Proposition 4.3 strategies for matrix–vector multiplication |
//! | [`tree`] | Appendix A.2 strategies for binary / k-ary trees |
//! | [`zipper`] | Section 4.2.1 strategies for the zipper gadget |
//! | [`collection`] | Proposition 4.6 strategies for the pebble-collection gadget |
//! | [`fft`] | blocked butterfly pebbling achieving `O(m·log m / log r)` (Theorem 6.9 upper bound) |
//! | [`matmul`] | tiled matrix multiplication achieving `O(m₁m₂m₃/√r)` (Theorem 6.10 upper bound) |
//! | [`attention`] | streaming (FlashAttention-style) pebbling of the attention DAG (Theorem 6.11) |

pub mod attention;
pub mod chain_gadget;
pub mod collection;
pub mod fft;
pub mod fig1;
pub mod matmul;
pub mod matvec;
pub mod topological;
pub mod tree;
pub mod zipper;

//! Strategies for binary and k-ary reduction trees (Section 4.2.2 and
//! Appendix A.2), with cache size `r = k + 1`.
//!
//! * [`rbp_tree`]: for every node above the bottom two levels, `k − 1`
//!   children are saved and reloaded, giving a total cost of
//!   `k^d + 2·k^(d−1) − 1`.
//! * [`prbp_tree`]: partial computations make the bottom `k + 1` levels free;
//!   every node above them pays `2·(k − 1)` I/O steps, giving a total cost of
//!   `k^d + 2·k^(d−k) − 1` (for `d ≥ k`; smaller trees cost only the trivial
//!   `k^d + 1`).

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::KaryTree;
use pebble_dag::NodeId;

/// Closed-form optimal RBP cost for a depth-`d` k-ary tree with `r = k + 1`
/// (Appendix A.2): `k^d + 2·k^(d−1) − 1` for `d ≥ 2`, and the trivial
/// `k^d + 1` for `d = 1`.
pub fn rbp_tree_cost_formula(k: usize, d: usize) -> usize {
    if d < 2 {
        return k.pow(d as u32) + 1;
    }
    k.pow(d as u32) + 2 * k.pow((d - 1) as u32) - 1
}

/// Closed-form optimal PRBP cost for a depth-`d` k-ary tree with `r = k + 1`
/// (Appendix A.2): `k^d + 2·k^(d−k) − 1` for `d ≥ k`, and the trivial
/// `k^d + 1` for `d < k`.
pub fn prbp_tree_cost_formula(k: usize, d: usize) -> usize {
    if d < k {
        return k.pow(d as u32) + 1;
    }
    k.pow(d as u32) + 2 * k.pow((d - k) as u32) - 1
}

/// The RBP strategy for a k-ary tree with `r = k + 1`, achieving
/// [`rbp_tree_cost_formula`].
pub fn rbp_tree(tree: &KaryTree) -> RbpTrace {
    let mut t = RbpTrace::new();
    rbp_subtree(tree, 0, 0, &mut t);
    t.push(RbpMove::Save(tree.root));
    t.push(RbpMove::Delete(tree.root));
    t
}

/// Recursively pebble the subtree rooted at position `i` of `level`, leaving a
/// single red pebble on its root. `level` counts from the root (level 0).
fn rbp_subtree(tree: &KaryTree, level: usize, i: usize, t: &mut RbpTrace) {
    let v = tree.levels[level][i];
    if level == tree.depth {
        // Leaf.
        t.push(RbpMove::Load(v));
        return;
    }
    let k = tree.k;
    let children: Vec<NodeId> = (0..k).map(|j| tree.child(level, i, j)).collect();
    if level + 1 == tree.depth {
        // Children are leaves: load them all, compute, drop the leaves.
        for &c in &children {
            t.push(RbpMove::Load(c));
        }
        t.push(RbpMove::Compute(v));
        for &c in &children {
            t.push(RbpMove::Delete(c));
        }
        return;
    }
    // General case: compute each child subtree; spill all but the last.
    for (j, _) in children.iter().enumerate() {
        rbp_subtree(tree, level + 1, i * k + j, t);
        if j + 1 < k {
            t.push(RbpMove::Save(children[j]));
            t.push(RbpMove::Delete(children[j]));
        }
    }
    for &c in children.iter().take(k - 1) {
        t.push(RbpMove::Load(c));
    }
    t.push(RbpMove::Compute(v));
    for &c in &children {
        t.push(RbpMove::Delete(c));
    }
}

/// The PRBP strategy for a k-ary tree with `r = k + 1`, achieving
/// [`prbp_tree_cost_formula`].
pub fn prbp_tree(tree: &KaryTree) -> PrbpTrace {
    let mut t = PrbpTrace::new();
    prbp_subtree(tree, 0, 0, &mut t);
    t.push(PrbpMove::Save(tree.root));
    t
}

/// Recursively pebble the subtree rooted at position `i` of `level`, leaving a
/// dark red pebble on its root (or a light red pebble for a leaf).
///
/// The *height* of the node (distance to the leaves) determines the approach:
/// for height ≤ k the whole subtree fits the "aggregate immediately" scheme
/// with peak usage `height + 1 ≤ r` and no I/O beyond the leaf loads; for
/// height > k the partially aggregated value is spilled and reloaded between
/// child subtrees (`2·(k−1)` I/O steps per node).
fn prbp_subtree(tree: &KaryTree, level: usize, i: usize, t: &mut PrbpTrace) {
    let v = tree.levels[level][i];
    if level == tree.depth {
        t.push(PrbpMove::Load(v));
        return;
    }
    let k = tree.k;
    let height = tree.depth - level;
    if height <= k {
        // Small subtree: aggregate every child into v as soon as it is done.
        for j in 0..k {
            let c = tree.child(level, i, j);
            prbp_subtree(tree, level + 1, i * k + j, t);
            t.push(PrbpMove::PartialCompute { from: c, to: v });
            t.push(PrbpMove::Delete(c));
        }
        return;
    }
    // Large subtree: each child needs the full cache, so spill v in between.
    for j in 0..k {
        let c = tree.child(level, i, j);
        if j > 0 {
            // v currently holds a partial value in fast memory; spill it.
            t.push(PrbpMove::Save(v));
            t.push(PrbpMove::Delete(v));
        }
        prbp_subtree(tree, level + 1, i * k + j, t);
        if j > 0 {
            t.push(PrbpMove::Load(v));
        }
        t.push(PrbpMove::PartialCompute { from: c, to: v });
        t.push(PrbpMove::Delete(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::kary_tree;

    #[test]
    fn rbp_binary_trees_match_formula() {
        for d in 1..=6 {
            let tree = kary_tree(2, d);
            let trace = rbp_tree(&tree);
            let cost = trace.validate(&tree.dag, RbpConfig::new(3)).unwrap();
            assert_eq!(cost, rbp_tree_cost_formula(2, d), "d={d}");
        }
    }

    #[test]
    fn prbp_binary_trees_match_formula() {
        for d in 1..=7 {
            let tree = kary_tree(2, d);
            let trace = prbp_tree(&tree);
            let cost = trace.validate(&tree.dag, PrbpConfig::new(3)).unwrap();
            assert_eq!(cost, prbp_tree_cost_formula(2, d), "d={d}");
        }
    }

    #[test]
    fn kary_trees_match_formula() {
        for (k, d) in [(3usize, 2usize), (3, 3), (3, 4), (4, 2), (4, 3), (5, 2)] {
            let tree = kary_tree(k, d);
            let rbp_cost = rbp_tree(&tree)
                .validate(&tree.dag, RbpConfig::new(k + 1))
                .unwrap();
            assert_eq!(rbp_cost, rbp_tree_cost_formula(k, d), "RBP k={k} d={d}");
            let prbp_cost = prbp_tree(&tree)
                .validate(&tree.dag, PrbpConfig::new(k + 1))
                .unwrap();
            assert_eq!(prbp_cost, prbp_tree_cost_formula(k, d), "PRBP k={k} d={d}");
        }
    }

    #[test]
    fn proposition_4_5_gap_for_deep_binary_trees() {
        // For binary trees of depth >= 3 with r = 3, PRBP is strictly better.
        for d in 3..=6 {
            assert!(prbp_tree_cost_formula(2, d) < rbp_tree_cost_formula(2, d));
        }
        // Depth 2 is inside PRBP's free bottom zone (trivial cost 5), while
        // RBP already pays 2 extra I/Os there.
        assert_eq!(prbp_tree_cost_formula(2, 2), 5);
        assert_eq!(rbp_tree_cost_formula(2, 2), 7);
    }

    #[test]
    fn strategy_costs_match_exact_optimum_on_small_trees() {
        // Depth-3 binary tree: the hand strategies hit the true optimum.
        let tree = kary_tree(2, 3);
        let rbp_opt =
            exact::optimal_rbp_cost(&tree.dag, RbpConfig::new(3), exact::SearchConfig::default())
                .unwrap();
        assert_eq!(rbp_opt, rbp_tree_cost_formula(2, 3));
        let prbp_opt = exact::optimal_prbp_cost(
            &tree.dag,
            PrbpConfig::new(3),
            exact::SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(prbp_opt, prbp_tree_cost_formula(2, 3));
    }

    #[test]
    fn strategies_respect_cache_bound_tightly() {
        let tree = kary_tree(2, 4);
        assert!(rbp_tree(&tree)
            .validate(&tree.dag, RbpConfig::new(2))
            .is_err());
        assert!(prbp_tree(&tree)
            .validate(&tree.dag, PrbpConfig::new(2))
            .is_err());
    }
}

//! Strategies for matrix–vector multiplication (Proposition 4.3).
//!
//! * [`prbp_streaming`]: keeps the `m` partially computed output entries in
//!   fast memory and streams the matrix column by column, using only three
//!   further red pebbles — total cost `m² + 2m` (the trivial cost), for any
//!   `r ≥ m + 3`.
//! * [`rbp_row_by_row`]: the matching RBP strategy with `r = 2m` that computes
//!   one output entry at a time and pays one extra reload per consecutive
//!   output pair — total cost `m² + 3m − 1`, matching the RBP lower bound of
//!   Proposition 4.3 exactly.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::MatVecDag;

/// PRBP streaming strategy of cost `m² + 2m`; requires `r ≥ m + 3`.
pub fn prbp_streaming(mv: &MatVecDag) -> PrbpTrace {
    let m = mv.m;
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let mut t = PrbpTrace::new();
    for i in 0..m {
        t.push(PrbpMove::Load(mv.x[i]));
        for j in 0..m {
            t.push(PrbpMove::Load(mv.a[j][i]));
            t.push(pc(mv.a[j][i], mv.prod[j][i]));
            t.push(pc(mv.x[i], mv.prod[j][i]));
            t.push(PrbpMove::Delete(mv.a[j][i]));
            t.push(pc(mv.prod[j][i], mv.y[j]));
            t.push(PrbpMove::Delete(mv.prod[j][i]));
        }
        t.push(PrbpMove::Delete(mv.x[i]));
    }
    for j in 0..m {
        t.push(PrbpMove::Save(mv.y[j]));
    }
    t
}

/// RBP strategy of cost `m² + 3m − 1` with `r = 2m`; requires `m ≥ 2`.
///
/// All `m` vector entries are kept resident; for each output row the last
/// product forces one vector entry (`x₀`) to be evicted, which is reloaded at
/// the start of the next row — `m − 1` non-trivial loads in total.
pub fn rbp_row_by_row(mv: &MatVecDag) -> RbpTrace {
    let m = mv.m;
    assert!(m >= 2, "row-by-row strategy needs m >= 2");
    let mut t = RbpTrace::new();
    for i in 0..m {
        t.push(RbpMove::Load(mv.x[i]));
    }
    for j in 0..m {
        // Products for columns 0..m-1 while all x entries are resident.
        for i in 0..m - 1 {
            t.push(RbpMove::Load(mv.a[j][i]));
            t.push(RbpMove::Compute(mv.prod[j][i]));
            t.push(RbpMove::Delete(mv.a[j][i]));
        }
        // The last product needs one extra slot: evict x₀ (it has a blue
        // pebble, so the delete is free) and restore it for the next row.
        t.push(RbpMove::Delete(mv.x[0]));
        t.push(RbpMove::Load(mv.a[j][m - 1]));
        t.push(RbpMove::Compute(mv.prod[j][m - 1]));
        t.push(RbpMove::Delete(mv.a[j][m - 1]));
        t.push(RbpMove::Compute(mv.y[j]));
        t.push(RbpMove::Save(mv.y[j]));
        t.push(RbpMove::Delete(mv.y[j]));
        for i in 0..m {
            t.push(RbpMove::Delete(mv.prod[j][i]));
        }
        if j + 1 < m {
            t.push(RbpMove::Load(mv.x[0]));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::matvec;

    #[test]
    fn prbp_streaming_achieves_trivial_cost() {
        for m in [3usize, 4, 6, 10] {
            let mv = matvec(m);
            let trace = prbp_streaming(&mv);
            let cost = trace.validate(&mv.dag, PrbpConfig::new(m + 3)).unwrap();
            assert_eq!(cost, mv.trivial_cost(), "m={m}");
            assert_eq!(cost, m * m + 2 * m);
        }
    }

    #[test]
    fn prbp_streaming_needs_m_plus_three_pebbles() {
        let mv = matvec(5);
        let trace = prbp_streaming(&mv);
        assert!(trace.validate(&mv.dag, PrbpConfig::new(7)).is_err());
        assert!(trace.validate(&mv.dag, PrbpConfig::new(8)).is_ok());
    }

    #[test]
    fn rbp_row_by_row_matches_lower_bound_exactly() {
        for m in [3usize, 4, 6, 10] {
            let mv = matvec(m);
            let trace = rbp_row_by_row(&mv);
            let cost = trace.validate(&mv.dag, RbpConfig::new(2 * m)).unwrap();
            assert_eq!(cost, mv.rbp_lower_bound(), "m={m}");
            assert_eq!(cost, m * m + 3 * m - 1);
        }
    }

    #[test]
    fn rbp_row_by_row_needs_two_m_pebbles() {
        let mv = matvec(4);
        let trace = rbp_row_by_row(&mv);
        assert!(trace.validate(&mv.dag, RbpConfig::new(7)).is_err());
        assert!(trace.validate(&mv.dag, RbpConfig::new(8)).is_ok());
    }

    #[test]
    fn proposition_4_3_gap() {
        // For m >= 3 and m + 3 <= r <= 2m, the PRBP strategy beats the RBP
        // lower bound: OPT_PRBP <= m² + 2m < m² + 3m − 1 <= OPT_RBP.
        for m in [3usize, 5, 8] {
            let mv = matvec(m);
            let prbp_cost = prbp_streaming(&mv)
                .validate(&mv.dag, PrbpConfig::new(m + 3))
                .unwrap();
            assert!(prbp_cost < mv.rbp_lower_bound());
        }
    }
}

//! The explicit optimal pebbling strategies for the Figure 1 DAG listed in
//! Appendix A.1 of the paper (Proposition 4.2): `OPT_RBP = 3` and
//! `OPT_PRBP = 2` with `r = 4`.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::Fig1Dag;

/// The cache size used throughout Proposition 4.2.
pub const FIG1_CACHE: usize = 4;

/// The Appendix A.1 RBP strategy of cost 3 for the Figure 1 DAG (`r = 4`).
pub fn rbp_optimal_trace(f: &Fig1Dag) -> RbpTrace {
    let [w1, w2, w3, w4] = f.w;
    RbpTrace::from_moves(vec![
        RbpMove::Load(f.u0),
        RbpMove::Compute(f.u1),
        RbpMove::Delete(f.u0),
        RbpMove::Compute(w1),
        RbpMove::Compute(w2),
        RbpMove::Compute(w3),
        RbpMove::Delete(w1),
        RbpMove::Delete(w2),
        RbpMove::Compute(w4),
        RbpMove::Delete(w3),
        RbpMove::Delete(f.u1),
        RbpMove::Load(f.u0),
        RbpMove::Compute(f.u2),
        RbpMove::Delete(f.u0),
        RbpMove::Compute(f.v1),
        RbpMove::Compute(f.v2),
        RbpMove::Delete(w4),
        RbpMove::Delete(f.u2),
        RbpMove::Compute(f.v0),
        RbpMove::Save(f.v0),
    ])
}

/// The Appendix A.1 PRBP strategy of cost 2 for the Figure 1 DAG (`r = 4`).
pub fn prbp_optimal_trace(f: &Fig1Dag) -> PrbpTrace {
    let [w1, w2, w3, w4] = f.w;
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    PrbpTrace::from_moves(vec![
        PrbpMove::Load(f.u0),
        pc(f.u0, f.u1),
        pc(f.u0, f.u2),
        PrbpMove::Delete(f.u0),
        pc(f.u1, w1),
        pc(w1, w3),
        PrbpMove::Delete(w1),
        pc(f.u1, w2),
        pc(w2, w3),
        PrbpMove::Delete(w2),
        pc(f.u1, w4),
        pc(w3, w4),
        PrbpMove::Delete(f.u1),
        PrbpMove::Delete(w3),
        pc(w4, f.v1),
        pc(w4, f.v2),
        pc(f.u2, f.v1),
        pc(f.u2, f.v2),
        PrbpMove::Delete(w4),
        PrbpMove::Delete(f.u2),
        pc(f.v1, f.v0),
        pc(f.v2, f.v0),
        PrbpMove::Save(f.v0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::fig1_full;

    #[test]
    fn rbp_trace_is_valid_and_costs_three() {
        let f = fig1_full();
        let trace = rbp_optimal_trace(&f);
        assert_eq!(
            trace.validate(&f.dag, RbpConfig::new(FIG1_CACHE)).unwrap(),
            3
        );
    }

    #[test]
    fn prbp_trace_is_valid_and_costs_two() {
        let f = fig1_full();
        let trace = prbp_optimal_trace(&f);
        assert_eq!(
            trace.validate(&f.dag, PrbpConfig::new(FIG1_CACHE)).unwrap(),
            2
        );
    }

    #[test]
    fn traces_match_the_exact_optima() {
        // Proposition 4.2 verified end to end: the hand strategies achieve the
        // exact optima computed by the solvers.
        let f = fig1_full();
        let rbp_opt = exact::optimal_rbp_cost(
            &f.dag,
            RbpConfig::new(FIG1_CACHE),
            exact::SearchConfig::default(),
        )
        .unwrap();
        let prbp_opt = exact::optimal_prbp_cost(
            &f.dag,
            PrbpConfig::new(FIG1_CACHE),
            exact::SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(rbp_opt, 3);
        assert_eq!(prbp_opt, 2);
        assert_eq!(
            rbp_optimal_trace(&f)
                .validate(&f.dag, RbpConfig::new(FIG1_CACHE))
                .unwrap(),
            rbp_opt
        );
        assert_eq!(
            prbp_optimal_trace(&f)
                .validate(&f.dag, PrbpConfig::new(FIG1_CACHE))
                .unwrap(),
            prbp_opt
        );
    }

    #[test]
    fn rbp_trace_fails_with_smaller_cache() {
        let f = fig1_full();
        let trace = rbp_optimal_trace(&f);
        assert!(trace.validate(&f.dag, RbpConfig::new(3)).is_err());
    }

    #[test]
    fn prbp_trace_respects_capacity_four_exactly() {
        // The strategy peaks at exactly 4 red pebbles, so r = 3 must fail.
        let f = fig1_full();
        let trace = prbp_optimal_trace(&f);
        assert!(trace.validate(&f.dag, PrbpConfig::new(3)).is_err());
        assert!(trace.validate(&f.dag, PrbpConfig::new(4)).is_ok());
    }
}

//! A streaming (FlashAttention-style) PRBP pebbling of the full attention DAG
//! (Section 6.3.3, Theorem 6.11).
//!
//! The strategy processes the query rows in blocks of `b` rows. For each
//! query block the (unnormalised) output accumulators stay dark red in fast
//! memory while blocks of `b` key/value rows are streamed through; every
//! streamed element is loaded exactly once per query block. In the large
//! cache regime (`r ≥ Θ(d²)`) the I/O cost is `Θ(m²·d² / r)` — the shape of
//! the Flash Attention upper bound matched by the Theorem 6.11 lower bound.

use crate::moves::PrbpMove;
use crate::trace::PrbpTrace;
use pebble_dag::generators::AttentionFullDag;

/// The query/key block size usable with cache size `r`: the query block
/// (`b·d`), its output accumulators (`b·d`), one key block (`b·d`), one value
/// block (`b·d`) and three scratch nodes must fit: `4·b·d + 3 ≤ r`.
pub fn block_size(r: usize, d: usize) -> Option<usize> {
    let b = (r.saturating_sub(3)) / (4 * d);
    if b == 0 {
        None
    } else {
        Some(b)
    }
}

/// The streaming PRBP strategy for the full attention DAG. Requires
/// `r ≥ 4·d + 3` (block size at least one row).
pub fn prbp_streaming(att: &AttentionFullDag, r: usize) -> Option<PrbpTrace> {
    let b = block_size(r, att.d)?;
    let (m, d) = (att.m, att.d);
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let mut t = PrbpTrace::new();
    let mut i0 = 0;
    while i0 < m {
        let bi = b.min(m - i0);
        // Load the query block; its rows stay resident for the whole sweep.
        for i in i0..i0 + bi {
            for kk in 0..d {
                t.push(PrbpMove::Load(att.q[i][kk]));
            }
        }
        let mut j0 = 0;
        while j0 < m {
            let bj = b.min(m - j0);
            // Load the key and value blocks.
            for j in j0..j0 + bj {
                for kk in 0..d {
                    t.push(PrbpMove::Load(att.k[j][kk]));
                    t.push(PrbpMove::Load(att.v[j][kk]));
                }
            }
            for i in i0..i0 + bi {
                for j in j0..j0 + bj {
                    // Score S_{ij} = Σ_kk Q_{i,kk}·K_{j,kk}.
                    for kk in 0..d {
                        let p = att
                            .dag
                            .successors(att.q[i][kk])
                            .find(|&s| att.dag.has_edge(att.k[j][kk], s))
                            .expect("score product node exists");
                        t.push(pc(att.q[i][kk], p));
                        t.push(pc(att.k[j][kk], p));
                        t.push(pc(p, att.root[i][j]));
                        t.push(PrbpMove::Delete(p));
                    }
                    // Exponentiate and fold into the output accumulators.
                    t.push(pc(att.root[i][j], att.expv[i][j]));
                    t.push(PrbpMove::Delete(att.root[i][j]));
                    for kk in 0..d {
                        let pv = att
                            .dag
                            .successors(att.expv[i][j])
                            .find(|&s| att.dag.has_edge(att.v[j][kk], s))
                            .expect("output product node exists");
                        t.push(pc(att.expv[i][j], pv));
                        t.push(pc(att.v[j][kk], pv));
                        t.push(pc(pv, att.out[i][kk]));
                        t.push(PrbpMove::Delete(pv));
                    }
                    t.push(PrbpMove::Delete(att.expv[i][j]));
                }
            }
            // Drop the key/value blocks.
            for j in j0..j0 + bj {
                for kk in 0..d {
                    t.push(PrbpMove::Delete(att.k[j][kk]));
                    t.push(PrbpMove::Delete(att.v[j][kk]));
                }
            }
            j0 += bj;
        }
        // Write the finished output rows back and drop the query block.
        for i in i0..i0 + bi {
            for kk in 0..d {
                t.push(PrbpMove::Save(att.out[i][kk]));
                t.push(PrbpMove::Delete(att.out[i][kk]));
                t.push(PrbpMove::Delete(att.q[i][kk]));
            }
        }
        i0 += bi;
    }
    Some(t)
}

/// The analytic I/O cost of [`prbp_streaming`]: `m·d` query loads, `2·m·d`
/// key/value loads per query block and `m·d` output saves.
pub fn streaming_cost_estimate(m: usize, d: usize, r: usize) -> Option<usize> {
    let b = block_size(r, d)?;
    let query_blocks = m.div_ceil(b);
    Some(m * d + 2 * m * d * query_blocks + m * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpConfig;
    use pebble_dag::generators::attention_full;

    #[test]
    fn block_size_grows_with_cache() {
        assert_eq!(block_size(10, 2), None);
        assert_eq!(block_size(11, 2), Some(1));
        assert_eq!(block_size(19, 2), Some(2));
        assert_eq!(block_size(67, 2), Some(8));
        assert_eq!(block_size(35, 4), Some(2));
    }

    #[test]
    fn streaming_strategy_is_valid_and_matches_estimate() {
        for (m, d, r) in [
            (3usize, 2usize, 11usize),
            (4, 2, 19),
            (4, 2, 35),
            (3, 3, 15),
            (6, 2, 19),
        ] {
            let att = attention_full(m, d);
            let trace = prbp_streaming(&att, r).expect("streaming strategy exists");
            let cost = trace.validate(&att.dag, PrbpConfig::new(r)).unwrap();
            assert_eq!(
                cost,
                streaming_cost_estimate(m, d, r).unwrap(),
                "m={m} d={d} r={r}"
            );
        }
    }

    #[test]
    fn larger_cache_reduces_streaming_cost() {
        let att = attention_full(8, 2);
        let small = prbp_streaming(&att, 11)
            .unwrap()
            .validate(&att.dag, PrbpConfig::new(11))
            .unwrap();
        let large = prbp_streaming(&att, 67)
            .unwrap()
            .validate(&att.dag, PrbpConfig::new(67))
            .unwrap();
        assert!(large < small);
    }

    #[test]
    fn rejects_too_small_cache() {
        let att = attention_full(3, 2);
        assert!(prbp_streaming(&att, 10).is_none());
    }
}

//! Strategies for the zipper gadget (Section 4.2.1, Proposition 4.4) with
//! cache size `r = d + 2`.
//!
//! * [`rbp_zipper`]: the RBP traversal has to swap the whole resident source
//!   group at every chain step, paying ≈ `d` loads per chain node.
//! * [`prbp_zipper`]: partial computations pre-aggregate the group-A
//!   contribution of every chain node in one pass (one save + one later load
//!   per such node, i.e. 2 I/Os), after which group B stays resident for the
//!   entire chain traversal.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::Zipper;

/// The RBP strategy for the zipper gadget with `r = d + 2`: every chain step
/// evicts the currently resident group and loads the other one.
pub fn rbp_zipper(z: &Zipper) -> RbpTrace {
    let d = z.group_a.len();
    let mut t = RbpTrace::new();
    // Load group A and compute the first chain node.
    for &a in &z.group_a {
        t.push(RbpMove::Load(a));
    }
    t.push(RbpMove::Compute(z.chain[0]));
    for i in 1..z.chain.len() {
        let (incoming, outgoing) = if i % 2 == 1 {
            (&z.group_b, &z.group_a)
        } else {
            (&z.group_a, &z.group_b)
        };
        // Swap the groups one pebble at a time (sources have blue pebbles, so
        // the deletes are free), keeping the previous chain node resident.
        for j in 0..d {
            t.push(RbpMove::Delete(outgoing[j]));
            t.push(RbpMove::Load(incoming[j]));
        }
        t.push(RbpMove::Compute(z.chain[i]));
        t.push(RbpMove::Delete(z.chain[i - 1]));
    }
    let last = *z.chain.last().expect("non-empty chain");
    t.push(RbpMove::Save(last));
    t
}

/// The PRBP strategy for the zipper gadget with `r = d + 2`: phase 1
/// pre-aggregates the group-A inputs of every even chain node and spills the
/// partial values; phase 2 keeps group B resident and walks the chain,
/// reloading each spilled partial value just before it is needed.
pub fn prbp_zipper(z: &Zipper) -> PrbpTrace {
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let mut t = PrbpTrace::new();
    // Phase 1: group A resident; aggregate its contribution into every even
    // chain node and spill the partial value.
    for &a in &z.group_a {
        t.push(PrbpMove::Load(a));
    }
    for (i, &c) in z.chain.iter().enumerate() {
        if i % 2 != 0 {
            continue;
        }
        for &a in &z.group_a {
            t.push(pc(a, c));
        }
        t.push(PrbpMove::Save(c));
        t.push(PrbpMove::Delete(c));
    }
    for &a in &z.group_a {
        t.push(PrbpMove::Delete(a));
    }
    // Phase 2: group B resident; walk the chain.
    for &b in &z.group_b {
        t.push(PrbpMove::Load(b));
    }
    for (i, &c) in z.chain.iter().enumerate() {
        if i % 2 == 0 {
            // The group-A contribution was pre-aggregated; reload it and (for
            // i > 0) fold in the previous chain node.
            t.push(PrbpMove::Load(c));
            if i > 0 {
                t.push(pc(z.chain[i - 1], c));
            }
        } else {
            for &b in &z.group_b {
                t.push(pc(b, c));
            }
            t.push(pc(z.chain[i - 1], c));
        }
        if i > 0 {
            t.push(PrbpMove::Delete(z.chain[i - 1]));
        }
    }
    // The sink is dark red after its final aggregation (any chain longer than
    // one node); save it. A single-node chain was already saved in phase 1.
    if z.chain.len() > 1 {
        let last = *z.chain.last().expect("non-empty chain");
        t.push(PrbpMove::Save(last));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::zipper;

    #[test]
    fn rbp_zipper_is_valid_and_costs_about_d_per_step() {
        for (d, len) in [(3usize, 5usize), (4, 6), (5, 8)] {
            let z = zipper(d, len);
            let trace = rbp_zipper(&z);
            let cost = trace.validate(&z.dag, RbpConfig::new(d + 2)).unwrap();
            // d loads for group A + d·(len−1) swap loads + 1 save.
            assert_eq!(cost, d + d * (len - 1) + 1, "d={d} len={len}");
        }
    }

    #[test]
    fn prbp_zipper_is_valid_and_costs_two_per_even_node() {
        for (d, len) in [(3usize, 5usize), (4, 6), (5, 8), (3, 9)] {
            let z = zipper(d, len);
            let trace = prbp_zipper(&z);
            let cost = trace.validate(&z.dag, PrbpConfig::new(d + 2)).unwrap();
            let even_nodes = len.div_ceil(2);
            // 2d source loads + save/load per even chain node + final save.
            let expected = 2 * d + 2 * even_nodes + 1;
            assert_eq!(cost, expected, "d={d} len={len}");
        }
    }

    #[test]
    fn proposition_4_4_gap() {
        // For d >= 3 and long enough chains the PRBP strategy beats the RBP
        // strategy.
        for d in 3..=6 {
            let len = 8;
            let z = zipper(d, len);
            let rbp_cost = rbp_zipper(&z)
                .validate(&z.dag, RbpConfig::new(d + 2))
                .unwrap();
            let prbp_cost = prbp_zipper(&z)
                .validate(&z.dag, PrbpConfig::new(d + 2))
                .unwrap();
            assert!(prbp_cost < rbp_cost, "d={d}: {prbp_cost} !< {rbp_cost}");
        }
    }

    #[test]
    fn exact_confirms_strategies_are_upper_bounds() {
        // Small enough for the exact solvers: d = 3, chain of 3, r = 5.
        let z = zipper(3, 3);
        let rbp_opt =
            exact::optimal_rbp_cost(&z.dag, RbpConfig::new(5), exact::SearchConfig::default())
                .unwrap();
        let prbp_opt =
            exact::optimal_prbp_cost(&z.dag, PrbpConfig::new(5), exact::SearchConfig::default())
                .unwrap();
        assert!(prbp_opt <= rbp_opt);
        let rbp_strategy = rbp_zipper(&z).validate(&z.dag, RbpConfig::new(5)).unwrap();
        let prbp_strategy = prbp_zipper(&z)
            .validate(&z.dag, PrbpConfig::new(5))
            .unwrap();
        assert!(rbp_opt <= rbp_strategy);
        assert!(prbp_opt <= prbp_strategy);
    }

    #[test]
    fn strategies_respect_the_cache_bound() {
        let z = zipper(4, 6);
        assert!(rbp_zipper(&z).validate(&z.dag, RbpConfig::new(5)).is_err());
        assert!(prbp_zipper(&z)
            .validate(&z.dag, PrbpConfig::new(5))
            .is_err());
    }
}

//! Blocked pebbling of the m-point FFT butterfly (Section 6.3.1).
//!
//! The butterfly is processed in *superstages* of `s = ⌊log₂ r⌋ − 1`
//! consecutive stages. Within a superstage, the rows split into independent
//! classes of `2^s` positions (the positions agreeing on all bits outside the
//! superstage's bit window); each class is loaded once, computed entirely in
//! fast memory and written back once. The resulting I/O cost is
//! `Θ(m·log m / log r)`, matching the Theorem 6.9 lower bound up to a
//! constant factor.

use crate::convert::rbp_to_prbp;
use crate::moves::RbpMove;
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::FftDag;

/// Number of stages per superstage for cache size `r`: the largest `s ≥ 1`
/// with `2^(s+1) ≤ r`. Returns `None` for `r < 4`.
pub fn stages_per_superstage(r: usize) -> Option<usize> {
    if r < 4 {
        return None;
    }
    let mut s = 1usize;
    while (1usize << (s + 2)) <= r {
        s += 1;
    }
    Some(s)
}

/// The analytic cost of the blocked strategy: `2·m` I/Os per superstage.
pub fn blocked_cost_estimate(m: usize, r: usize) -> Option<usize> {
    let s = stages_per_superstage(r)?;
    let stages = m.trailing_zeros() as usize;
    Some(2 * m * stages.div_ceil(s))
}

/// The blocked RBP strategy for the FFT DAG. Requires `r ≥ 4`.
pub fn rbp_blocked(fft: &FftDag, r: usize) -> Option<RbpTrace> {
    let s = stages_per_superstage(r)?;
    let m = fft.m;
    let mut t = RbpTrace::new();
    let mut l0 = 0usize;
    while l0 < fft.stages {
        let width = s.min(fft.stages - l0);
        let class_size = 1usize << width;
        // A class is the set of positions sharing all bits outside the window
        // [l0, l0 + width); its members are base + (j << l0) for j < 2^width.
        for base_high in 0..(m >> (l0 + width)) {
            for base_low in 0..(1usize << l0) {
                let base = (base_high << (l0 + width)) | base_low;
                let members: Vec<usize> = (0..class_size).map(|j| base | (j << l0)).collect();
                // Load the superstage inputs.
                for &pos in &members {
                    t.push(RbpMove::Load(fft.layers[l0][pos]));
                }
                // Compute the stages of the superstage entirely in cache.
                for l in l0..l0 + width {
                    for &pos in &members {
                        t.push(RbpMove::Compute(fft.layers[l + 1][pos]));
                    }
                    for &pos in &members {
                        t.push(RbpMove::Delete(fft.layers[l][pos]));
                    }
                }
                // Write back the superstage outputs.
                for &pos in &members {
                    t.push(RbpMove::Save(fft.layers[l0 + width][pos]));
                    t.push(RbpMove::Delete(fft.layers[l0 + width][pos]));
                }
            }
        }
        l0 += width;
    }
    Some(t)
}

/// The blocked strategy converted to PRBP (Proposition 4.1); same cost.
pub fn prbp_blocked(fft: &FftDag, r: usize) -> Option<PrbpTrace> {
    let rbp = rbp_blocked(fft, r)?;
    rbp_to_prbp(&fft.dag, &rbp, r).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::fft;

    #[test]
    fn superstage_width_grows_with_cache() {
        assert_eq!(stages_per_superstage(3), None);
        assert_eq!(stages_per_superstage(4), Some(1));
        assert_eq!(stages_per_superstage(7), Some(1));
        assert_eq!(stages_per_superstage(8), Some(2));
        assert_eq!(stages_per_superstage(16), Some(3));
        assert_eq!(stages_per_superstage(64), Some(5));
    }

    #[test]
    fn blocked_strategy_is_valid_for_various_sizes() {
        for (m, r) in [
            (8usize, 4usize),
            (8, 8),
            (16, 8),
            (16, 16),
            (32, 8),
            (64, 16),
        ] {
            let f = fft(m);
            let trace = rbp_blocked(&f, r).expect("strategy exists");
            let cost = trace.validate(&f.dag, RbpConfig::new(r)).unwrap();
            assert_eq!(cost, blocked_cost_estimate(m, r).unwrap(), "m={m} r={r}");
            assert!(cost >= f.dag.trivial_cost());
        }
    }

    #[test]
    fn prbp_conversion_preserves_cost() {
        let f = fft(16);
        let rbp_cost = rbp_blocked(&f, 8)
            .unwrap()
            .validate(&f.dag, RbpConfig::new(8))
            .unwrap();
        let prbp = prbp_blocked(&f, 8).unwrap();
        let prbp_cost = prbp.validate(&f.dag, PrbpConfig::new(8)).unwrap();
        assert_eq!(prbp_cost, rbp_cost);
    }

    #[test]
    fn bigger_cache_means_fewer_ios() {
        let f = fft(64);
        let small = rbp_blocked(&f, 4)
            .unwrap()
            .validate(&f.dag, RbpConfig::new(4))
            .unwrap();
        let medium = rbp_blocked(&f, 16)
            .unwrap()
            .validate(&f.dag, RbpConfig::new(16))
            .unwrap();
        let large = rbp_blocked(&f, 128)
            .unwrap()
            .validate(&f.dag, RbpConfig::new(128))
            .unwrap();
        assert!(small > medium);
        assert!(medium > large);
    }

    #[test]
    fn cost_scales_like_m_log_m_over_log_r() {
        // Doubling log2(r) should roughly halve the number of superstages.
        let c8 = blocked_cost_estimate(256, 8).unwrap(); // s = 2 -> 4 superstages
        let c64 = blocked_cost_estimate(256, 64).unwrap(); // s = 5 -> 2 superstages
        assert_eq!(c8, 2 * 256 * 4);
        assert_eq!(c64, 2 * 256 * 2);
    }

    #[test]
    fn rejects_too_small_cache() {
        let f = fft(8);
        assert!(rbp_blocked(&f, 3).is_none());
    }
}

//! Strategies for standard matrix multiplication (Theorem 6.10).
//!
//! * [`prbp_tiled`]: the classic `√r × √r` output tiling, which relies on
//!   partial computations to keep the tile of `C` accumulating in fast memory
//!   while panels of `A` and `B` are streamed. I/O cost
//!   `Θ(m₁·m₂·m₃ / √r)`, matching the Theorem 6.10 lower bound.
//! * [`rbp_naive`]: the straightforward RBP baseline that computes one output
//!   entry at a time and reloads its operands, costing `Θ(m₁·m₂·m₃)`.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::MatMulDag;

/// The largest square tile size usable with cache size `r`: the tile of `C`
/// (`t²` accumulators), one column slice of `A` (`t`), one row slice of `B`
/// (`t`) and one scratch product must fit, i.e. `t² + 2t + 1 ≤ r`.
pub fn tile_size(r: usize) -> Option<usize> {
    let mut t = 0usize;
    while (t + 1) * (t + 1) + 2 * (t + 1) < r {
        t += 1;
    }
    if t == 0 {
        None
    } else {
        Some(t)
    }
}

/// The PRBP tiled strategy. Requires `r ≥ 4` (tile size 1). The output matrix
/// is processed in `t × t` tiles; for each tile all `m₂` rank-1 updates are
/// streamed through fast memory.
pub fn prbp_tiled(mm: &MatMulDag, r: usize) -> Option<PrbpTrace> {
    let t = tile_size(r)?;
    let (m1, m2, m3) = mm.dims;
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let mut trace = PrbpTrace::new();
    let mut i0 = 0;
    while i0 < m1 {
        let ti = t.min(m1 - i0);
        let mut j0 = 0;
        while j0 < m3 {
            let tj = t.min(m3 - j0);
            for k in 0..m2 {
                // Load the A column slice and the B row slice for this k.
                for i in i0..i0 + ti {
                    trace.push(PrbpMove::Load(mm.a[i][k]));
                }
                for j in j0..j0 + tj {
                    trace.push(PrbpMove::Load(mm.b[k][j]));
                }
                // Rank-1 update of the C tile.
                for i in i0..i0 + ti {
                    for j in j0..j0 + tj {
                        let p = mm.prod[i][j][k];
                        trace.push(pc(mm.a[i][k], p));
                        trace.push(pc(mm.b[k][j], p));
                        trace.push(pc(p, mm.c[i][j]));
                        trace.push(PrbpMove::Delete(p));
                    }
                }
                // Drop the slices (light red pebbles: free).
                for i in i0..i0 + ti {
                    trace.push(PrbpMove::Delete(mm.a[i][k]));
                }
                for j in j0..j0 + tj {
                    trace.push(PrbpMove::Delete(mm.b[k][j]));
                }
            }
            // Write the finished tile back.
            for i in i0..i0 + ti {
                for j in j0..j0 + tj {
                    trace.push(PrbpMove::Save(mm.c[i][j]));
                    trace.push(PrbpMove::Delete(mm.c[i][j]));
                }
            }
            j0 += tj;
        }
        i0 += ti;
    }
    Some(trace)
}

/// The analytic I/O cost of [`prbp_tiled`] with tile size `t` (full tiles):
/// `m₂·(t_i + t_j)` loads per tile plus one save per output entry.
pub fn tiled_cost_estimate(mm: &MatMulDag, r: usize) -> Option<usize> {
    let t = tile_size(r)?;
    let (m1, m2, m3) = mm.dims;
    let mut loads = 0usize;
    let mut i0 = 0;
    while i0 < m1 {
        let ti = t.min(m1 - i0);
        let mut j0 = 0;
        while j0 < m3 {
            let tj = t.min(m3 - j0);
            loads += m2 * (ti + tj);
            j0 += tj;
        }
        i0 += ti;
    }
    Some(loads + m1 * m3)
}

/// The naive RBP baseline: each output entry is computed on its own, loading
/// both operands of every multiplication. Requires `r ≥ m₂ + 3`.
pub fn rbp_naive(mm: &MatMulDag, r: usize) -> Option<RbpTrace> {
    let (m1, m2, m3) = mm.dims;
    if r < m2 + 3 {
        return None;
    }
    let mut trace = RbpTrace::new();
    for i in 0..m1 {
        for j in 0..m3 {
            for k in 0..m2 {
                trace.push(RbpMove::Load(mm.a[i][k]));
                trace.push(RbpMove::Load(mm.b[k][j]));
                trace.push(RbpMove::Compute(mm.prod[i][j][k]));
                trace.push(RbpMove::Delete(mm.a[i][k]));
                trace.push(RbpMove::Delete(mm.b[k][j]));
            }
            trace.push(RbpMove::Compute(mm.c[i][j]));
            trace.push(RbpMove::Save(mm.c[i][j]));
            trace.push(RbpMove::Delete(mm.c[i][j]));
            for k in 0..m2 {
                trace.push(RbpMove::Delete(mm.prod[i][j][k]));
            }
        }
    }
    Some(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::matmul;

    #[test]
    fn tile_size_grows_with_cache() {
        assert_eq!(tile_size(3), None);
        assert_eq!(tile_size(4), Some(1));
        assert_eq!(tile_size(8), Some(1));
        assert_eq!(tile_size(9), Some(2));
        assert_eq!(tile_size(16), Some(3));
        assert_eq!(tile_size(100), Some(9));
    }

    #[test]
    fn tiled_strategy_is_valid_and_matches_estimate() {
        for (dims, r) in [
            ((3usize, 3usize, 3usize), 9usize),
            ((4, 4, 4), 16),
            ((4, 5, 6), 9),
            ((6, 6, 6), 24),
        ] {
            let mm = matmul(dims.0, dims.1, dims.2);
            let trace = prbp_tiled(&mm, r).expect("tiled strategy exists");
            let cost = trace.validate(&mm.dag, PrbpConfig::new(r)).unwrap();
            assert_eq!(cost, tiled_cost_estimate(&mm, r).unwrap(), "{dims:?} r={r}");
        }
    }

    #[test]
    fn naive_rbp_is_valid_and_much_more_expensive() {
        let mm = matmul(4, 4, 4);
        let r = 4 + 3;
        let naive = rbp_naive(&mm, r)
            .unwrap()
            .validate(&mm.dag, RbpConfig::new(r))
            .unwrap();
        assert_eq!(naive, 2 * 64 + 16);
        let tiled = prbp_tiled(&mm, 16)
            .unwrap()
            .validate(&mm.dag, PrbpConfig::new(16))
            .unwrap();
        assert!(tiled < naive);
    }

    #[test]
    fn bigger_cache_reduces_tiled_cost() {
        let mm = matmul(8, 8, 8);
        let small = prbp_tiled(&mm, 9)
            .unwrap()
            .validate(&mm.dag, PrbpConfig::new(9))
            .unwrap();
        let large = prbp_tiled(&mm, 36)
            .unwrap()
            .validate(&mm.dag, PrbpConfig::new(36))
            .unwrap();
        assert!(large < small);
    }

    #[test]
    fn rejects_too_small_caches() {
        let mm = matmul(3, 3, 3);
        assert!(prbp_tiled(&mm, 3).is_none());
        assert!(rbp_naive(&mm, 5).is_none());
    }

    #[test]
    fn matvec_special_case_is_handled() {
        // m3 = 1 degenerates to matrix-vector multiplication and still works.
        let mm = matmul(4, 4, 1);
        let trace = prbp_tiled(&mm, 9).unwrap();
        assert!(trace.validate(&mm.dag, PrbpConfig::new(9)).is_ok());
    }
}

//! Generic pebbling strategies that work on arbitrary DAGs.
//!
//! * [`rbp_topological`] pebbles any DAG in RBP provided `r ≥ Δ_in + 1`,
//!   processing the nodes in topological order and evicting via a
//!   save-then-delete policy.
//! * [`prbp_topological`] pebbles any DAG in PRBP with as few as `r = 2` red
//!   pebbles (the observation at the end of Section 3), aggregating the
//!   in-edges of each node one at a time.
//!
//! Neither strategy is optimal in general; they are baselines, fallbacks and
//! the "any valid pebbling" witnesses used by the partition tooling.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::{topo, Dag, NodeId};

/// A generic RBP strategy processing nodes in topological order. Returns
/// `None` if `r < Δ_in + 1` (no valid RBP pebbling exists).
pub fn rbp_topological(dag: &Dag, r: usize) -> Option<RbpTrace> {
    if r < dag.max_in_degree() + 1 {
        return None;
    }
    let n = dag.node_count();
    let mut red = vec![false; n];
    let mut blue = vec![false; n];
    let mut computed = vec![false; n];
    let mut red_count = 0usize;
    for v in dag.nodes() {
        if dag.is_source(v) {
            blue[v.index()] = true;
        }
    }
    let mut trace = RbpTrace::new();
    let order = topo::topological_order(dag);

    for &v in &order {
        if dag.is_source(v) {
            continue;
        }
        let needed: Vec<NodeId> = dag.predecessors(v).collect();
        let missing = needed.iter().filter(|u| !red[u.index()]).count();

        // Free up space: first drop red pebbles that are no longer needed
        // (all successors computed), then save-and-drop arbitrary other
        // pebbles until the inputs and the output fit.
        let mut evict_candidates: Vec<NodeId> = dag
            .nodes()
            .filter(|&w| red[w.index()] && !needed.contains(&w) && w != v)
            .collect();
        // Dead pebbles first (free), then pebbles that already have a blue copy.
        evict_candidates.sort_by_key(|&w| {
            let dead = dag.successors(w).all(|s| computed[s.index()]);
            let has_blue = blue[w.index()];
            (!dead as u8, !has_blue as u8)
        });
        let mut ei = 0;
        while red_count + missing + 1 > r {
            let w = evict_candidates[ei];
            ei += 1;
            let dead = dag.successors(w).all(|s| computed[s.index()]);
            if !dead && !blue[w.index()] {
                trace.push(RbpMove::Save(w));
                blue[w.index()] = true;
            }
            trace.push(RbpMove::Delete(w));
            red[w.index()] = false;
            red_count -= 1;
        }

        for &u in &needed {
            if !red[u.index()] {
                debug_assert!(blue[u.index()], "value of {u:?} lost");
                trace.push(RbpMove::Load(u));
                red[u.index()] = true;
                red_count += 1;
            }
        }
        trace.push(RbpMove::Compute(v));
        red[v.index()] = true;
        red_count += 1;
        computed[v.index()] = true;
        if dag.is_sink(v) {
            trace.push(RbpMove::Save(v));
            blue[v.index()] = true;
            trace.push(RbpMove::Delete(v));
            red[v.index()] = false;
            red_count -= 1;
        }
    }
    Some(trace)
}

/// A generic PRBP strategy processing nodes in topological order and
/// aggregating in-edges one at a time; works for any `r ≥ 2`. Returns `None`
/// for `r < 2`.
pub fn prbp_topological(dag: &Dag, r: usize) -> Option<PrbpTrace> {
    if r < 2 {
        return None;
    }
    let n = dag.node_count();
    // Node states mirrored from the simulator: 0 = empty, 1 = blue,
    // 2 = blue + light red, 3 = dark red.
    const EMPTY: u8 = 0;
    const BLUE: u8 = 1;
    const LIGHT: u8 = 2;
    const DARK: u8 = 3;
    let mut state = vec![EMPTY; n];
    let mut marked_out = vec![0usize; n];
    for v in dag.nodes() {
        if dag.is_source(v) {
            state[v.index()] = BLUE;
        }
    }
    let mut red_count = 0usize;
    let mut trace = PrbpTrace::new();
    let order = topo::topological_order(dag);

    // Evict one red pebble that is neither `keep_a` nor `keep_b`.
    let evict_one = |state: &mut Vec<u8>,
                     marked_out: &Vec<usize>,
                     red_count: &mut usize,
                     trace: &mut PrbpTrace,
                     keep_a: NodeId,
                     keep_b: NodeId| {
        // Prefer: dark pebbles whose out-edges are all marked (free delete),
        // then light reds (free delete, blue copy remains), then dark pebbles
        // that must be saved first.
        let mut best: Option<(u8, NodeId)> = None;
        for w in dag.nodes() {
            if w == keep_a || w == keep_b {
                continue;
            }
            let priority = match state[w.index()] {
                DARK if marked_out[w.index()] == dag.out_degree(w) && !dag.is_sink(w) => 0,
                LIGHT => 1,
                DARK => 2,
                _ => continue,
            };
            if best.map_or(true, |(p, _)| priority < p) {
                best = Some((priority, w));
            }
        }
        let (priority, w) = best.expect("r >= 2 guarantees an evictable pebble");
        match priority {
            0 => {
                trace.push(PrbpMove::Delete(w));
                state[w.index()] = EMPTY;
            }
            1 => {
                trace.push(PrbpMove::Delete(w));
                state[w.index()] = BLUE;
            }
            _ => {
                trace.push(PrbpMove::Save(w));
                trace.push(PrbpMove::Delete(w));
                state[w.index()] = BLUE;
            }
        }
        *red_count -= 1;
    };

    for &v in &order {
        if dag.is_source(v) {
            continue;
        }
        for &(u, _) in dag.in_edges(v) {
            // Make room for u (if it must be loaded) and for v's accumulator.
            loop {
                let mut required = 0;
                if !matches!(state[u.index()], LIGHT | DARK) {
                    required += 1;
                }
                if !matches!(state[v.index()], LIGHT | DARK) {
                    required += 1;
                }
                if red_count + required <= r {
                    break;
                }
                evict_one(&mut state, &marked_out, &mut red_count, &mut trace, u, v);
            }
            if !matches!(state[u.index()], LIGHT | DARK) {
                debug_assert_eq!(state[u.index()], BLUE, "value of {u:?} lost");
                trace.push(PrbpMove::Load(u));
                state[u.index()] = LIGHT;
                red_count += 1;
            }
            if !matches!(state[v.index()], LIGHT | DARK) {
                red_count += 1;
            }
            trace.push(PrbpMove::PartialCompute { from: u, to: v });
            state[v.index()] = DARK;
            marked_out[u.index()] += 1;
        }
        if dag.is_sink(v) {
            trace.push(PrbpMove::Save(v));
            state[v.index()] = LIGHT;
            trace.push(PrbpMove::Delete(v));
            state[v.index()] = BLUE;
            red_count -= 1;
        }
    }
    Some(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::{
        binary_tree, fft, fig1_full, matvec, pebble_collection, random_layered, zipper,
        RandomLayeredConfig,
    };

    fn check_rbp(dag: &Dag, r: usize) -> usize {
        let trace = rbp_topological(dag, r).expect("strategy exists");
        trace
            .validate(dag, RbpConfig::new(r))
            .expect("valid RBP trace")
    }

    fn check_prbp(dag: &Dag, r: usize) -> usize {
        let trace = prbp_topological(dag, r).expect("strategy exists");
        trace
            .validate(dag, PrbpConfig::new(r))
            .expect("valid PRBP trace")
    }

    #[test]
    fn rbp_topological_valid_on_structured_dags() {
        let fig1 = fig1_full();
        assert!(check_rbp(&fig1.dag, 4) >= 2);
        let t = binary_tree(3);
        assert!(check_rbp(&t, 3) >= 9);
        let mv = matvec(3);
        assert!(check_rbp(&mv.dag, mv.dag.max_in_degree() + 2) >= mv.trivial_cost());
        let f = fft(8);
        assert!(check_rbp(&f.dag, 4) >= 16);
    }

    #[test]
    fn rbp_topological_rejects_small_cache() {
        let mv = matvec(3);
        assert!(rbp_topological(&mv.dag, 3).is_none());
    }

    #[test]
    fn prbp_topological_works_with_two_pebbles_everywhere() {
        let fig1 = fig1_full();
        assert!(check_prbp(&fig1.dag, 2) >= 2);
        let t = binary_tree(4);
        assert!(check_prbp(&t, 2) >= 17);
        let mv = matvec(4);
        assert!(check_prbp(&mv.dag, 2) >= mv.trivial_cost());
        let z = zipper(3, 6);
        assert!(check_prbp(&z.dag, 2) >= 7);
        let p = pebble_collection(3, 9);
        assert!(check_prbp(&p.dag, 2) >= 4);
    }

    #[test]
    fn prbp_topological_rejects_cache_of_one() {
        let fig1 = fig1_full();
        assert!(prbp_topological(&fig1.dag, 1).is_none());
    }

    #[test]
    fn larger_cache_never_increases_strategy_cost() {
        let mv = matvec(3);
        let r_min = mv.dag.max_in_degree() + 1;
        let mut prev = usize::MAX;
        for r in [r_min, r_min + 2, r_min + 4, 2 * r_min] {
            let cost = check_rbp(&mv.dag, r);
            assert!(cost <= prev, "cost should not increase with more cache");
            prev = cost;
        }
    }

    #[test]
    fn random_dags_are_pebbled_validly() {
        for seed in 0..5 {
            let dag = random_layered(RandomLayeredConfig {
                layers: 4,
                width: 6,
                max_in_degree: 3,
                seed,
            });
            let r = dag.max_in_degree() + 1;
            let rbp_cost = check_rbp(&dag, r);
            let prbp_cost = check_prbp(&dag, r);
            assert!(rbp_cost >= dag.trivial_cost());
            assert!(prbp_cost >= dag.trivial_cost());
        }
    }

    #[test]
    fn prbp_with_ample_cache_reaches_trivial_cost_on_trees() {
        // With r much larger than the tree, nothing is ever evicted, so the
        // strategy pays only the trivial cost.
        let t = binary_tree(3);
        let cost = check_prbp(&t, 64);
        assert_eq!(cost, t.trivial_cost());
    }
}

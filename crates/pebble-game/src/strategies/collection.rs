//! Strategies for the pebble-collection gadget (Section 4.2.3, Figure 2
//! right, Proposition 4.6).
//!
//! With `d + 2` red pebbles the gadget is pebbled at the trivial cost (all
//! sources stay resident while the chain is traversed); with fewer pebbles
//! every `Θ(d)` chain steps force a reload, matching the `ℓ / 2d` lower bound
//! of Proposition 4.6 up to a constant factor.

use crate::moves::{PrbpMove, RbpMove};
use crate::trace::{PrbpTrace, RbpTrace};
use pebble_dag::generators::PebbleCollection;

/// RBP strategy with `r = d + 2`: all sources resident, chain traversed once;
/// only the trivial cost `d + 1`.
pub fn rbp_full_cache(p: &PebbleCollection) -> RbpTrace {
    let mut t = RbpTrace::new();
    for &s in &p.sources {
        t.push(RbpMove::Load(s));
    }
    for (i, &c) in p.chain.iter().enumerate() {
        t.push(RbpMove::Compute(c));
        if i > 0 {
            t.push(RbpMove::Delete(p.chain[i - 1]));
        }
    }
    let last = *p.chain.last().expect("non-empty chain");
    t.push(RbpMove::Save(last));
    t
}

/// PRBP strategy with `r = d + 2`: all sources resident, chain traversed once;
/// only the trivial cost `d + 1`.
pub fn prbp_full_cache(p: &PebbleCollection) -> PrbpTrace {
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let d = p.sources.len();
    let mut t = PrbpTrace::new();
    for &s in &p.sources {
        t.push(PrbpMove::Load(s));
    }
    for (i, &c) in p.chain.iter().enumerate() {
        t.push(pc(p.sources[i % d], c));
        if i > 0 {
            t.push(pc(p.chain[i - 1], c));
            t.push(PrbpMove::Delete(p.chain[i - 1]));
        }
    }
    let last = *p.chain.last().expect("non-empty chain");
    t.push(PrbpMove::Save(last));
    t
}

/// PRBP strategy for a restricted cache `3 ≤ r < d + 2`: only `r − 2` sources
/// stay resident; whenever the chain needs one of the missing sources it is
/// loaded and immediately dropped again. The cost is the trivial `d + 1` plus
/// roughly `ℓ·(d − r + 2)/d` extra loads, within a constant factor of the
/// `ℓ/2d` lower bound of Proposition 4.6 (for `r = d + 1`).
pub fn prbp_restricted(p: &PebbleCollection, r: usize) -> Option<PrbpTrace> {
    let d = p.sources.len();
    if r < 3 || r >= d + 2 {
        return None;
    }
    let resident = r - 2;
    let pc = |from, to| PrbpMove::PartialCompute { from, to };
    let mut t = PrbpTrace::new();
    for &s in &p.sources[..resident] {
        t.push(PrbpMove::Load(s));
    }
    for (i, &c) in p.chain.iter().enumerate() {
        let src_idx = i % d;
        let src = p.sources[src_idx];
        if src_idx < resident {
            t.push(pc(src, c));
        } else {
            // Borrow the slot of the previous chain node: fold it in first,
            // then drop it, load the missing source, aggregate, drop it again.
            if i > 0 {
                t.push(pc(p.chain[i - 1], c));
                t.push(PrbpMove::Delete(p.chain[i - 1]));
            }
            t.push(PrbpMove::Load(src));
            t.push(pc(src, c));
            t.push(PrbpMove::Delete(src));
            continue;
        }
        if i > 0 {
            t.push(pc(p.chain[i - 1], c));
            t.push(PrbpMove::Delete(p.chain[i - 1]));
        }
    }
    let last = *p.chain.last().expect("non-empty chain");
    t.push(PrbpMove::Save(last));
    Some(t)
}

/// The Proposition 4.6 lower bound on the I/O cost of any PRBP strategy that
/// never holds `d + 2` red pebbles on the gadget simultaneously: `ℓ / 2d`.
pub fn restricted_lower_bound(d: usize, chain_len: usize) -> usize {
    chain_len / (2 * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;
    use pebble_dag::generators::pebble_collection;

    #[test]
    fn full_cache_strategies_cost_only_trivial() {
        for (d, len) in [(3usize, 9usize), (4, 12), (5, 21)] {
            let p = pebble_collection(d, len);
            let rbp_cost = rbp_full_cache(&p)
                .validate(&p.dag, RbpConfig::new(d + 2))
                .unwrap();
            assert_eq!(rbp_cost, d + 1, "RBP d={d}");
            let prbp_cost = prbp_full_cache(&p)
                .validate(&p.dag, PrbpConfig::new(d + 2))
                .unwrap();
            assert_eq!(prbp_cost, d + 1, "PRBP d={d}");
        }
    }

    #[test]
    fn full_cache_strategies_need_d_plus_two() {
        let p = pebble_collection(4, 8);
        assert!(rbp_full_cache(&p)
            .validate(&p.dag, RbpConfig::new(5))
            .is_err());
        assert!(prbp_full_cache(&p)
            .validate(&p.dag, PrbpConfig::new(5))
            .is_err());
    }

    #[test]
    fn restricted_strategy_is_valid_and_respects_lower_bound() {
        for (d, len, r) in [
            (4usize, 16usize, 5usize),
            (4, 16, 4),
            (6, 36, 7),
            (6, 36, 5),
        ] {
            let p = pebble_collection(d, len);
            let trace = prbp_restricted(&p, r).expect("restricted strategy exists");
            let cost = trace.validate(&p.dag, PrbpConfig::new(r)).unwrap();
            let trivial = d + 1;
            let extra = cost - trivial;
            // Proposition 4.6: any strategy that never collects d + 2 pebbles
            // pays at least ℓ/2d beyond nothing; ours is within a small factor.
            assert!(extra >= restricted_lower_bound(d, len), "d={d} r={r}");
            // Missing sources are hit (d − r + 2) times out of every d steps.
            let expected_extra = len.div_ceil(d) * (d - (r - 2));
            assert!(
                extra <= expected_extra,
                "d={d} r={r}: {extra} > {expected_extra}"
            );
        }
    }

    #[test]
    fn restricted_strategy_rejects_bad_cache_sizes() {
        let p = pebble_collection(4, 8);
        assert!(prbp_restricted(&p, 2).is_none());
        assert!(prbp_restricted(&p, 6).is_none());
        assert!(prbp_restricted(&p, 5).is_some());
    }
}

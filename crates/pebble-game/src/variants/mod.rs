//! Model variants of Section 8.1 / Appendix B and their companion
//! constructions.
//!
//! The variant *rules* themselves live in the simulator configurations
//! ([`crate::rbp::RbpConfig`] for sliding / re-computation / no-deletion,
//! [`crate::prbp::PrbpConfig`] for the `clear` rule and no-deletion) and in
//! [`crate::cost::CostModel`] for compute costs. This module provides the
//! *adjusted example DAGs* the appendix uses to show that the paper's
//! separations survive in those variants:
//!
//! * [`fig1_recompute_resistant`] — Appendix B.1: the Figure 1 DAG with an
//!   extra `z₁, z₂` layer below `u₀`, which restores `OPT_RBP = 3` even when
//!   re-computation is allowed (recomputing `u₁` would now require two spare
//!   red pebbles), while PRBP still pays only the trivial cost of 2.
//! * [`fig1_sliding_resistant`] — Appendix B.2: the Figure 1 DAG with an
//!   extra node `w₀` feeding `w₃`, which restores `OPT_RBP = 3` in the
//!   sliding-pebble model, while PRBP still pays only 2.
//! * [`no_delete_lower_bound`] — Appendix B.4: in the no-deletion variant
//!   every node except the final `r` resident ones must be saved, so
//!   `OPT ≥ n − r`.

use pebble_dag::{Dag, DagBuilder, NodeId};

/// The Appendix B.1 modification of the Figure 1 DAG: a layer `z₁, z₂` is
/// inserted between `u₀` and `u₁, u₂`.
#[derive(Debug, Clone)]
pub struct Fig1Variant {
    /// The modified DAG.
    pub dag: Dag,
    /// The unique source.
    pub u0: NodeId,
    /// The inserted nodes (the `z` layer for B.1, the single `w₀` for B.2).
    pub inserted: Vec<NodeId>,
    /// Entry node u1 of the inner gadget.
    pub u1: NodeId,
    /// Entry node u2 of the inner gadget.
    pub u2: NodeId,
    /// Internal nodes w1..w4.
    pub w: [NodeId; 4],
    /// Exit node v1.
    pub v1: NodeId,
    /// Exit node v2.
    pub v2: NodeId,
    /// The unique sink.
    pub v0: NodeId,
}

fn build_inner(b: &mut DagBuilder) -> (NodeId, NodeId, [NodeId; 4], NodeId, NodeId) {
    let u1 = b.add_labeled_node("u1");
    let u2 = b.add_labeled_node("u2");
    let w1 = b.add_labeled_node("w1");
    let w2 = b.add_labeled_node("w2");
    let w3 = b.add_labeled_node("w3");
    let w4 = b.add_labeled_node("w4");
    let v1 = b.add_labeled_node("v1");
    let v2 = b.add_labeled_node("v2");
    b.add_edge(u1, w1);
    b.add_edge(u1, w2);
    b.add_edge(w1, w3);
    b.add_edge(w2, w3);
    b.add_edge(u1, w4);
    b.add_edge(w3, w4);
    b.add_edge(w4, v1);
    b.add_edge(u2, v1);
    b.add_edge(w4, v2);
    b.add_edge(u2, v2);
    (u1, u2, [w1, w2, w3, w4], v1, v2)
}

/// Figure 1 adjusted for the re-computation variant (Appendix B.1): `u₀` now
/// feeds a two-node layer `z₁, z₂` and both `z` nodes feed `u₁` and `u₂`.
pub fn fig1_recompute_resistant() -> Fig1Variant {
    let mut b = DagBuilder::new();
    let u0 = b.add_labeled_node("u0");
    let z1 = b.add_labeled_node("z1");
    let z2 = b.add_labeled_node("z2");
    let (u1, u2, w, v1, v2) = build_inner(&mut b);
    let v0 = b.add_labeled_node("v0");
    b.add_edge(u0, z1);
    b.add_edge(u0, z2);
    b.add_edge(z1, u1);
    b.add_edge(z2, u1);
    b.add_edge(z1, u2);
    b.add_edge(z2, u2);
    b.add_edge(v1, v0);
    b.add_edge(v2, v0);
    let dag = b.build().expect("B.1 variant DAG is valid");
    Fig1Variant {
        dag,
        u0,
        inserted: vec![z1, z2],
        u1,
        u2,
        w,
        v1,
        v2,
        v0,
    }
}

/// Figure 1 adjusted for the sliding-pebble variant (Appendix B.2): an extra
/// node `w₀` with `u₁ → w₀ → w₃`, so `w₃` has three in-neighbours and sliding
/// no longer saves a pebble there.
pub fn fig1_sliding_resistant() -> Fig1Variant {
    let mut b = DagBuilder::new();
    let u0 = b.add_labeled_node("u0");
    let (u1, u2, w, v1, v2) = build_inner(&mut b);
    let w0 = b.add_labeled_node("w0");
    let v0 = b.add_labeled_node("v0");
    b.add_edge(u0, u1);
    b.add_edge(u0, u2);
    b.add_edge(u1, w0);
    b.add_edge(w0, w[2]);
    b.add_edge(v1, v0);
    b.add_edge(v2, v0);
    let dag = b.build().expect("B.2 variant DAG is valid");
    Fig1Variant {
        dag,
        u0,
        inserted: vec![w0],
        u1,
        u2,
        w,
        v1,
        v2,
        v0,
    }
}

/// The Appendix B.4 lower bound for the no-deletion variant: every node except
/// at most `r` (the ones that may still hold a red pebble in the final state)
/// must be saved at least once, so `OPT ≥ n − r`.
pub fn no_delete_lower_bound(dag: &Dag, r: usize) -> usize {
    dag.node_count().saturating_sub(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{self, SearchConfig};
    use crate::prbp::PrbpConfig;
    use crate::rbp::RbpConfig;

    #[test]
    fn recompute_variant_shapes() {
        let v = fig1_recompute_resistant();
        assert_eq!(v.dag.node_count(), 12);
        assert_eq!(v.dag.sources(), vec![v.u0]);
        assert_eq!(v.dag.sinks(), vec![v.v0]);
        assert_eq!(v.dag.max_in_degree(), 2);
        assert_eq!(v.inserted.len(), 2);
    }

    #[test]
    fn sliding_variant_shapes() {
        let v = fig1_sliding_resistant();
        assert_eq!(v.dag.node_count(), 11);
        assert_eq!(v.dag.in_degree(v.w[2]), 3); // w3 now has three inputs
        assert_eq!(v.dag.sources(), vec![v.u0]);
        assert_eq!(v.dag.sinks(), vec![v.v0]);
    }

    #[test]
    fn recomputation_helps_on_original_but_not_on_adjusted_dag() {
        // Appendix B.1: on the original Figure 1 DAG, re-computation brings
        // OPT_RBP down to 2 (verified in the solver tests); on the adjusted
        // DAG it stays at 3, while PRBP still achieves 2.
        let v = fig1_recompute_resistant();
        let rbp_recompute = exact::optimal_rbp_cost(
            &v.dag,
            RbpConfig::new(4).with_recompute(),
            SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(rbp_recompute, 3);
        let prbp =
            exact::optimal_prbp_cost(&v.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
        assert_eq!(prbp, 2);
    }

    #[test]
    fn sliding_helps_on_original_but_not_on_adjusted_dag() {
        // Appendix B.2: with the extra w0 node, the sliding model needs 3 I/Os
        // again, while PRBP still achieves the trivial 2.
        let v = fig1_sliding_resistant();
        let rbp_sliding = exact::optimal_rbp_cost(
            &v.dag,
            RbpConfig::new(4).with_sliding(),
            SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(rbp_sliding, 3);
        let prbp =
            exact::optimal_prbp_cost(&v.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
        assert_eq!(prbp, 2);
    }

    #[test]
    fn no_delete_variant_respects_its_lower_bound() {
        // On a small chain, the no-deletion optimum is at least n − r and the
        // exact solver agrees.
        let mut b = DagBuilder::new();
        let nodes = b.add_nodes(5);
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let dag = b.build().unwrap();
        let bound = no_delete_lower_bound(&dag, 2);
        assert_eq!(bound, 3);
        let opt = exact::optimal_prbp_cost(
            &dag,
            PrbpConfig::new(2).with_no_delete(),
            SearchConfig::default(),
        )
        .unwrap();
        assert!(opt >= bound);
        // The unrestricted optimum is cheaper (only the trivial cost of 2).
        let unrestricted =
            exact::optimal_prbp_cost(&dag, PrbpConfig::new(2), SearchConfig::default()).unwrap();
        assert!(unrestricted < opt);
    }
}

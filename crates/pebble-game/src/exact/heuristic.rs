//! Pluggable admissible lower-bound heuristics for the exact A* solvers.
//!
//! The solvers in [`crate::exact`] run A* over pebbling configurations. Any
//! type implementing [`LowerBound`] can guide that search; the contract is
//! *admissibility* — the returned value must never exceed the true optimal
//! I/O cost of finishing the pebbling from the given state. Admissible
//! heuristics never change the optimum the search returns, only (often
//! dramatically) how many states it expands to find it.
//!
//! Two baseline implementations live here, because they need nothing beyond
//! the DAG itself:
//!
//! * [`ZeroHeuristic`] — the constant 0. Turns A* back into uniform-cost
//!   (Dijkstra) search; the reference point for expansion counts.
//! * [`LoadCountHeuristic`] — counts values that provably still require a
//!   load plus sinks that still require a save. Cheap, admissible in every
//!   model variant, and the default for [`crate::exact::optimal_cost`] and
//!   friends.
//!
//! The partition-based heuristics derived from the paper's Section 6 lower
//! bounds (S-edge partitions, S-dominator partitions) live in
//! `pebble_bounds::heuristics`, which depends on this crate.

use crate::prbp::{PebbleState, PrbpConfig};
use crate::rbp::RbpConfig;
use pebble_dag::{Dag, EdgeId, NodeId};

/// Read-only view of an RBP search state in the solver's canonical packed
/// encoding: three bit planes (red, blue, computed) over the nodes.
#[derive(Clone, Copy)]
pub struct RbpStateView<'a> {
    words: &'a [u64],
    n: usize,
    /// Words per plane.
    w: usize,
}

#[inline]
fn plane_get(words: &[u64], plane: usize, w: usize, i: usize) -> bool {
    crate::packed::get(&words[plane * w..(plane + 1) * w], i)
}

impl<'a> RbpStateView<'a> {
    pub(crate) fn new(words: &'a [u64], n: usize) -> Self {
        let w = crate::packed::plane_words(n);
        debug_assert_eq!(words.len(), 3 * w);
        RbpStateView { words, n, w }
    }

    /// Number of nodes of the underlying DAG.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Does `v` hold a red pebble (value in fast memory)?
    #[inline]
    pub fn is_red(&self, v: NodeId) -> bool {
        plane_get(self.words, 0, self.w, v.index())
    }

    /// Does `v` hold a blue pebble (value in slow memory)?
    #[inline]
    pub fn is_blue(&self, v: NodeId) -> bool {
        plane_get(self.words, 1, self.w, v.index())
    }

    /// Has `v` been computed already (one-shot bookkeeping)?
    #[inline]
    pub fn is_computed(&self, v: NodeId) -> bool {
        plane_get(self.words, 2, self.w, v.index())
    }

    /// Number of red pebbles currently placed.
    pub fn red_count(&self) -> usize {
        self.words[..self.w]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The packed `computed` plane. Stable across states with equal computed
    /// sets, so it can key caches in heuristics whose value depends only on
    /// which nodes remain uncomputed.
    pub fn computed_words(&self) -> &'a [u64] {
        &self.words[2 * self.w..3 * self.w]
    }
}

/// Read-only view of a PRBP search state in the solver's canonical packed
/// encoding: two bit planes over the nodes (has-red, has-blue — together they
/// encode the four [`PebbleState`]s) plus one plane over the edges (marked).
#[derive(Clone, Copy)]
pub struct PrbpStateView<'a> {
    words: &'a [u64],
    n: usize,
    m: usize,
    /// Words per node plane.
    wn: usize,
}

impl<'a> PrbpStateView<'a> {
    pub(crate) fn new(words: &'a [u64], n: usize, m: usize) -> Self {
        let wn = crate::packed::plane_words(n);
        debug_assert_eq!(words.len(), 2 * wn + crate::packed::plane_words(m));
        PrbpStateView { words, n, m, wn }
    }

    /// Number of nodes of the underlying DAG.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges of the underlying DAG.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Does `v` hold a (light or dark) red pebble?
    #[inline]
    pub fn has_red(&self, v: NodeId) -> bool {
        plane_get(self.words, 0, self.wn, v.index())
    }

    /// Does `v` hold a blue pebble?
    #[inline]
    pub fn has_blue(&self, v: NodeId) -> bool {
        plane_get(self.words, 1, self.wn, v.index())
    }

    /// The full pebble state of `v`.
    pub fn pebble(&self, v: NodeId) -> PebbleState {
        match (self.has_red(v), self.has_blue(v)) {
            (false, false) => PebbleState::Empty,
            (false, true) => PebbleState::Blue,
            (true, true) => PebbleState::BlueAndLightRed,
            (true, false) => PebbleState::DarkRed,
        }
    }

    /// Has edge `e` been marked (aggregated) already?
    #[inline]
    pub fn is_marked(&self, e: EdgeId) -> bool {
        let i = e.index();
        self.words[2 * self.wn + i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of marked edges.
    pub fn marked_count(&self) -> usize {
        self.marked_words()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of red pebbles currently placed.
    pub fn red_count(&self) -> usize {
        self.words[..self.wn]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The packed `marked` plane. Stable across states with equal marked
    /// sets, so it can key caches in heuristics whose value depends only on
    /// which edges remain unmarked.
    pub fn marked_words(&self) -> &'a [u64] {
        &self.words[2 * self.wn..]
    }
}

/// An admissible lower bound on the remaining I/O cost of a pebbling state,
/// used as the A* heuristic by the exact solvers.
///
/// # Contract
///
/// For every reachable state `σ`, the returned value must satisfy
/// `bound(σ) ≤ OPT(σ)`, where `OPT(σ)` is the cheapest I/O cost of any
/// move sequence completing the pebbling from `σ` under the given
/// configuration (including its model variants — sliding, re-computation,
/// `clear`, no-deletion). Overestimating can make the search return a
/// non-optimal cost. Implementations may be arbitrarily weak (0 is always
/// sound) and should degrade to weaker-but-sound bounds for variants whose
/// stronger argument does not apply.
pub trait LowerBound {
    /// Short stable identifier used in benchmark output (e.g. `"s-edge"`).
    fn name(&self) -> &'static str;

    /// Lower bound on the remaining I/O cost of an RBP state.
    fn rbp_bound(&self, dag: &Dag, config: RbpConfig, state: &RbpStateView<'_>) -> usize;

    /// Lower bound on the remaining I/O cost of a PRBP state.
    fn prbp_bound(&self, dag: &Dag, config: PrbpConfig, state: &PrbpStateView<'_>) -> usize;
}

/// The constant-zero heuristic: A* degenerates to uniform-cost (Dijkstra)
/// search. This is the pre-heuristic behaviour of the solvers and the
/// baseline all other heuristics are measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroHeuristic;

impl LowerBound for ZeroHeuristic {
    fn name(&self) -> &'static str {
        "zero"
    }

    fn rbp_bound(&self, _dag: &Dag, _config: RbpConfig, _state: &RbpStateView<'_>) -> usize {
        0
    }

    fn prbp_bound(&self, _dag: &Dag, _config: PrbpConfig, _state: &PrbpStateView<'_>) -> usize {
        0
    }
}

/// The load/save-count heuristic.
///
/// A value must be loaded again if it is not in fast memory, is still needed
/// (some successor uncomputed / some out-edge unmarked), and cannot be
/// re-derived by computation: sources can never be computed, and one-shot
/// non-sources that are already (fully) computed can only return to fast
/// memory via a load. Every sink without a blue pebble still needs a save.
/// Each counted node demands a *distinct* future load or save, so the sum is
/// admissible; the re-computation (`clear`) variants disable the
/// computed-node term, which keeps the bound sound there too.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadCountHeuristic;

impl LowerBound for LoadCountHeuristic {
    fn name(&self) -> &'static str {
        "load-count"
    }

    fn rbp_bound(&self, dag: &Dag, config: RbpConfig, state: &RbpStateView<'_>) -> usize {
        let mut h = 0;
        for v in dag.nodes() {
            if dag.is_sink(v) {
                if !state.is_blue(v) {
                    // Saves are only mandatory for sinks.
                    h += 1;
                }
                continue;
            }
            if state.is_red(v) {
                continue;
            }
            let needed = dag.successors(v).any(|w| !state.is_computed(w));
            if needed && (dag.is_source(v) || (state.is_computed(v) && !config.allow_recompute)) {
                h += 1;
            }
        }
        h
    }

    fn prbp_bound(&self, dag: &Dag, config: PrbpConfig, state: &PrbpStateView<'_>) -> usize {
        let mut h = 0;
        for v in dag.nodes() {
            if dag.is_sink(v) {
                if !state.has_blue(v) {
                    h += 1;
                }
                continue;
            }
            if state.has_red(v) {
                continue;
            }
            let needed = dag.out_edges(v).iter().any(|&(_, e)| !state.is_marked(e));
            if !needed {
                continue;
            }
            let fully_computed = dag.in_edges(v).iter().all(|&(_, e)| state.is_marked(e));
            if dag.is_source(v) || (fully_computed && !config.allow_clear) {
                h += 1;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{self, SearchConfig};
    use pebble_dag::generators::fig1_full;

    #[test]
    fn zero_is_zero_everywhere() {
        let f = fig1_full();
        assert_eq!(
            exact::rbp_initial_bound(&f.dag, RbpConfig::new(4), &ZeroHeuristic),
            0
        );
        assert_eq!(
            exact::prbp_initial_bound(&f.dag, PrbpConfig::new(4), &ZeroHeuristic),
            0
        );
    }

    #[test]
    fn load_count_is_admissible_on_fig1() {
        let f = fig1_full();
        let h_rbp = exact::rbp_initial_bound(&f.dag, RbpConfig::new(4), &LoadCountHeuristic);
        let opt_rbp =
            exact::optimal_rbp_cost(&f.dag, RbpConfig::new(4), SearchConfig::default()).unwrap();
        assert!(h_rbp <= opt_rbp, "{h_rbp} > {opt_rbp}");

        let h_prbp = exact::prbp_initial_bound(&f.dag, PrbpConfig::new(4), &LoadCountHeuristic);
        let opt_prbp =
            exact::optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
        assert!(h_prbp <= opt_prbp, "{h_prbp} > {opt_prbp}");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ZeroHeuristic.name(), "zero");
        assert_eq!(LoadCountHeuristic.name(), "load-count");
    }
}

//! Exact optimal-cost search for the partial-computing red-blue pebble game.

use super::{ExactError, SearchConfig};
use crate::moves::PrbpMove;
use crate::prbp::{PebbleState, PrbpConfig};
use crate::trace::PrbpTrace;
use pebble_dag::{BitSet, Dag, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A pebbling configuration of the PRBP game: the per-node pebble state plus
/// the set of marked edges.
#[derive(Clone, PartialEq, Eq, Hash)]
struct PrbpSearchState {
    nodes: Vec<PebbleState>,
    marked: BitSet,
}

/// Optimal I/O cost of pebbling `dag` under `config` in PRBP.
pub fn optimal_prbp_cost(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
) -> Result<usize, ExactError> {
    solve(dag, config, search, false).map(|(cost, _)| cost)
}

/// Optimal I/O cost together with one optimal PRBP pebbling trace.
pub fn optimal_prbp_trace(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
) -> Result<(usize, PrbpTrace), ExactError> {
    let (cost, trace) = solve(dag, config, search, true)?;
    Ok((cost, trace.expect("trace requested")))
}

fn solve(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
    want_trace: bool,
) -> Result<(usize, Option<PrbpTrace>), ExactError> {
    // PRBP can pebble any DAG (without isolated nodes) with two red pebbles,
    // but never with fewer.
    if config.r < 2 {
        return Err(ExactError::Unsolvable);
    }

    let n = dag.node_count();
    let m = dag.edge_count();
    let sources = dag.sources();
    let sinks = dag.sinks();

    let mut initial_nodes = vec![PebbleState::Empty; n];
    for &s in &sources {
        initial_nodes[s.index()] = PebbleState::Blue;
    }
    let start = PrbpSearchState {
        nodes: initial_nodes,
        marked: BitSet::new(m),
    };

    // Admissible heuristic: a source without a red pebble that still has an
    // unmarked out-edge must be loaded again; a sink without a blue pebble
    // must still be saved.
    let heuristic = |st: &PrbpSearchState| -> usize {
        let mut h = 0;
        for &s in &sources {
            if !st.nodes[s.index()].has_red()
                && dag
                    .out_edges(s)
                    .iter()
                    .any(|&(_, e)| !st.marked.contains(e.index()))
            {
                h += 1;
            }
        }
        for &t in &sinks {
            if !st.nodes[t.index()].has_blue() {
                h += 1;
            }
        }
        h
    };

    let is_goal = |st: &PrbpSearchState| -> bool {
        st.marked.count() == m && sinks.iter().all(|t| st.nodes[t.index()].has_blue())
    };

    let mut states: Vec<PrbpSearchState> = vec![start.clone()];
    let mut index: HashMap<PrbpSearchState, usize> = HashMap::new();
    index.insert(start.clone(), 0);
    let mut dist: Vec<usize> = vec![0];
    let mut parent: Vec<Option<(usize, PrbpMove)>> = vec![None];

    let mut heap: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
    heap.push(Reverse((heuristic(&start), 0, 0)));

    while let Some(Reverse((_, g, idx))) = heap.pop() {
        if g > dist[idx] {
            continue;
        }
        let state = states[idx].clone();
        if is_goal(&state) {
            let trace = want_trace.then(|| reconstruct(&parent, idx));
            return Ok((g, trace));
        }
        if states.len() > search.max_states {
            return Err(ExactError::StateLimitExceeded {
                explored: states.len(),
            });
        }

        let red_count = state.nodes.iter().filter(|s| s.has_red()).count();
        // Per-node counts of unmarked in/out edges in this state.
        let fully_computed = |v: NodeId| {
            dag.in_edges(v)
                .iter()
                .all(|&(_, e)| state.marked.contains(e.index()))
        };
        let all_out_marked = |v: NodeId| {
            dag.out_edges(v)
                .iter()
                .all(|&(_, e)| state.marked.contains(e.index()))
        };

        let push_succ =
            |succ: PrbpSearchState,
             mv: PrbpMove,
             cost: usize,
             states: &mut Vec<PrbpSearchState>,
             index: &mut HashMap<PrbpSearchState, usize>,
             dist: &mut Vec<usize>,
             parent: &mut Vec<Option<(usize, PrbpMove)>>,
             heap: &mut BinaryHeap<Reverse<(usize, usize, usize)>>| {
                let new_g = g + cost;
                let succ_idx = match index.get(&succ) {
                    Some(&i) => i,
                    None => {
                        let i = states.len();
                        states.push(succ.clone());
                        index.insert(succ, i);
                        dist.push(usize::MAX);
                        parent.push(None);
                        i
                    }
                };
                if new_g < dist[succ_idx] {
                    dist[succ_idx] = new_g;
                    parent[succ_idx] = Some((idx, mv));
                    heap.push(Reverse((
                        new_g + heuristic(&states[succ_idx]),
                        new_g,
                        succ_idx,
                    )));
                }
            };

        for v in dag.nodes() {
            let vi = v.index();
            match state.nodes[vi] {
                PebbleState::Blue => {
                    if red_count < config.r {
                        let mut s = state.clone();
                        s.nodes[vi] = PebbleState::BlueAndLightRed;
                        push_succ(
                            s,
                            PrbpMove::Load(v),
                            1,
                            &mut states,
                            &mut index,
                            &mut dist,
                            &mut parent,
                            &mut heap,
                        );
                    }
                }
                PebbleState::BlueAndLightRed => {
                    let mut s = state.clone();
                    s.nodes[vi] = PebbleState::Blue;
                    push_succ(
                        s,
                        PrbpMove::Delete(v),
                        0,
                        &mut states,
                        &mut index,
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                }
                PebbleState::DarkRed => {
                    let mut s = state.clone();
                    s.nodes[vi] = PebbleState::BlueAndLightRed;
                    push_succ(
                        s,
                        PrbpMove::Save(v),
                        1,
                        &mut states,
                        &mut index,
                        &mut dist,
                        &mut parent,
                        &mut heap,
                    );
                    if !config.no_delete && !dag.is_sink(v) && all_out_marked(v) {
                        let mut s = state.clone();
                        s.nodes[vi] = PebbleState::Empty;
                        push_succ(
                            s,
                            PrbpMove::Delete(v),
                            0,
                            &mut states,
                            &mut index,
                            &mut dist,
                            &mut parent,
                            &mut heap,
                        );
                    }
                }
                PebbleState::Empty => {}
            }
        }

        // Partial compute steps over all unmarked edges.
        for e in dag.edges() {
            if state.marked.contains(e.index()) {
                continue;
            }
            let (u, v) = dag.edge_endpoints(e);
            if !state.nodes[u.index()].has_red() || !fully_computed(u) {
                continue;
            }
            match state.nodes[v.index()] {
                PebbleState::Blue => continue,
                PebbleState::Empty if red_count >= config.r => continue,
                _ => {}
            }
            let mut s = state.clone();
            s.nodes[v.index()] = PebbleState::DarkRed;
            s.marked.insert(e.index());
            push_succ(
                s,
                PrbpMove::PartialCompute { from: u, to: v },
                0,
                &mut states,
                &mut index,
                &mut dist,
                &mut parent,
                &mut heap,
            );
        }
    }
    Err(ExactError::Unsolvable)
}

fn reconstruct(parent: &[Option<(usize, PrbpMove)>], mut idx: usize) -> PrbpTrace {
    let mut moves = Vec::new();
    while let Some((prev, mv)) = parent[idx] {
        moves.push(mv);
        idx = prev;
    }
    moves.reverse();
    PrbpTrace::from_moves(moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebble_dag::generators::{fig1_full, fig1_gadget};
    use pebble_dag::DagBuilder;

    #[test]
    fn chain_needs_only_trivial_cost_with_r2() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(5);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        assert_eq!(
            optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap(),
            2
        );
    }

    #[test]
    fn high_in_degree_node_pebbled_with_two_reds() {
        // A single aggregation node with 4 inputs: RBP would need r = 5, PRBP
        // manages with r = 2 at trivial cost.
        let mut b = DagBuilder::new();
        let srcs = b.add_nodes(4);
        let sink = b.add_node();
        for &s in &srcs {
            b.add_edge(s, sink);
        }
        let g = b.build().unwrap();
        assert_eq!(
            optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap(),
            5
        );
    }

    #[test]
    fn cache_of_one_is_unsolvable() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1]);
        let g = b.build().unwrap();
        assert_eq!(
            optimal_prbp_cost(&g, PrbpConfig::new(1), SearchConfig::default()),
            Err(ExactError::Unsolvable)
        );
    }

    #[test]
    fn fig1_optimum_is_two_with_r4() {
        // Proposition 4.2: OPT_PRBP = 2.
        let f = fig1_full();
        assert_eq!(
            optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap(),
            2
        );
    }

    #[test]
    fn fig1_gadget_alone_costs_four_with_r4() {
        // The standalone 8-node gadget: 2 sources + 2 sinks = trivial cost 4,
        // and PRBP achieves it.
        let g = fig1_gadget();
        assert_eq!(
            optimal_prbp_cost(&g.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap(),
            4
        );
    }

    #[test]
    fn optimal_trace_replays_to_optimal_cost() {
        let f = fig1_full();
        let (cost, trace) =
            optimal_prbp_trace(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(), 2);
    }

    #[test]
    fn prbp_never_beats_rbp_from_below_on_chain() {
        // Sanity: on a plain chain both models have the same optimum.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(4);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        let rbp = super::super::optimal_rbp_cost(
            &g,
            crate::rbp::RbpConfig::new(2),
            SearchConfig::default(),
        )
        .unwrap();
        let prbp = optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap();
        assert_eq!(rbp, prbp);
    }

    #[test]
    fn state_limit_is_reported() {
        let f = fig1_full();
        let result =
            optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::with_max_states(3));
        assert!(matches!(result, Err(ExactError::StateLimitExceeded { .. })));
    }
}

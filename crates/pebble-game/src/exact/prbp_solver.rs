//! Exact optimal-cost A* search for the partial-computing red-blue pebble
//! game.
//!
//! States are packed into two bit planes over the nodes (has-red, has-blue —
//! together encoding the four [`crate::prbp::PebbleState`]s) plus one plane
//! over the edges (marked), deduplicated through a transposition table. The
//! search is A* with a pluggable admissible heuristic ([`LowerBound`]); with
//! [`ZeroHeuristic`](super::ZeroHeuristic) it degenerates to the original
//! uniform-cost search.

use super::heuristic::{LowerBound, PrbpStateView};
use super::state::{self, plane_words, Transposition};
use super::{ExactError, SearchConfig, SearchStats};
use crate::moves::PrbpMove;
use crate::prbp::PrbpConfig;
use crate::trace::PrbpTrace;
use pebble_dag::{Dag, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The packed start state: blue pebbles on all sources, all edges unmarked.
/// Layout: `[red | blue | marked]`.
pub(super) fn start_words(dag: &Dag) -> Vec<u64> {
    let wn = plane_words(dag.node_count());
    let wm = plane_words(dag.edge_count());
    let mut words = vec![0u64; 2 * wn + wm];
    for v in dag.nodes() {
        if dag.is_source(v) {
            state::set(&mut words[wn..2 * wn], v.index());
        }
    }
    words
}

pub(super) fn solve_with(
    dag: &Dag,
    config: PrbpConfig,
    search: SearchConfig,
    heuristic: &dyn LowerBound,
    want_trace: bool,
) -> Result<(usize, SearchStats, Option<PrbpTrace>), ExactError> {
    // PRBP can pebble any DAG (without isolated nodes) with two red pebbles,
    // but never with fewer.
    if config.r < 2 {
        return Err(ExactError::Unsolvable);
    }

    let n = dag.node_count();
    let m = dag.edge_count();
    let wn = plane_words(n);
    let sinks: Vec<NodeId> = dag.sinks();

    let start = start_words(dag);
    let h = |words: &[u64]| heuristic.prbp_bound(dag, config, &PrbpStateView::new(words, n, m));

    let mut tt: Transposition<PrbpMove> = Transposition::new(&start);
    let mut heap: BinaryHeap<Reverse<(usize, usize, u32)>> = BinaryHeap::new();
    heap.push(Reverse((h(&start), 0, 0)));

    let mut stats = SearchStats::default();
    let mut scratch: Vec<u64> = vec![0; start.len()];

    // Plane accessors over the packed layout [red | blue | marked].
    let red = |words: &[u64], i: usize| state::get(&words[..wn], i);
    let blue = |words: &[u64], i: usize| state::get(&words[wn..2 * wn], i);
    let marked = |words: &[u64], i: usize| state::get(&words[2 * wn..], i);

    while let Some(Reverse((_, g, idx))) = heap.pop() {
        if g > tt.slot(idx).g {
            continue;
        }
        let cur = std::rc::Rc::clone(&tt.slot(idx).key);
        if state::popcount(&cur[2 * wn..]) == m && sinks.iter().all(|t| blue(&cur, t.index())) {
            let trace = want_trace.then(|| PrbpTrace::from_moves(tt.reconstruct_moves(idx)));
            stats.distinct = tt.len();
            return Ok((g, stats, trace));
        }
        if tt.len() > search.max_states {
            return Err(ExactError::StateLimitExceeded { explored: tt.len() });
        }
        stats.expanded += 1;

        let red_count = state::popcount(&cur[..wn]);
        let fully_computed = |v: NodeId| {
            dag.in_edges(v)
                .iter()
                .all(|&(_, e)| marked(&cur, e.index()))
        };
        let all_out_marked = |v: NodeId| {
            dag.out_edges(v)
                .iter()
                .all(|&(_, e)| marked(&cur, e.index()))
        };

        macro_rules! push_succ {
            ($mv:expr, $cost:expr) => {{
                stats.generated += 1;
                let new_g = g + $cost;
                let i = tt.intern(&scratch);
                let slot = tt.slot_mut(i);
                if new_g < slot.g {
                    slot.g = new_g;
                    slot.parent = Some((idx, $mv));
                    heap.push(Reverse((new_g + h(&scratch), new_g, i)));
                }
            }};
        }

        for v in dag.nodes() {
            let vi = v.index();
            match (red(&cur, vi), blue(&cur, vi)) {
                // Blue only.
                (false, true) => {
                    if red_count < config.r {
                        scratch.copy_from_slice(&cur);
                        state::set(&mut scratch[..wn], vi);
                        push_succ!(PrbpMove::Load(v), 1);
                    }
                }
                // Blue and light red.
                (true, true) => {
                    scratch.copy_from_slice(&cur);
                    state::clear(&mut scratch[..wn], vi);
                    push_succ!(PrbpMove::Delete(v), 0);
                }
                // Dark red.
                (true, false) => {
                    scratch.copy_from_slice(&cur);
                    state::set(&mut scratch[wn..2 * wn], vi);
                    push_succ!(PrbpMove::Save(v), 1);
                    if !config.no_delete && !dag.is_sink(v) && all_out_marked(v) {
                        scratch.copy_from_slice(&cur);
                        state::clear(&mut scratch[..wn], vi);
                        push_succ!(PrbpMove::Delete(v), 0);
                    }
                }
                // Empty.
                (false, false) => {}
            }
        }

        // Partial compute steps over all unmarked edges.
        for e in dag.edges() {
            if marked(&cur, e.index()) {
                continue;
            }
            let (u, v) = dag.edge_endpoints(e);
            if !red(&cur, u.index()) || !fully_computed(u) {
                continue;
            }
            match (red(&cur, v.index()), blue(&cur, v.index())) {
                // Blue only: the partial value would be lost.
                (false, true) => continue,
                // Empty: needs a fresh red pebble.
                (false, false) if red_count >= config.r => continue,
                _ => {}
            }
            scratch.copy_from_slice(&cur);
            state::set(&mut scratch[..wn], v.index());
            state::clear(&mut scratch[wn..2 * wn], v.index());
            state::set(&mut scratch[2 * wn..], e.index());
            push_succ!(PrbpMove::PartialCompute { from: u, to: v }, 0);
        }
    }
    Err(ExactError::Unsolvable)
}

#[cfg(test)]
mod tests {
    use super::super::{optimal_prbp_cost, optimal_prbp_trace};
    use super::*;
    use pebble_dag::generators::{fig1_full, fig1_gadget};
    use pebble_dag::DagBuilder;

    #[test]
    fn chain_needs_only_trivial_cost_with_r2() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(5);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        assert_eq!(
            optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap(),
            2
        );
    }

    #[test]
    fn high_in_degree_node_pebbled_with_two_reds() {
        // A single aggregation node with 4 inputs: RBP would need r = 5, PRBP
        // manages with r = 2 at trivial cost.
        let mut b = DagBuilder::new();
        let srcs = b.add_nodes(4);
        let sink = b.add_node();
        for &s in &srcs {
            b.add_edge(s, sink);
        }
        let g = b.build().unwrap();
        assert_eq!(
            optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap(),
            5
        );
    }

    #[test]
    fn cache_of_one_is_unsolvable() {
        let mut b = DagBuilder::new();
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1]);
        let g = b.build().unwrap();
        assert_eq!(
            optimal_prbp_cost(&g, PrbpConfig::new(1), SearchConfig::default()),
            Err(ExactError::Unsolvable)
        );
    }

    #[test]
    fn fig1_optimum_is_two_with_r4() {
        // Proposition 4.2: OPT_PRBP = 2.
        let f = fig1_full();
        assert_eq!(
            optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap(),
            2
        );
    }

    #[test]
    fn fig1_gadget_alone_costs_four_with_r4() {
        // The standalone 8-node gadget: 2 sources + 2 sinks = trivial cost 4,
        // and PRBP achieves it.
        let g = fig1_gadget();
        assert_eq!(
            optimal_prbp_cost(&g.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap(),
            4
        );
    }

    #[test]
    fn optimal_trace_replays_to_optimal_cost() {
        let f = fig1_full();
        let (cost, trace) =
            optimal_prbp_trace(&f.dag, PrbpConfig::new(4), SearchConfig::default()).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(trace.validate(&f.dag, PrbpConfig::new(4)).unwrap(), 2);
    }

    #[test]
    fn prbp_never_beats_rbp_from_below_on_chain() {
        // Sanity: on a plain chain both models have the same optimum.
        let mut b = DagBuilder::new();
        let n = b.add_nodes(4);
        for w in n.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        let rbp = super::super::optimal_rbp_cost(
            &g,
            crate::rbp::RbpConfig::new(2),
            SearchConfig::default(),
        )
        .unwrap();
        let prbp = optimal_prbp_cost(&g, PrbpConfig::new(2), SearchConfig::default()).unwrap();
        assert_eq!(rbp, prbp);
    }

    #[test]
    fn state_limit_is_reported() {
        let f = fig1_full();
        let result =
            optimal_prbp_cost(&f.dag, PrbpConfig::new(4), SearchConfig::with_max_states(3));
        assert!(matches!(result, Err(ExactError::StateLimitExceeded { .. })));
    }

    #[test]
    fn stats_are_populated_and_zero_expands_more() {
        use super::super::heuristic::{LoadCountHeuristic, ZeroHeuristic};
        let f = fig1_full();
        let zero = solve_with(
            &f.dag,
            PrbpConfig::new(4),
            SearchConfig::default(),
            &ZeroHeuristic,
            false,
        )
        .unwrap();
        let load = solve_with(
            &f.dag,
            PrbpConfig::new(4),
            SearchConfig::default(),
            &LoadCountHeuristic,
            false,
        )
        .unwrap();
        assert_eq!(zero.0, load.0);
        assert!(load.1.expanded <= zero.1.expanded);
    }
}
